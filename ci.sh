#!/usr/bin/env bash
# Tier-1 gate for the HeteFedRec workspace.
#
# The workspace is std-only: it must build with an EMPTY cargo registry,
# which `--offline` enforces. Run from the repo root:
#
#   ./ci.sh          # build + test + fmt check
#   ./ci.sh quick    # skip the release build (debug test cycle only)
set -euo pipefail
cd "$(dirname "$0")"

quick="${1:-}"

if [[ "$quick" != "quick" ]]; then
    echo "==> cargo build --release --offline (zero crates.io deps)"
    cargo build --release --offline --workspace --all-targets
fi

echo "==> cargo test -q (workspace: unit + integration + doctests)"
cargo test -q --offline --workspace

echo "==> bench smoke (std::time::Instant harness, no criterion)"
cargo test -q --offline -p hf_bench --benches

echo "==> smoke snapshot artefact (--json wiring)"
cargo run -q --offline -p hf_bench --bin table1_stats -- \
    --scale tiny --dataset ml --json target/ci-artifacts/table1_smoke.json
test -s target/ci-artifacts/table1_smoke.json

echo "==> checkpoint/resume smoke (movie_recommendation example)"
# The example checkpoints mid-run, restores, and asserts the restored
# evaluation is bit-identical to the uninterrupted run (it exits non-zero
# on mismatch). The checkpoint document is archived as a CI artefact.
mkdir -p target/ci-artifacts
HF_CHECKPOINT_PATH=target/ci-artifacts/movie_recommendation_checkpoint.json \
    cargo run -q --offline --release --example movie_recommendation \
    > target/ci-artifacts/movie_recommendation_smoke.log
grep -q "resume verified" target/ci-artifacts/movie_recommendation_smoke.log
test -s target/ci-artifacts/movie_recommendation_checkpoint.json

echo "==> serving smoke (serve_throughput --json + serving example proofs)"
cargo run -q --offline --release -p hf_bench --bin serve_throughput -- \
    --scale tiny --dataset ml --model ncf \
    --json target/ci-artifacts/serve_throughput_smoke.json
test -s target/ci-artifacts/serve_throughput_smoke.json
# The serving example exports an artifact, proves "serving matches eval"
# (bit-identical metrics through the Recommender), and proves the
# checkpoint→artifact reload path (it exits non-zero on any mismatch).
HF_SERVE_CHECKPOINT_PATH=target/ci-artifacts/serving_checkpoint.json \
    cargo run -q --offline --release --example serving \
    > target/ci-artifacts/serving_smoke.log
grep -q "serving matches eval" target/ci-artifacts/serving_smoke.log
grep -q "artifact reload verified" target/ci-artifacts/serving_smoke.log
test -s target/ci-artifacts/serving_checkpoint.json

echo "==> async engine smoke (async_churn --json + determinism proof line)"
# Sync vs async under churn; the snapshot is archived as a CI artefact.
cargo run -q --offline --release -p hf_bench --bin async_churn -- \
    --scale tiny --dataset ml --model ncf \
    --json target/ci-artifacts/async_churn_smoke.json
test -s target/ci-artifacts/async_churn_smoke.json
# The integration test proves async runs are byte-identical across
# thread counts and across a mid-stream checkpoint/resume, printing its
# proof line only when the resumed bytes match.
cargo test -q --offline --release --test async_determinism -- --nocapture \
    | tee target/ci-artifacts/async_determinism.log
grep -q "async resume verified" target/ci-artifacts/async_determinism.log

echo "==> network serving smoke (hf-serve + hf-loadgen + net_throughput --json)"
# The example saves the binary artifact, serves it over loopback TCP, and
# proves served rankings bit-identical to in-process recommend_batch (it
# exits non-zero on any mismatch).
HF_ARTIFACT_PATH=target/ci-artifacts/serving_model.hfa \
    cargo run -q --offline --release --example network_serving \
    > target/ci-artifacts/network_serving_smoke.log
grep -q "served == in-process" target/ci-artifacts/network_serving_smoke.log
test -s target/ci-artifacts/serving_model.hfa
# Boot the real hf-serve binary on the artifact the example just wrote,
# drive it with the load generator (fixed seed, bounded duration), verify
# every served exchange against an in-process replay, then shut the
# server down over the wire and require a clean exit.
cargo run -q --offline --release -p hf_net --bin hf-serve -- \
    --artifact target/ci-artifacts/serving_model.hfa --addr 127.0.0.1:47731 \
    > target/ci-artifacts/hf_serve_smoke.log &
serve_pid=$!
cargo run -q --offline --release -p hf_net --bin hf-loadgen -- \
    --addr 127.0.0.1:47731 --connections 8 --rate 4000 --requests 2000 \
    --seed 7 --max-seconds 30 \
    --verify-artifact target/ci-artifacts/serving_model.hfa --shutdown \
    > target/ci-artifacts/hf_loadgen_smoke.log
wait "$serve_pid"
grep -q "served == in-process" target/ci-artifacts/hf_loadgen_smoke.log
grep -q "drained and stopped" target/ci-artifacts/hf_serve_smoke.log
# Socket-to-socket latency sweep (batch window x connections) snapshot.
cargo run -q --offline --release -p hf_bench --bin net_throughput -- \
    --scale tiny --dataset ml --model ncf \
    --json target/ci-artifacts/net_throughput_smoke.json
test -s target/ci-artifacts/net_throughput_smoke.json

echo "==> capacity smoke (synthetic profile + lazy serving + capacity --json)"
# The example synthesizes a 100k x 100k artifact straight to disk, boots
# it lazily, and proves lazy/tiled/sharded rankings bit-identical to the
# eager load (it exits non-zero on any mismatch).
HF_CAPACITY_USERS=100000 HF_CAPACITY_ITEMS=100000 \
    HF_CAPACITY_ARTIFACT=target/ci-artifacts/capacity_model.hfa \
    cargo run -q --offline --release --example capacity \
    > target/ci-artifacts/capacity_smoke.log
grep -q "lazy == eager rankings verified" target/ci-artifacts/capacity_smoke.log
test -s target/ci-artifacts/capacity_model.hfa
# Boot the real hf-serve binary lazily on that artifact and verify every
# served exchange against an in-process replay of the same file.
cargo run -q --offline --release -p hf_net --bin hf-serve -- \
    --artifact target/ci-artifacts/capacity_model.hfa --lazy \
    --addr 127.0.0.1:47733 \
    > target/ci-artifacts/hf_serve_lazy_smoke.log &
lazy_pid=$!
cargo run -q --offline --release -p hf_net --bin hf-loadgen -- \
    --addr 127.0.0.1:47733 --connections 4 --rate 2000 --requests 500 \
    --seed 7 --max-seconds 30 \
    --verify-artifact target/ci-artifacts/capacity_model.hfa --shutdown \
    > target/ci-artifacts/hf_loadgen_lazy_smoke.log
wait "$lazy_pid"
grep -q "served == in-process" target/ci-artifacts/hf_loadgen_lazy_smoke.log
grep -q "resident footprint" target/ci-artifacts/hf_serve_lazy_smoke.log
grep -q "drained and stopped" target/ci-artifacts/hf_serve_lazy_smoke.log
# Capacity sweep snapshot (10k profile at tiny scale) as a CI artefact.
cargo run -q --offline --release -p hf_bench --bin capacity -- \
    --scale tiny --json target/ci-artifacts/capacity_smoke.json
test -s target/ci-artifacts/capacity_smoke.json

echo "==> secure-aggregation smoke (example proofs + secagg --json)"
# The example runs the same federation masked and plaintext and exits
# non-zero unless every round's unmasked ring aggregate matches the
# plaintext quantized reference and injected dropouts were recovered
# from escrowed shares.
cargo run -q --offline --release --example secure_aggregation \
    > target/ci-artifacts/secure_aggregation_smoke.log
grep -q "masked aggregate == plaintext quantized aggregate" \
    target/ci-artifacts/secure_aggregation_smoke.log
grep -q "recovery under injected dropout verified" \
    target/ci-artifacts/secure_aggregation_smoke.log
# Cohort x dropout overhead sweep snapshot as a CI artefact (the binary
# asserts every masked round verified).
cargo run -q --offline --release -p hf_bench --bin secagg -- \
    --scale tiny --dataset ml --model ncf \
    --json target/ci-artifacts/secagg_smoke.json
test -s target/ci-artifacts/secagg_smoke.json

echo "==> online pipeline smoke (hf-pipeline hot swap + pipeline --json)"
# The demo trains against a replayed interaction stream, serves
# generation 1 over TCP, hot-swaps the freshest export with one on-wire
# Reload, and asserts every response's version stamp and ranking bits
# (it exits non-zero on any broken invariant). The proof line certifies
# v1 -> v2 attribution across the swap.
cargo run -q --offline --release -p hf_pipeline --bin hf_pipeline \
    > target/ci-artifacts/hf_pipeline_smoke.log
grep -q "hot swap verified: v1 -> v2, rankings attributable" \
    target/ci-artifacts/hf_pipeline_smoke.log
# The example drives the same loop through the facade crate.
HF_PIPELINE_DIR=target/ci-artifacts/online_pipeline \
    cargo run -q --offline --release --example online_pipeline \
    > target/ci-artifacts/online_pipeline_smoke.log
grep -q "responses re-stamped mid-connection" \
    target/ci-artifacts/online_pipeline_smoke.log
# Freshness-drift + swap-latency snapshot as a CI artefact.
cargo run -q --offline --release -p hf_bench --bin pipeline -- \
    --scale tiny --dataset ml --model ncf --set epochs=4 \
    --json target/ci-artifacts/pipeline_smoke.json
test -s target/ci-artifacts/pipeline_smoke.json

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
