//! Micro-benchmarks for the computational kernels behind every table and
//! figure: model forward/backward (all tables), DDR gradient (Table IV/V,
//! Fig. 8), RESKD round (Table IV), eigen-solver and ranking evaluation
//! (every metric column), and a full federated round + epoch (Fig. 7 /
//! Table III).
//!
//! Runs on a plain `std::time::Instant` harness (`harness = false`) so the
//! workspace builds with an empty cargo registry — no criterion.
//!
//! * `cargo test` builds and smoke-runs every kernel once (sanity: they
//!   complete and produce finite outputs).
//! * `cargo bench -p hf_bench`, or `HF_BENCH_FULL=1`, runs calibrated
//!   timing loops (~200 ms per kernel) and reports ns/iter.

use std::hint::black_box;
use std::time::{Duration, Instant};

use hetefedrec_core::config::{KdConfig, TrainConfig};
use hetefedrec_core::reskd::distill_round;
use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_dataset::{SplitDataset, SyntheticConfig};
use hf_models::ncf::NcfEngine;
use hf_models::ModelKind;
use hf_tensor::rng::{stream, SeedStream};
use hf_tensor::{init, Matrix};

/// Minimal fixed-budget timing harness.
struct Harness {
    /// Full mode: calibrated timing loops. Smoke mode: one pass per kernel.
    full: bool,
}

impl Harness {
    fn new() -> Self {
        let full = std::env::var_os("HF_BENCH_FULL").is_some()
            || std::env::args().any(|a| a == "--bench" || a == "--full");
        Self { full }
    }

    /// Times `routine` with fresh `setup` output per iteration (setup cost
    /// excluded from the measurement).
    fn bench_with<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        if !self.full {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            println!("{name:<40} smoke {:>12?}", t.elapsed());
            return;
        }
        // Calibrate: grow the iteration count until one batch costs ≥ 50 ms,
        // then time ~4 batches' worth.
        let mut iters: u64 = 1;
        let batch = loop {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            if spent >= Duration::from_millis(50) || iters >= 1 << 20 {
                break spent;
            }
            iters *= 2;
        };
        let total_iters = iters * 4;
        let mut spent = batch;
        for _ in iters..total_iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
        }
        let per_iter = spent.as_nanos() / u128::from(total_iters);
        println!("{name:<40} {per_iter:>12} ns/iter ({total_iters} iters)");
    }

    /// Times `routine` with no per-iteration setup.
    fn bench<R>(&self, name: &str, mut routine: impl FnMut() -> R) {
        self.bench_with(name, || (), |()| routine());
    }

    /// Times `routine` against state built once per *timing batch* rather
    /// than once per iteration. For kernels whose setup dwarfs the body
    /// (a full trainer behind a single epoch), per-iteration setup makes
    /// full mode take minutes of unmeasured wall clock; batching pays the
    /// setup once per calibration batch instead.
    ///
    /// The routine takes `&mut S`, so successive iterations advance the
    /// same state (e.g. epochs 1..n of one session) — the realistic
    /// steady-state workload.
    fn bench_batched<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> R,
    ) {
        if !self.full {
            let mut state = setup();
            let t = Instant::now();
            black_box(routine(&mut state));
            println!("{name:<40} smoke {:>12?}", t.elapsed());
            return;
        }
        // Calibrate: grow the per-batch iteration count until one batch
        // costs ≥ 50 ms, building fresh state per batch attempt.
        let mut iters: u64 = 1;
        let batch = loop {
            let mut state = setup();
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine(&mut state));
            }
            let spent = t.elapsed();
            if spent >= Duration::from_millis(50) || iters >= 1 << 20 {
                break spent;
            }
            iters *= 2;
        };
        // Time 3 more batches (4 total including the calibration batch).
        let mut spent = batch;
        for _ in 0..3 {
            let mut state = setup();
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine(&mut state));
            }
            spent += t.elapsed();
        }
        let total_iters = iters * 4;
        let per_iter = spent.as_nanos() / u128::from(total_iters);
        println!("{name:<40} {per_iter:>12} ns/iter ({total_iters} iters, batched)");
    }
}

fn bench_model_kernels(h: &Harness) {
    for dim in [8usize, 32, 128] {
        let mut rng = stream(1, SeedStream::ParamInit);
        let engine = NcfEngine::new(dim, &mut rng);
        let mut ws = engine.workspace();
        let u = init::normal_vec(dim, 0.3, &mut rng);
        let v = init::normal_vec(dim, 0.3, &mut rng);
        h.bench(&format!("model/ncf_forward/{dim}"), || {
            engine.forward(black_box(&u), black_box(&v), &mut ws)
        });
        let mut tg = engine.ffn().zeros_like();
        let mut du = vec![0.0; dim];
        let mut dv = vec![0.0; dim];
        h.bench(&format!("model/ncf_fwd_bwd/{dim}"), || {
            let logit = engine.forward(black_box(&u), black_box(&v), &mut ws);
            engine.backward(logit - 1.0, &mut ws, &mut tg, &mut du, &mut dv);
        });
    }
}

fn bench_ddr(h: &Harness) {
    for (rows, dim) in [(128usize, 32usize), (256, 32), (256, 128)] {
        let mut rng = stream(2, SeedStream::ParamInit);
        let z = init::normal(rows, dim, 1.0, &mut rng);
        h.bench(&format!("ddr/loss_grad/{rows}x{dim}"), || {
            hetefedrec_core::ddr::decorrelation_loss_grad(black_box(&z))
        });
    }
    // Threaded gradient product — the server-side / diagnostic path.
    let mut rng = stream(2, SeedStream::ParamInit);
    let z = init::normal(2048, 128, 1.0, &mut rng);
    h.bench("ddr/loss_grad/2048x128", || {
        hetefedrec_core::ddr::decorrelation_loss_grad(black_box(&z))
    });
    h.bench("ddr/loss_grad/2048x128/threads4", || {
        hetefedrec_core::ddr::decorrelation_loss_grad_threaded(black_box(&z), 4)
    });
}

fn bench_reskd(h: &Harness) {
    for items in [32usize, 128] {
        let mut rng = stream(3, SeedStream::ParamInit);
        let tables = [
            init::embedding_normal(2000, 8, &mut rng),
            init::embedding_normal(2000, 16, &mut rng),
            init::embedding_normal(2000, 32, &mut rng),
        ];
        let kd = KdConfig {
            items,
            lr: 1.0,
            steps: 1,
        };
        h.bench_with(
            &format!("reskd/distill_round/{items}"),
            || (tables.clone(), stream(4, SeedStream::Distill)),
            |(mut t, mut rng)| distill_round(&mut t, &kd, 1, &mut rng),
        );
        h.bench_with(
            &format!("reskd/distill_round/{items}/threads4"),
            || (tables.clone(), stream(4, SeedStream::Distill)),
            |(mut t, mut rng)| distill_round(&mut t, &kd, 4, &mut rng),
        );
    }
}

fn bench_eigen(h: &Harness) {
    for n in [32usize, 128] {
        let mut rng = stream(5, SeedStream::ParamInit);
        let x = init::normal(512, n, 1.0, &mut rng);
        let cov = hf_tensor::stats::covariance(&x);
        h.bench(&format!("eigen/jacobi/{n}"), || {
            hf_tensor::eigen::symmetric_eigenvalues(black_box(&cov), 1e-7, 64)
        });
        h.bench(&format!("eigen/jacobi_rescan_baseline/{n}"), || {
            baseline::jacobi_full_rescan(black_box(&cov), 1e-7, 64)
        });
    }
}

fn bench_topk(h: &Harness) {
    let scores: Vec<f32> = (0..4000).map(|i| ((i * 37) % 997) as f32 / 997.0).collect();
    let exclude: Vec<u32> = (0..200u32).map(|i| i * 17).collect();
    h.bench("eval/topk_4000_items", || {
        hf_metrics::top_k_excluding(black_box(&scores), 20, black_box(&exclude))
    });
}

fn bench_aggregation_matrix(h: &Harness) {
    let mut rng = stream(6, SeedStream::ParamInit);
    let a = init::normal(256, 128, 1.0, &mut rng);
    h.bench("tensor/gram_256x128", || black_box(&a).gram());
    let m = Matrix::from_fn(128, 128, |r, c| ((r * 131 + c * 17) as f32).sin());
    h.bench("tensor/matmul_128", || black_box(&a).matmul(black_box(&m)));
    // Blocked vs seed-era naive kernel at 256x256 (the DDR/RESKD regime).
    let b256 = init::normal(256, 256, 1.0, &mut rng);
    let c256 = init::normal(256, 256, 1.0, &mut rng);
    h.bench("tensor/matmul_256", || {
        black_box(&b256).matmul(black_box(&c256))
    });
    h.bench("tensor/matmul_naive_baseline_256", || {
        baseline::naive_matmul(black_box(&b256), black_box(&c256))
    });
    h.bench("tensor/par_matmul_256/threads4", || {
        hf_fedsim::linalg::par_matmul(black_box(&b256), black_box(&c256), 4)
    });
}

fn bench_parallel(h: &Harness) {
    // Skewed per-item cost (proportional to index) — the heterogeneous-
    // tier profile. Fixed chunking serialises on the last (most
    // expensive) chunk; work stealing re-balances it.
    let items: Vec<u64> = (0..256).collect();
    let skewed = |&x: &u64| -> f32 {
        let mut acc = (x as f32).sin();
        for k in 1..(x * 64 + 2) {
            acc += ((x * k) as f32).sqrt().cos() / k as f32;
        }
        acc
    };
    h.bench("parallel/skew_worksteal/threads8", || {
        hf_fedsim::parallel::parallel_map(black_box(&items), 8, skewed)
    });
    h.bench("parallel/skew_chunked_baseline/threads8", || {
        baseline::chunked_map(black_box(&items), 8, skewed)
    });
    h.bench("parallel/skew_sequential", || {
        hf_fedsim::parallel::parallel_map(black_box(&items), 1, skewed)
    });
}

/// Seed-era implementations kept verbatim so every `cargo bench` run
/// reports the before/after delta of the PR's kernel rewrites next to the
/// live numbers.
mod baseline {
    use hf_tensor::Matrix;

    /// The naive zero-skipping ikj matmul `Matrix::matmul` replaced.
    pub fn naive_matmul(a: &Matrix, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), other.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row_start = i * other.cols();
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = &mut out.as_mut_slice()[out_row_start..out_row_start + b_row.len()];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// The full-rescan cyclic Jacobi `symmetric_eigenvalues` replaced.
    pub fn jacobi_full_rescan(a: &Matrix, tol: f32, max_sweeps: usize) -> Vec<f32> {
        let n = a.rows();
        let mut m = a.clone();
        let norm = m.frobenius_norm().max(f32::MIN_POSITIVE);
        let stop = (tol * norm) as f64;
        for _ in 0..max_sweeps {
            let mut off = 0.0f64;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        let x = m.get(i, j) as f64;
                        off += x * x;
                    }
                }
            }
            if off.sqrt() <= stop {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    rotate(&mut m, p, q);
                }
            }
        }
        let mut eig: Vec<f32> = (0..n).map(|i| m.get(i, i)).collect();
        eig.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        eig
    }

    fn rotate(m: &mut Matrix, p: usize, q: usize) {
        let apq = m.get(p, q) as f64;
        if apq.abs() < 1e-30 {
            return;
        }
        let app = m.get(p, p) as f64;
        let aqq = m.get(q, q) as f64;
        let theta = (aqq - app) / (2.0 * apq);
        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
        let c = 1.0 / (t * t + 1.0).sqrt();
        let s = t * c;
        let n = m.rows();
        for k in 0..n {
            let akp = m.get(k, p) as f64;
            let akq = m.get(k, q) as f64;
            m.set(k, p, (c * akp - s * akq) as f32);
            m.set(k, q, (s * akp + c * akq) as f32);
        }
        for k in 0..n {
            let apk = m.get(p, k) as f64;
            let aqk = m.get(q, k) as f64;
            m.set(p, k, (c * apk - s * aqk) as f32);
            m.set(q, k, (s * apk + c * aqk) as f32);
        }
    }

    /// The fixed contiguous chunking `parallel_map` replaced.
    pub fn chunked_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let workers = threads.min(items.len());
        let chunk = items.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    }
}

fn bench_federated_round(h: &Harness) {
    let data = SyntheticConfig::tiny().generate(9);
    let split = SplitDataset::paper_split(&data, 9);
    // Session setup (parameter init + per-client state) dwarfs a tiny
    // epoch, so these run batched: one session per timing batch, each
    // iteration advancing it by one epoch. `eval_every(0)` keeps the
    // measured kernel pure training (no per-epoch ranking pass).
    for (label, strategy) in [
        (
            "federated/epoch_hetefedrec",
            Strategy::HeteFedRec(Ablation::FULL),
        ),
        ("federated/epoch_all_small", Strategy::AllSmall),
    ] {
        let split = split.clone();
        h.bench_batched(
            label,
            || {
                let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
                cfg.threads = 1;
                SessionBuilder::new(cfg, strategy, split.clone())
                    .eval_every(0)
                    .build()
                    .expect("valid bench configuration")
            },
            |s| s.run_epoch(),
        );
    }
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.threads = 1;
    let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .eval_every(0)
        .build()
        .expect("valid bench configuration");
    s.run_epoch();
    h.bench("federated/evaluate_population", || s.evaluate());

    // Checkpoint serialisation + parse + restore of a trained session —
    // the resume path's hot cost.
    let json = s.checkpoint();
    h.bench("federated/checkpoint_serialize", || s.checkpoint());
    h.bench("federated/checkpoint_restore", || {
        hetefedrec_core::Session::restore(black_box(&json), s.split().clone())
            .expect("valid checkpoint")
    });
}

fn main() {
    let h = Harness::new();
    println!(
        "hf_bench microbench — {} mode{}",
        if h.full { "full" } else { "smoke" },
        if h.full {
            ""
        } else {
            " (set HF_BENCH_FULL=1 or pass --bench for timing loops)"
        },
    );
    bench_model_kernels(&h);
    bench_ddr(&h);
    bench_reskd(&h);
    bench_eigen(&h);
    bench_topk(&h);
    bench_aggregation_matrix(&h);
    bench_parallel(&h);
    bench_federated_round(&h);
}
