//! Criterion micro-benchmarks for the computational kernels behind every
//! table and figure: model forward/backward (all tables), heterogeneous
//! aggregation (Table II), DDR gradient (Table IV/V, Fig. 8), RESKD round
//! (Table IV), ranking evaluation (every metric column), and a full
//! federated round + epoch (Fig. 7 / Table III).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hf_dataset::{SplitDataset, SyntheticConfig, Tier};
use hf_models::ncf::NcfEngine;
use hf_models::ModelKind;
use hf_tensor::rng::{stream, SeedStream};
use hf_tensor::{init, Matrix};
use hetefedrec_core::config::{KdConfig, TrainConfig};
use hetefedrec_core::reskd::distill_round;
use hetefedrec_core::{Ablation, Strategy, Trainer};

fn bench_model_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");
    for dim in [8usize, 32, 128] {
        let mut rng = stream(1, SeedStream::ParamInit);
        let engine = NcfEngine::new(dim, &mut rng);
        let mut ws = engine.workspace();
        let u = init::normal_vec(dim, 0.3, &mut rng);
        let v = init::normal_vec(dim, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("ncf_forward", dim), &dim, |b, _| {
            b.iter(|| engine.forward(black_box(&u), black_box(&v), &mut ws))
        });
        let mut tg = engine.ffn().zeros_like();
        let mut du = vec![0.0; dim];
        let mut dv = vec![0.0; dim];
        group.bench_with_input(BenchmarkId::new("ncf_fwd_bwd", dim), &dim, |b, _| {
            b.iter(|| {
                let logit = engine.forward(black_box(&u), black_box(&v), &mut ws);
                engine.backward(logit - 1.0, &mut ws, &mut tg, &mut du, &mut dv);
            })
        });
    }
    group.finish();
}

fn bench_ddr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddr");
    for (rows, dim) in [(128usize, 32usize), (256, 32), (256, 128)] {
        let mut rng = stream(2, SeedStream::ParamInit);
        let z = init::normal(rows, dim, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("loss_grad", format!("{rows}x{dim}")),
            &z,
            |b, z| b.iter(|| hetefedrec_core::ddr::decorrelation_loss_grad(black_box(z))),
        );
    }
    group.finish();
}

fn bench_reskd(c: &mut Criterion) {
    let mut group = c.benchmark_group("reskd");
    group.sample_size(20);
    for items in [32usize, 128] {
        let mut rng = stream(3, SeedStream::ParamInit);
        let tables = [
            init::embedding_normal(2000, 8, &mut rng),
            init::embedding_normal(2000, 16, &mut rng),
            init::embedding_normal(2000, 32, &mut rng),
        ];
        let kd = KdConfig { items, lr: 1.0, steps: 1 };
        group.bench_with_input(BenchmarkId::new("distill_round", items), &items, |b, _| {
            b.iter_batched(
                || (tables.clone(), stream(4, SeedStream::Distill)),
                |(mut t, mut rng)| distill_round(&mut t, &kd, &mut rng),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen");
    for n in [32usize, 128] {
        let mut rng = stream(5, SeedStream::ParamInit);
        let x = init::normal(512, n, 1.0, &mut rng);
        let cov = hf_tensor::stats::covariance(&x);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &cov, |b, cov| {
            b.iter(|| hf_tensor::eigen::symmetric_eigenvalues(black_box(cov), 1e-7, 64))
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval");
    let scores: Vec<f32> = (0..4000).map(|i| ((i * 37) % 997) as f32 / 997.0).collect();
    let exclude: Vec<u32> = (0..200u32).map(|i| i * 17).collect();
    group.bench_function("topk_4000_items", |b| {
        b.iter(|| hf_metrics::top_k_excluding(black_box(&scores), 20, black_box(&exclude)))
    });
    group.finish();
}

fn bench_aggregation_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    let mut rng = stream(6, SeedStream::ParamInit);
    let a = init::normal(256, 128, 1.0, &mut rng);
    group.bench_function("gram_256x128", |b| {
        b.iter(|| black_box(&a).gram())
    });
    let m = Matrix::from_fn(128, 128, |r, c| ((r * 131 + c * 17) as f32).sin());
    group.bench_function("matmul_128", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&m)))
    });
    group.finish();
}

fn bench_federated_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("federated");
    group.sample_size(10);
    let data = SyntheticConfig::tiny().generate(9);
    let split = SplitDataset::paper_split(&data, 9);
    for (label, strategy) in [
        ("epoch_hetefedrec", Strategy::HeteFedRec(Ablation::FULL)),
        ("epoch_all_small", Strategy::AllSmall),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
                    cfg.threads = 1;
                    Trainer::new(cfg, strategy, split.clone())
                },
                |mut t| t.run_epoch(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.bench_function("evaluate_population", |b| {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.threads = 1;
        let mut t = Trainer::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone());
        t.run_epoch();
        b.iter(|| t.evaluate())
    });
    let _ = Tier::Small; // keep the Tier import meaningful for readers
    group.finish();
}

criterion_group!(
    benches,
    bench_model_kernels,
    bench_ddr,
    bench_reskd,
    bench_eigen,
    bench_topk,
    bench_aggregation_matrix,
    bench_federated_round
);
criterion_main!(benches);
