//! **Async vs sync under churn** — the event-driven engine's headline
//! comparison (no figure in the paper; this is the follow-up experiment
//! for the asynchronous federation direction).
//!
//! Runs HeteFedRec under both orchestration modes across three
//! deployment scenarios — uniform latency with no churn, heavy-tailed
//! (lognormal) latency, and heavy-tailed latency with flap-prone churn —
//! and reports final quality next to the *simulated wall-clock* cost:
//! the logical ticks the run consumed, the client trainings it
//! completed, and trainings per kilotick. Two readings matter:
//!
//! * at zero churn with uniform latency the async NDCG should sit close
//!   to sync (staleness weighting does not wreck quality), and
//! * under the heavy-tailed profile async completes more work per tick —
//!   sync rounds wait for the slowest cohort member, async keeps the
//!   concurrency window full past stragglers.
//!
//! ```text
//! cargo run --release -p hf_bench --bin async_churn -- --scale tiny
//! cargo run --release -p hf_bench --bin async_churn -- \
//!     --set staleness_beta=1.0 --set async_buffer=32
//! ```

use hetefedrec_core::{Ablation, Mode, SessionBuilder, SessionEvent, Strategy};
use hf_bench::{fmt5, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;
use hf_fedsim::events::LatencyProfile;
use hf_fedsim::faults::ChurnProfile;

struct Scenario {
    name: &'static str,
    latency: LatencyProfile,
    churn: ChurnProfile,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "uniform/stable",
        latency: LatencyProfile::Uniform { min: 1, max: 9 },
        churn: ChurnProfile::None,
    },
    Scenario {
        name: "heavy-tail/stable",
        latency: LatencyProfile::LogNormal {
            median: 4.0,
            sigma: 1.0,
        },
        churn: ChurnProfile::None,
    },
    Scenario {
        name: "heavy-tail/flappy",
        latency: LatencyProfile::LogNormal {
            median: 4.0,
            sigma: 1.0,
        },
        churn: ChurnProfile::Flappy {
            offline_prob: 0.3,
            period: 40,
        },
    },
];

struct RunStats {
    ndcg: f64,
    ticks: u64,
    trainings: u64,
    mean_staleness: f64,
    max_staleness: u64,
}

fn run(cfg: &hetefedrec_core::TrainConfig, split: &hf_dataset::SplitDataset) -> RunStats {
    let strategy = Strategy::HeteFedRec(Ablation::FULL);
    let mut session = SessionBuilder::new(cfg.clone(), strategy, split.clone())
        .build()
        .expect("valid experiment configuration");
    let mut trainings = 0u64;
    let mut staleness_sum = 0u64;
    let mut staleness_n = 0u64;
    let mut max_staleness = 0u64;
    let mut ndcg = 0.0f64;
    for event in session.events() {
        match event {
            SessionEvent::Round(report) => {
                trainings += report.cohort as u64;
                if let Some(stats) = &report.asynchrony {
                    staleness_n += report.cohort as u64;
                    staleness_sum += stats
                        .staleness_hist
                        .iter()
                        .enumerate()
                        .map(|(s, &n)| s as u64 * n as u64)
                        .sum::<u64>();
                    max_staleness = max_staleness.max(stats.max_staleness);
                }
            }
            SessionEvent::Epoch(report) => {
                if let Some(eval) = &report.eval {
                    ndcg = eval.overall.ndcg;
                }
            }
        }
    }
    RunStats {
        ndcg,
        ticks: session.clock(),
        trainings,
        mean_staleness: if staleness_n == 0 {
            0.0
        } else {
            staleness_sum as f64 / staleness_n as f64
        },
        max_staleness,
    }
}

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Async vs sync federation under churn (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let split = make_split(*profile, opts.scale, opts.seed);
            let header = format!(
                "{:<20} {:<6} {:>8} {:>9} {:>10} {:>10} {:>7} {:>6}",
                "scenario", "mode", "ndcg", "ticks", "trainings", "work/ktick", "stale", "max"
            );
            println!("{header}\n{}", rule(&header));
            for scenario in &SCENARIOS {
                for mode in [Mode::Sync, Mode::Async] {
                    let mut cfg = hf_bench::make_config_with(&opts, *model, *profile);
                    cfg.mode = mode;
                    cfg.latency = scenario.latency.clone();
                    cfg.churn = scenario.churn;
                    let stats = run(&cfg, &split);
                    let work_per_ktick = if stats.ticks == 0 {
                        0.0
                    } else {
                        stats.trainings as f64 * 1000.0 / stats.ticks as f64
                    };
                    println!(
                        "{:<20} {:<6} {:>8} {:>9} {:>10} {:>10.1} {:>7.2} {:>6}",
                        scenario.name,
                        mode.tag(),
                        fmt5(stats.ndcg),
                        stats.ticks,
                        stats.trainings,
                        work_per_ktick,
                        stats.mean_staleness,
                        stats.max_staleness,
                    );
                    snapshot.push(
                        SnapshotRow::new()
                            .label("model", model.name())
                            .label("dataset", profile.name())
                            .label("scenario", scenario.name)
                            .label("mode", mode.tag())
                            .value("final_ndcg", stats.ndcg)
                            .value("ticks", stats.ticks as f64)
                            .value("trainings", stats.trainings as f64)
                            .value("work_per_ktick", work_per_ktick)
                            .value("mean_staleness", stats.mean_staleness)
                            .value("max_staleness", stats.max_staleness as f64),
                    );
                }
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
