//! **Capacity sweep** — what serving costs at 10k, 100k, and a million
//! users × items, eager vs. lazy.
//!
//! For each population size this synthesizes a `SyntheticProfile`
//! artifact straight to disk (no training — streaming writer, constant
//! memory), then measures the lazy path: open time, resident delta
//! after boot, steady-state queries/sec over 64-request batches with
//! tiled item halves, and how many user records actually ended up
//! resident. The eager path is loaded *afterwards* (so its allocations
//! cannot pollute the lazy resident numbers) and is skipped above 200k
//! users unless `HF_BENCH_FULL=1` — its in-memory cost is also reported
//! analytically from the section sizes either way, which is the number
//! the lazy path is holding the line against.
//!
//! ```text
//! cargo run --release -p hf_bench --bin capacity -- --scale small --json out.json
//! ```
//!
//! Scales: `tiny` sweeps 10k, `small` adds 100k, `medium`/`paper` add
//! the full million-user, million-item profile.

use hetefedrec_core::config::TierDims;
use hf_bench::{rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, SyntheticProfile};
use hf_serve::{
    footprint, ItemHalfMode, LazyConfig, ModelArtifact, RecommendRequest, Recommender,
    RecommenderBuilder,
};
use std::time::Instant;

/// Requests per serving batch (the ISSUE's acceptance batch shape).
const BATCH: usize = 64;
/// Measured eager loads stop above this many users unless
/// `HF_BENCH_FULL=1` — past it the point of the sweep is precisely that
/// one *shouldn't* materialise everything.
const EAGER_MEASURE_CAP: usize = 200_000;

fn sizes_for(scale: &str) -> Vec<(usize, usize)> {
    let mut sizes = vec![(10_000, 10_000)];
    if scale != "tiny" {
        sizes.push((100_000, 100_000));
    }
    if scale == "medium" || scale == "paper" {
        sizes.push((1_000_000, 1_000_000));
    }
    sizes
}

/// Serve `batches` waves of [`BATCH`] requests striding the population
/// (large prime step → touches many shards, like real traffic would)
/// and return steady-state queries/sec.
fn serve_waves(r: &Recommender, num_users: usize, batches: usize) -> f64 {
    let make = |wave: usize| -> Vec<RecommendRequest> {
        (0..BATCH)
            .map(|i| RecommendRequest::new((wave * BATCH + i) * 104_729 % num_users))
            .collect()
    };
    let _ = r.recommend_batch(&make(0)); // warm-up: page caches, size pools
    let t0 = Instant::now();
    for wave in 1..=batches {
        let responses = r.recommend_batch(&make(wave));
        assert_eq!(responses.len(), BATCH);
    }
    (batches * BATCH) as f64 / t0.elapsed().as_secs_f64()
}

fn rss() -> u64 {
    footprint::resident_bytes().unwrap_or(0)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let full_eager = std::env::var("HF_BENCH_FULL").is_ok_and(|v| v == "1");
    let dims = TierDims::new(4, 8, 16);
    println!(
        "Capacity sweep: synthetic artifacts, lazy vs eager serving \
         (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );
    let header = format!(
        "{:>9} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9} {:>10} {:>10}",
        "users",
        "items",
        "file MiB",
        "synth s",
        "lazy s",
        "lazy ΔMiB",
        "qps",
        "cached",
        "eager MiB"
    );
    println!("{header}");
    println!("{}", rule(&header));

    let dir = std::env::temp_dir().join(format!("hf_capacity_{}", std::process::id()));
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    for (users, items) in sizes_for(opts.scale.name) {
        let profile = SyntheticProfile::new(users, items);
        let path = dir.join(format!("capacity_{users}_{items}.hfa"));

        let t0 = Instant::now();
        let stats = ModelArtifact::synthesize_to_file(&profile, dims, opts.seed, &path)
            .expect("synthesize artifact");
        let synth_s = t0.elapsed().as_secs_f64();

        // The number the lazy path is holding the line against: what an
        // eager load must materialise (tables + every user record +
        // popularity), straight from the section sizes.
        let eager_bytes_est = stats.tables_bytes + stats.users_bytes + 4 * items as u64;

        // Lazy first — measured before eager so eager's allocations
        // can't inflate the lazy resident delta.
        let rss_before = rss();
        let t0 = Instant::now();
        let lazy = ModelArtifact::load_file_lazy(&path, LazyConfig::default()).expect("lazy open");
        let lazy_open_s = t0.elapsed().as_secs_f64();
        assert!(lazy.is_lazy());
        let r = RecommenderBuilder::new(lazy)
            .default_k(10)
            .item_half_mode(ItemHalfMode::Tiled { max_panels: 64 })
            .build()
            .expect("lazy recommender");
        let batches = if users >= 1_000_000 { 8 } else { 32 };
        let qps = serve_waves(&r, users, batches);
        let cached = r.artifact().cached_user_records();
        let lazy_delta = rss().saturating_sub(rss_before);
        drop(r);

        // Eager afterwards, and only where materialising is sane.
        let eager_measured = users <= EAGER_MEASURE_CAP || full_eager;
        let (eager_load_s, eager_qps) = if eager_measured {
            let t0 = Instant::now();
            let eager = ModelArtifact::load_file(&path).expect("eager load");
            let load_s = t0.elapsed().as_secs_f64();
            // PerBatch halves: don't precompute 3 full item-half matrices
            // on top of the tables at 1M items.
            let r = RecommenderBuilder::new(eager)
                .default_k(10)
                .item_half_mode(ItemHalfMode::PerBatch)
                .build()
                .expect("eager recommender");
            let qps = serve_waves(&r, users, batches);
            (Some(load_s), Some(qps))
        } else {
            (None, None)
        };

        println!(
            "{:>9} {:>9} {:>9.1} {:>8.2} {:>9.3} {:>10.1} {:>9.0} {:>10} {:>10.1}{}",
            users,
            items,
            mib(stats.file_bytes),
            synth_s,
            lazy_open_s,
            mib(lazy_delta),
            qps,
            cached,
            mib(eager_bytes_est),
            if eager_measured { "" } else { " (est only)" },
        );

        let mut row = SnapshotRow::new()
            .label("profile", format!("{users}x{items}"))
            .value("users", users as f64)
            .value("items", items as f64)
            .value("file_bytes", stats.file_bytes as f64)
            .value("interactions", stats.interactions as f64)
            .value("synth_s", synth_s)
            .value("lazy_open_s", lazy_open_s)
            .value("lazy_resident_delta_bytes", lazy_delta as f64)
            .value("lazy_qps", qps)
            .value("cached_user_records", cached as f64)
            .value("eager_bytes_est", eager_bytes_est as f64);
        if let (Some(load_s), Some(qps)) = (eager_load_s, eager_qps) {
            row = row.value("eager_load_s", load_s).value("eager_qps", qps);
        }
        snapshot.push(row);

        std::fs::remove_file(&path).ok();
    }
    if let Some(peak) = footprint::peak_resident_bytes() {
        println!(
            "\npeak resident over the whole sweep: {}",
            footprint::fmt_bytes(peak)
        );
    }
    println!(
        "\nlazy ΔMiB is resident growth from open + {BATCH}-request serving; \
         eager MiB is the materialised in-memory floor the lazy path avoids."
    );
    std::fs::remove_dir_all(&dir).ok();
    opts.emit_json(&snapshot);
}
