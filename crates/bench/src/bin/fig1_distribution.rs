//! **Fig. 1** — per-user interaction-count distributions of the three
//! dataset profiles, rendered as ASCII histograms.
//!
//! ```text
//! cargo run --release -p hf_bench --bin fig1_distribution -- --scale small
//! ```

use hf_bench::{CliOptions, SnapshotRow};
use hf_dataset::stats::InteractionHistogram;
use hf_dataset::{DatasetProfile, DatasetStats};

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Fig. 1: distribution of users' item interaction numbers (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );
    for profile in &opts.datasets {
        let data = profile
            .config_scaled(opts.scale.fraction)
            .generate(opts.seed);
        let stats = DatasetStats::compute(&data);
        println!(
            "== {} ==  (std dev {:.1}, mean {:.1} — paper quotes std {:.1}, mean {:.1})",
            profile.name(),
            stats.std_dev,
            stats.mean,
            match profile {
                DatasetProfile::MovieLens => 154.2,
                DatasetProfile::Anime => 79.8,
                DatasetProfile::Douban => 105.2,
            },
            profile.paper_mean(),
        );
        let hist = InteractionHistogram::compute(&data, 24);
        print!("{}", hist.render(48));
        println!();
        snapshot.push(
            SnapshotRow::new()
                .label("dataset", profile.name())
                .value("mean", stats.mean)
                .value("std_dev", stats.std_dev)
                .value("bin_width", hist.bin_width as f64)
                .series(
                    "bin_edges",
                    hist.bin_edges.iter().map(|&e| e as f64).collect(),
                )
                .series("counts", hist.counts.iter().map(|&c| c as f64).collect()),
        );
    }
    opts.emit_json(&snapshot);
}
