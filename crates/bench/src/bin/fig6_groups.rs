//! **Fig. 6** — NDCG@20 broken down by client data-size group
//! (`Us`/`Um`/`Ul`) for every strategy.
//!
//! ```text
//! cargo run --release -p hf_bench --bin fig6_groups -- --scale small --dataset all
//! ```

use hetefedrec_core::{run_experiment, Strategy};
use hf_bench::{fmt5, make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Fig. 6: per-group NDCG@20 (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let header = format!(
                "{:<22} {:>9} {:>9} {:>9} {:>9}",
                "Method", "Us", "Um", "Ul", "overall"
            );
            println!("{header}");
            println!("{}", rule(&header));
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = make_config_with(&opts, *model, *profile);
            for strategy in Strategy::ALL {
                let result = run_experiment(&cfg, strategy, &split);
                let g = &result.final_eval.per_group;
                println!(
                    "{:<22} {:>9} {:>9} {:>9} {:>9}",
                    result.strategy,
                    fmt5(g[0].ndcg),
                    fmt5(g[1].ndcg),
                    fmt5(g[2].ndcg),
                    fmt5(result.final_eval.overall.ndcg),
                );
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("method", &result.strategy)
                        .value("ndcg_us", g[0].ndcg)
                        .value("ndcg_um", g[1].ndcg)
                        .value("ndcg_ul", g[2].ndcg)
                        .value("ndcg_overall", result.final_eval.overall.ndcg),
                );
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
