//! **Fig. 7** — convergence curves (NDCG@20 per epoch) for All Small,
//! All Large, and HeteFedRec on ML.
//!
//! ```text
//! cargo run --release -p hf_bench --bin fig7_convergence -- --scale small
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy};
use hf_bench::{make_split, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Fig. 7: convergence (NDCG@20 per epoch, scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let strategies = [
        Strategy::AllSmall,
        Strategy::AllLarge,
        Strategy::ClusteredFedRec,
        Strategy::HeteFedRec(Ablation::FULL),
    ];

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = hf_bench::make_config_with(&opts, *model, *profile);

            let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
            for strategy in strategies {
                let result = run_experiment(&cfg, strategy, &split);
                let curve: Vec<f64> = result
                    .history
                    .epochs
                    .iter()
                    .map(|e| e.eval.overall.ndcg)
                    .collect();
                curves.push((result.strategy, curve));
            }

            print!("{:<22}", "epoch");
            for e in 1..=cfg.epochs {
                print!(" {e:>7}");
            }
            println!();
            for (name, curve) in &curves {
                print!("{name:<22}");
                for v in curve {
                    print!(" {v:>7.4}");
                }
                println!();
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("method", name)
                        .series("ndcg_per_epoch", curve.clone()),
                );
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
