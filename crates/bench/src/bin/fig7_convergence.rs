//! **Fig. 7** — convergence curves (NDCG@20 per epoch) for All Small,
//! All Large, and HeteFedRec on ML.
//!
//! Consumes the session event stream directly: each strategy's curve is
//! built from the [`EpochReport`]s as they are produced, rather than from
//! a post-hoc history dump. HeteFedRec is additionally run under the
//! asynchronous event-driven engine (`mode=async`) so the two
//! orchestration policies' convergence can be overlaid per epoch.
//!
//! ```text
//! cargo run --release -p hf_bench --bin fig7_convergence -- --scale small
//! ```

use hetefedrec_core::{Ablation, EpochReport, Mode, SessionBuilder, SessionEvent, Strategy};
use hf_bench::{make_split, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Fig. 7: convergence (NDCG@20 per epoch, scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let strategies = [
        Strategy::AllSmall,
        Strategy::AllLarge,
        Strategy::ClusteredFedRec,
        Strategy::HeteFedRec(Ablation::FULL),
    ];

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = hf_bench::make_config_with(&opts, *model, *profile);

            let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
            let mut runs: Vec<(String, Strategy, Mode)> = strategies
                .iter()
                .map(|s| (s.name().to_string(), *s, cfg.mode))
                .collect();
            // Overlay: HeteFedRec again under the other orchestration
            // mode, so sync and async convergence sit side by side.
            let other = match cfg.mode {
                Mode::Sync => Mode::Async,
                Mode::Async => Mode::Sync,
            };
            runs.push((
                format!("hetefedrec ({})", other.tag()),
                Strategy::HeteFedRec(Ablation::FULL),
                other,
            ));
            for (name, strategy, mode) in runs {
                let mut run_cfg = cfg.clone();
                run_cfg.mode = mode;
                let mut session = SessionBuilder::new(run_cfg, strategy, split.clone())
                    .build()
                    .expect("valid experiment configuration");
                let mut curve: Vec<f64> = Vec::with_capacity(cfg.epochs);
                for event in session.events() {
                    if let SessionEvent::Epoch(EpochReport {
                        eval: Some(eval), ..
                    }) = event
                    {
                        curve.push(eval.overall.ndcg);
                    }
                }
                curves.push((name, curve));
            }

            print!("{:<22}", "epoch");
            for e in 1..=cfg.epochs {
                print!(" {e:>7}");
            }
            println!();
            for (name, curve) in &curves {
                print!("{name:<22}");
                for v in curve {
                    print!(" {v:>7.4}");
                }
                println!();
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("method", name)
                        .series("ndcg_per_epoch", curve.clone()),
                );
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
