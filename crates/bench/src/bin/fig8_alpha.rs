//! **Fig. 8** — NDCG@20 of HeteFedRec as the DDR weight α sweeps
//! 0.5 → 2.0 on ML.
//!
//! ```text
//! cargo run --release -p hf_bench --bin fig8_alpha -- --scale small
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy};
use hf_bench::{fmt5, make_config_with, make_split, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Fig. 8: NDCG@20 vs DDR weight alpha (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let alphas = [0.5f32, 0.75, 1.0, 1.5, 2.0];

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let split = make_split(*profile, opts.scale, opts.seed);
            let mut points = Vec::new();
            for &alpha in &alphas {
                let mut cfg = make_config_with(&opts, *model, *profile);
                cfg.alpha = alpha;
                let r = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
                points.push((alpha, r.final_eval.overall.ndcg));
            }
            let peak = points
                .iter()
                .cloned()
                .fold(f64::MIN, |m, (_, v)| m.max(v))
                .max(1e-12);
            for (alpha, ndcg) in &points {
                let bar = ((ndcg / peak) * 40.0).round() as usize;
                println!("alpha {alpha:<5} {} |{}", fmt5(*ndcg), "#".repeat(bar));
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .value("alpha", *alpha as f64)
                        .value("ndcg", *ndcg),
                );
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
