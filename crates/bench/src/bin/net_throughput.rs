//! **Network serving throughput** — socket-to-socket queries/sec and
//! latency percentiles of the framed TCP service, swept over the
//! micro-batcher window and the number of concurrent connections.
//!
//! Trains one epoch, exports a `ModelArtifact`, serves it on an
//! ephemeral loopback port through `hf_net::serve`, and drives it with
//! the open-loop Poisson load generator (deterministic arrival
//! schedule, per-connection latency histograms merged at the end).
//! Latencies are measured from just before the request bytes hit the
//! socket to the moment the matching response frame is decoded — the
//! full socket-to-socket path including framing, queueing, batching and
//! ranking.
//!
//! ```text
//! cargo run --release -p hf_bench --bin net_throughput -- --scale tiny --dataset ml
//! ```
//!
//! `--set net_rate=N` overrides the offered load (req/s, default 4000);
//! `--set net_requests=N` the per-measurement request count (default
//! 2000); `--json <path>` writes the usual snapshot rows.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_bench::{make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;
use hf_net::{run_loadgen, serve, LoadGen, ServerConfig};
use hf_serve::{ExportArtifact, RecommenderBuilder};
use std::time::Duration;

/// Micro-batch windows swept (µs). 0 = dispatch immediately: every
/// request is its own batch unless the queue is already backed up.
const BATCH_WINDOWS_US: [u64; 2] = [0, 1000];
/// Concurrent client connections swept. The acceptance bar is a
/// latency report under at least 8 connections.
const CONNECTIONS: [usize; 2] = [1, 8];

fn main() {
    let mut opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    // Serving-side knobs, not TrainConfig fields; strip them before the
    // generic override application.
    let mut net_rate: f64 = 4000.0;
    let mut net_requests: usize = 2000;
    let mut bad_override: Option<String> = None;
    opts.overrides.retain(|(k, v)| match k.as_str() {
        "net_rate" => {
            match v.parse() {
                Ok(n) => net_rate = n,
                Err(_) => bad_override = Some(format!("net_rate={v}")),
            }
            false
        }
        "net_requests" => {
            match v.parse() {
                Ok(n) => net_requests = n,
                Err(_) => bad_override = Some(format!("net_requests={v}")),
            }
            false
        }
        _ => true,
    });
    if let Some(bad) = bad_override {
        // Match apply_overrides: a malformed value is a usage error,
        // never a silent fallback.
        eprintln!("error: bad value for --set {bad}");
        std::process::exit(2);
    }

    println!(
        "Network serving throughput: framed TCP service on loopback, open-loop \
         Poisson load (scale={}, seed={}, offered {net_rate:.0} req/s)\n",
        opts.scale.name, opts.seed
    );

    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    for profile in &opts.datasets {
        for model in &opts.models {
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = make_config_with(&opts, *model, *profile);
            let mut session =
                SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
                    .eval_every(0)
                    .build()
                    .expect("valid experiment configuration");
            session.run_epoch();
            let artifact = session.export_artifact();

            let num_users = split.num_users();
            println!(
                "== {} / {} ({} users, {} items) ==",
                profile.name(),
                model.name(),
                num_users,
                split.num_items()
            );
            let header = format!(
                "{:>10} {:>6} {:>10} {:>12} {:>10} {:>10} {:>10}",
                "window µs", "conns", "requests", "achieved/s", "p50 ms", "p95 ms", "p99 ms"
            );
            println!("{header}");
            println!("{}", rule(&header));

            for &window_us in &BATCH_WINDOWS_US {
                for &connections in &CONNECTIONS {
                    // A fresh server per cell: the batcher window is fixed
                    // at construction and queues must start empty.
                    let recommender = RecommenderBuilder::new(artifact.clone())
                        .default_k(20)
                        .build()
                        .expect("valid serving configuration");
                    let handle = serve(
                        recommender,
                        "127.0.0.1:0",
                        ServerConfig {
                            batch_window: Duration::from_micros(window_us),
                            ..ServerConfig::default()
                        },
                    )
                    .expect("loopback server");

                    let load = LoadGen {
                        connections,
                        target_qps: net_rate,
                        requests: net_requests,
                        max_duration: Duration::from_secs(120),
                        seed: opts.seed ^ window_us ^ connections as u64,
                        users: num_users as u64 + num_users as u64 / 20,
                        k: 0,
                        capture: false,
                    };
                    let report = run_loadgen(handle.local_addr(), &load).expect("load generation");
                    handle.shutdown();
                    assert_eq!(
                        report.received, report.sent,
                        "every request must be answered"
                    );

                    let q = |p: f64| report.latency.quantile_ms(p).unwrap_or(f64::NAN);
                    let (p50, p95, p99) = (q(0.50), (q(0.95)), q(0.99));
                    let qps = report.achieved_qps();
                    println!(
                        "{:>10} {:>6} {:>10} {:>12} {:>10} {:>10} {:>10}",
                        window_us,
                        connections,
                        report.received,
                        format!("{qps:.0}"),
                        format!("{p50:.3}"),
                        format!("{p95:.3}"),
                        format!("{p99:.3}"),
                    );
                    snapshot.push(
                        SnapshotRow::new()
                            .label("dataset", profile.name())
                            .label("model", model.name())
                            .value("batch_window_us", window_us as f64)
                            .value("connections", connections as f64)
                            .value("requests", report.received as f64)
                            .value("offered_qps", net_rate)
                            .value("achieved_qps", qps)
                            .value("p50_ms", p50)
                            .value("p95_ms", p95)
                            .value("p99_ms", p99),
                    );
                }
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
