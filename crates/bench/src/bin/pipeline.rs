//! **Online pipeline freshness** — what does a stale artifact cost, and
//! what does swapping a fresh one in cost?
//!
//! Carves a held-out interaction stream from each dataset, runs the
//! full [`PipelineDriver`] loop (ingest → train → export) over it, then
//! prices both sides of the online trade:
//!
//! * **freshness payoff** — [`drift_report`] replays the held-out
//!   events against the stale (v1, pre-ingest) and fresh (final)
//!   artifact generations: NDCG@k per generation, the delta, and the
//!   mean rank displacement of the target items;
//! * **swap cost** — wall time of the serving-visible
//!   [`ArtifactSlot::swap`] (what in-flight traffic can observe) and of
//!   the full reload path (artifact file load + recommender build) that
//!   runs off the serving path.
//!
//! ```text
//! cargo run --release -p hf_bench --bin pipeline -- --scale tiny --dataset ml
//! ```
//!
//! `--json <path>` writes the usual snapshot rows.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_bench::{fmt5, make_config_with, rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, SplitDataset};
use hf_pipeline::{
    artifact_path, drift_report, PipelineConfig, PipelineDriver, ReplayConfig, ReplayStream,
};
use hf_serve::{ArtifactSlot, ModelArtifact, Recommender, RecommenderBuilder};
use std::time::Instant;

/// Ranking cutoff for the drift NDCG terms.
const DRIFT_K: usize = 10;
/// Swap-latency sample count.
const SWAPS: usize = 8;

fn build(artifact: ModelArtifact, threads: usize) -> Recommender {
    RecommenderBuilder::new(artifact)
        .default_k(DRIFT_K)
        .threads(threads)
        .build()
        .expect("valid serving configuration")
}

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    println!(
        "Online pipeline: freshness payoff and hot-swap cost \
         (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    for profile in &opts.datasets {
        for model in &opts.models {
            // Carve the stream before splitting: the base (pre-cutoff)
            // interactions train, the held-out events stream in.
            let data = profile
                .config_scaled(opts.scale.fraction)
                .generate(opts.seed);
            // A short horizon, single-round cycles: every held-out event
            // comes due within the first few rounds whatever the
            // cohort shape, so the fresh generation has really trained
            // on the stream.
            let replay = ReplayConfig {
                item_frac: 0.2,
                new_users: 2,
                start: 1,
                horizon: 2,
            };
            let (base, stream) = ReplayStream::replay(&data, &replay, opts.seed);
            let held_out = stream.events().to_vec();
            let split = SplitDataset::paper_split(&base, opts.seed);
            let cfg = make_config_with(&opts, *model, *profile);
            let threads = cfg.threads;
            let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
                .eval_every(0)
                .build()
                .expect("valid experiment configuration");

            let dir = std::env::temp_dir().join(format!(
                "hf-bench-pipeline-{}-{}-{}",
                std::process::id(),
                profile.name(),
                model.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut driver = PipelineDriver::new(
                session,
                stream,
                PipelineConfig {
                    rounds_per_cycle: 1,
                    export_every: 0, // v1 at start, final generation at the end
                    artifact_dir: dir.clone(),
                },
            )
            .expect("initial artifact export");
            let t0 = Instant::now();
            let reports = driver.run().expect("pipeline runs");
            let pipeline_s = t0.elapsed().as_secs_f64();
            let generations = driver.version();
            let ingested = driver.session().ingested_events();
            if ingested < held_out.len() as u64 {
                println!(
                    "  note: {} of {} events never came due (run ended before the horizon)",
                    held_out.len() as u64 - ingested,
                    held_out.len()
                );
            }

            println!(
                "== {} / {} ({} base users, {} held-out events, {} cycles in {:.2}s) ==",
                profile.name(),
                model.name(),
                base.num_users(),
                held_out.len(),
                reports.len(),
                pipeline_s
            );

            // Freshness payoff: stale v1 vs the final generation.
            let t0 = Instant::now();
            let stale_artifact =
                ModelArtifact::load_file(artifact_path(&dir, 1)).expect("stale artifact");
            let fresh_artifact =
                ModelArtifact::load_file(artifact_path(&dir, generations)).expect("fresh artifact");
            let reload_ms = t0.elapsed().as_secs_f64() * 1e3 / 2.0;
            let stale = build(stale_artifact, threads);
            let fresh = build(fresh_artifact.clone(), threads);
            let t0 = Instant::now();
            let drift = drift_report(&stale, &fresh, &held_out, DRIFT_K);
            let drift_s = t0.elapsed().as_secs_f64();

            // Swap cost: the serving-visible slot exchange, fresh
            // recommenders built off the timer.
            let slot = ArtifactSlot::new(build(fresh_artifact.clone(), threads));
            let mut swap_us: Vec<f64> = Vec::with_capacity(SWAPS);
            for _ in 0..SWAPS {
                let next = build(fresh_artifact.clone(), threads);
                let t0 = Instant::now();
                slot.swap(next);
                swap_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            let swap_mean = swap_us.iter().sum::<f64>() / swap_us.len() as f64;
            let swap_max = swap_us.iter().cloned().fold(0.0f64, f64::max);

            let header = format!(
                "{:>12} {:>12} {:>12} {:>14} {:>12} {:>12}",
                "stale NDCG", "fresh NDCG", "delta", "displacement", "swap us", "reload ms"
            );
            println!("{header}");
            println!("{}", rule(&header));
            println!(
                "{:>12} {:>12} {:>12} {:>14} {:>12} {:>12}",
                fmt5(drift.stale_ndcg),
                fmt5(drift.fresh_ndcg),
                format!("{:+.5}", drift.ndcg_delta),
                format!("{:.2}", drift.mean_rank_displacement),
                format!("{swap_mean:.1}"),
                format!("{reload_ms:.2}"),
            );
            println!(
                "  {} generations, {} events ingested, drift eval {:.2}s, swap max {:.1} us\n",
                generations, ingested, drift_s, swap_max
            );

            snapshot.push(
                SnapshotRow::new()
                    .label("dataset", profile.name())
                    .label("model", model.name())
                    .value("held_out_events", held_out.len() as f64)
                    .value("ingested_events", ingested as f64)
                    .value("generations", generations as f64)
                    .value("stale_ndcg", drift.stale_ndcg)
                    .value("fresh_ndcg", drift.fresh_ndcg)
                    .value("ndcg_delta", drift.ndcg_delta)
                    .value("mean_rank_displacement", drift.mean_rank_displacement)
                    .value("swap_us_mean", swap_mean)
                    .value("swap_us_max", swap_max)
                    .value("reload_ms", reload_ms)
                    .value("pipeline_s", pipeline_s),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    opts.emit_json(&snapshot);
}
