//! **Secure-aggregation overhead** — cost of the pairwise-masked upload
//! path (no figure in the paper; this is the measurement companion of
//! the privacy direction, DESIGN.md §10).
//!
//! Sweeps cohort size × injected dropout rate and, for each cell, runs
//! the same federation twice — plaintext and masked — reporting:
//!
//! * upload bytes under masking vs plaintext (dense quantized ring
//!   vectors cannot exploit update sparsity; the ratio is the price of
//!   hiding individual updates), plus the one-off setup traffic (keys +
//!   escrowed share bundles),
//! * wall-clock spent deriving/applying masks and recovering dropped
//!   members' masks from escrow, and
//! * the protocol's bookkeeping: committed participants, dropouts,
//!   recovered masks, and whether every round's unmasked aggregate
//!   verified against the plaintext quantized reference.
//!
//! ```text
//! cargo run --release -p hf_bench --bin secagg -- --scale tiny
//! cargo run --release -p hf_bench --bin secagg -- \
//!     --set secagg_scale_bits=20 --json target/secagg.json
//! ```
//!
//! `--set secagg=...` is ignored here (the sweep controls it); the other
//! overrides apply to both twins.

use hetefedrec_core::{Ablation, SessionBuilder, SessionEvent, Strategy, TrainConfig};
use hf_bench::{fmt5, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, SplitDataset};

const COHORTS: [usize; 3] = [8, 16, 32];
const DROP_RATES: [f64; 3] = [0.0, 0.1, 0.2];

#[derive(Default)]
struct RunStats {
    ndcg: f64,
    upload_bytes: u64,
    setup_bytes: u64,
    participants: u64,
    dropped: u64,
    recovered: u64,
    verified: bool,
    mask_ms: f64,
    recovery_ms: f64,
}

fn run(cfg: &TrainConfig, split: &SplitDataset) -> RunStats {
    let mut session = SessionBuilder::new(
        cfg.clone(),
        Strategy::HeteFedRec(Ablation::FULL),
        split.clone(),
    )
    .build()
    .expect("valid experiment configuration");
    let mut stats = RunStats {
        verified: true,
        ..RunStats::default()
    };
    for event in session.events() {
        match event {
            SessionEvent::Round(report) => {
                stats.upload_bytes += report.upload_bytes;
                if let Some(s) = &report.secagg {
                    stats.setup_bytes += s.setup_bytes;
                    stats.participants += s.participants as u64;
                    stats.dropped += s.dropped as u64;
                    stats.recovered += s.recovered as u64;
                    stats.verified &= s.verified;
                }
            }
            SessionEvent::Epoch(report) => {
                if let Some(eval) = &report.eval {
                    stats.ndcg = eval.overall.ndcg;
                }
            }
        }
    }
    if let Some((mask_nanos, recovery_nanos)) = session.secagg_timing() {
        stats.mask_ms = mask_nanos as f64 / 1e6;
        stats.recovery_ms = recovery_nanos as f64 / 1e6;
    }
    stats
}

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Secure-aggregation overhead sweep (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let split = make_split(*profile, opts.scale, opts.seed);
            let header = format!(
                "{:<7} {:>5} {:>8} {:>12} {:>12} {:>6} {:>10} {:>6} {:>5} {:>8} {:>8}",
                "cohort",
                "drop",
                "ndcg",
                "masked_B",
                "plain_B",
                "ratio",
                "setup_B",
                "drops",
                "rec",
                "mask_ms",
                "rcvr_ms"
            );
            println!("{header}\n{}", rule(&header));
            for &cohort in &COHORTS {
                for &drop in &DROP_RATES {
                    let mut cfg = hf_bench::make_config_with(&opts, *model, *profile);
                    cfg.clients_per_round = cohort;
                    cfg.drop_prob = drop;
                    cfg.secagg.enabled = false;
                    let plain = run(&cfg, &split);
                    cfg.secagg.enabled = true;
                    let masked = run(&cfg, &split);
                    assert!(
                        masked.verified,
                        "a masked round failed verification at cohort={cohort} drop={drop}"
                    );
                    let ratio = if plain.upload_bytes == 0 {
                        0.0
                    } else {
                        masked.upload_bytes as f64 / plain.upload_bytes as f64
                    };
                    println!(
                        "{:<7} {:>5.2} {:>8} {:>12} {:>12} {:>6.1} {:>10} {:>6} {:>5} {:>8.2} {:>8.2}",
                        cohort,
                        drop,
                        fmt5(masked.ndcg),
                        masked.upload_bytes,
                        plain.upload_bytes,
                        ratio,
                        masked.setup_bytes,
                        masked.dropped,
                        masked.recovered,
                        masked.mask_ms,
                        masked.recovery_ms,
                    );
                    snapshot.push(
                        SnapshotRow::new()
                            .label("model", model.name())
                            .label("dataset", profile.name())
                            .value("cohort", cohort as f64)
                            .value("drop_prob", drop)
                            .value("masked_ndcg", masked.ndcg)
                            .value("plain_ndcg", plain.ndcg)
                            .value("masked_upload_bytes", masked.upload_bytes as f64)
                            .value("plain_upload_bytes", plain.upload_bytes as f64)
                            .value("upload_ratio", ratio)
                            .value("setup_bytes", masked.setup_bytes as f64)
                            .value("participants", masked.participants as f64)
                            .value("dropped", masked.dropped as f64)
                            .value("recovered", masked.recovered as f64)
                            .value("mask_ms", masked.mask_ms)
                            .value("recovery_ms", masked.recovery_ms),
                    );
                }
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
