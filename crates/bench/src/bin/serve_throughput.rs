//! **Serving throughput** — queries/sec and per-request latency of the
//! batched `Recommender` at each batch size, from tiny to paper scale.
//!
//! Trains one epoch (so the artifact is a real post-aggregation model,
//! not an init snapshot), exports a `ModelArtifact`, and drives
//! `recommend_batch` with request waves cycling over the population —
//! known users plus a slice of cold-start ids. Latency percentiles are
//! over batch wall times (what a `recommend_batch` caller observes; for
//! batch 1 that is exact per-request latency).
//!
//! ```text
//! cargo run --release -p hf_bench --bin serve_throughput -- --scale tiny --dataset ml
//! ```
//!
//! `--set serve_threads=N` overrides the serving thread count (defaults
//! to the training thread count); `--json <path>` writes the usual
//! snapshot rows.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_bench::{fmt5, make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;
use hf_serve::{ExportArtifact, RecommendRequest, RecommenderBuilder};
use std::time::Instant;

/// Batch shapes swept per dataset/model.
const BATCH_SIZES: [usize; 3] = [1, 32, 256];
/// Target number of requests per measurement (clamped by batch count).
const TARGET_REQUESTS: usize = 2048;

fn main() {
    let mut opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    // `serve_threads` is a serving knob, not a TrainConfig field; strip it
    // before the generic override application.
    let mut serve_threads: Option<usize> = None;
    opts.overrides.retain(|(k, v)| {
        if k == "serve_threads" {
            match v.parse() {
                Ok(n) => serve_threads = Some(n),
                Err(_) => {
                    // Match apply_overrides: a malformed value is a usage
                    // error, never a silent fallback.
                    eprintln!("error: bad value for --set serve_threads={v}");
                    std::process::exit(2);
                }
            }
            false
        } else {
            true
        }
    });

    println!(
        "Serving throughput: batched Recommender over an exported artifact \
         (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    for profile in &opts.datasets {
        for model in &opts.models {
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = make_config_with(&opts, *model, *profile);
            let threads = serve_threads.unwrap_or(cfg.threads);
            let mut session =
                SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
                    .eval_every(0)
                    .build()
                    .expect("valid experiment configuration");
            session.run_epoch();

            let recommender = RecommenderBuilder::new(session.export_artifact())
                .default_k(20)
                .threads(threads)
                .build()
                .expect("valid serving configuration");

            let num_users = split.num_users();
            println!(
                "== {} / {} ({} users, {} items, {} serving threads) ==",
                profile.name(),
                model.name(),
                num_users,
                split.num_items(),
                threads
            );
            let header = format!(
                "{:>6} {:>10} {:>12} {:>14} {:>14}",
                "batch", "requests", "queries/s", "p50 batch ms", "p99 batch ms"
            );
            println!("{header}");
            println!("{}", rule(&header));

            for &batch_size in &BATCH_SIZES {
                let batches = (TARGET_REQUESTS / batch_size).clamp(4, 256);
                // Request stream: cycle the population, salt in cold ids.
                let mut next_user = 0usize;
                let mut make_batch = |salt: usize| -> Vec<RecommendRequest> {
                    (0..batch_size)
                        .map(|i| {
                            let cold = (salt + i) % 97 == 0;
                            let user = if cold {
                                num_users + salt + i // unknown → fallback path
                            } else {
                                let u = next_user;
                                next_user = (next_user + 1) % num_users;
                                u
                            };
                            RecommendRequest::new(user)
                        })
                        .collect()
                };
                // Warm-up wave (page in tables, size caches).
                let _ = recommender.recommend_batch(&make_batch(1));

                // Percentiles are over *batch wall times* — the latency a
                // recommend_batch caller actually observes. For batch 1
                // that is exact per-request latency; for larger batches a
                // per-request "percentile" would just be a tail-hiding
                // mean, so it is deliberately not reported.
                let mut batch_ms: Vec<f64> = Vec::with_capacity(batches);
                let run_start = Instant::now();
                for b in 0..batches {
                    let requests = make_batch(b);
                    let t0 = Instant::now();
                    let responses = recommender.recommend_batch(&requests);
                    let dt = t0.elapsed();
                    assert_eq!(responses.len(), batch_size);
                    batch_ms.push(dt.as_secs_f64() * 1e3);
                }
                let total = run_start.elapsed().as_secs_f64();
                let requests_total = batches * batch_size;
                let qps = requests_total as f64 / total;
                batch_ms.sort_by(|a, b| a.total_cmp(b));
                let pct = |p: f64| -> f64 {
                    let idx = ((batch_ms.len() - 1) as f64 * p).round() as usize;
                    batch_ms[idx]
                };
                let (p50, p99) = (pct(0.50), (pct(0.99)));
                println!(
                    "{:>6} {:>10} {:>12} {:>14} {:>14}",
                    batch_size,
                    requests_total,
                    format!("{qps:.0}"),
                    format!("{p50:.3}"),
                    format!("{p99:.3}"),
                );
                snapshot.push(
                    SnapshotRow::new()
                        .label("dataset", profile.name())
                        .label("model", model.name())
                        .value("batch_size", batch_size as f64)
                        .value("requests", requests_total as f64)
                        .value("queries_per_sec", qps)
                        .value("batch_p50_ms", p50)
                        .value("batch_p99_ms", p99)
                        .value("serve_threads", threads as f64),
                );
            }
            // Sanity line: the artifact serves real rankings (top-20 NDCG
            // recomputed through the serving path equals offline eval).
            let eval = session.evaluate();
            println!(
                "  offline eval of the served model: NDCG@20 {}  Recall@20 {}\n",
                fmt5(eval.overall.ndcg),
                fmt5(eval.overall.recall)
            );
        }
    }
    opts.emit_json(&snapshot);
}
