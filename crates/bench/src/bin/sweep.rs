//! Hyper-parameter sensitivity sweep (extension beyond the paper).
//!
//! Greedily explores the knobs the paper leaves unreported — the
//! distillation step size and subset size, the DDR weight, the UDL
//! task-loss scaling, and local learning rates — printing the NDCG@20 of
//! full HeteFedRec next to the strongest baseline for each setting.
//!
//! ```text
//! cargo run --release -p hf_bench --bin sweep -- --scale small --dataset ml --model ncf
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy, TrainConfig};
use hf_bench::{fmt5, make_split, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;
use std::cell::RefCell;

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let model = opts.models[0];
    let profile = opts.datasets[0];
    let split = make_split(profile, opts.scale, opts.seed);
    let base = hf_bench::make_config_with(&opts, model, profile);

    println!(
        "Hyper-parameter sweep on {} / {} (scale={}, seed={})\n",
        model.name(),
        profile.name(),
        opts.scale.name,
        opts.seed
    );

    // RefCell so the shared `run` helper stays callable from every sweep
    // loop below (a plain `mut` capture would make `run` itself `FnMut`).
    let snapshot: RefCell<Vec<SnapshotRow>> = RefCell::new(Vec::new());
    let run = |label: &str, cfg: &TrainConfig, strategy: Strategy| {
        let r = run_experiment(cfg, strategy, &split);
        println!(
            "{label:<42} recall {}  ndcg {}",
            fmt5(r.final_eval.overall.recall),
            fmt5(r.final_eval.overall.ndcg)
        );
        snapshot.borrow_mut().push(
            SnapshotRow::new()
                .label("model", model.name())
                .label("dataset", profile.name())
                .label("setting", label)
                .value("recall", r.final_eval.overall.recall)
                .value("ndcg", r.final_eval.overall.ndcg),
        );
    };

    // Reference points.
    run("baseline: All Small", &base, Strategy::AllSmall);
    run(
        "baseline: Directly Aggregate",
        &base,
        Strategy::DirectlyAggregate,
    );
    println!();

    // UDL auxiliary-task weighting.
    for aux in [1.0, 0.5, 0.3, 0.1] {
        let mut cfg = base.clone();
        cfg.udl_aux_weight = aux;
        run(
            &format!("UDL only (udl_aux={aux})"),
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD_DDR),
        );
    }
    println!();

    // DDR weight.
    for alpha in [0.25, 0.5, 1.0, 2.0] {
        let mut cfg = base.clone();
        cfg.alpha = alpha;
        run(
            &format!("UDL+DDR (alpha={alpha})"),
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD),
        );
    }
    println!();

    // Distillation step size and subset.
    for kd_lr in [0.005, 0.01, 0.05] {
        for kd_items in [32, 128] {
            let mut cfg = base.clone();
            cfg.kd.lr = kd_lr;
            cfg.kd.items = kd_items;
            run(
                &format!("full (kd_lr={kd_lr}, kd_items={kd_items})"),
                &cfg,
                Strategy::HeteFedRec(Ablation::FULL),
            );
        }
    }
    println!();

    // Local learning rates.
    for local_lr in [0.02, 0.05, 0.1] {
        let mut cfg = base.clone();
        cfg.local_lr = local_lr;
        run(
            &format!("full (local_lr={local_lr})"),
            &cfg,
            Strategy::HeteFedRec(Ablation::FULL),
        );
    }
    opts.emit_json(&snapshot.into_inner());
}
