//! **Table I** — dataset statistics (users, items, interactions, mean,
//! p50, p80) of the generated profiles, next to the paper's values.
//!
//! ```text
//! cargo run --release -p hf_bench --bin table1_stats -- --scale paper
//! ```

use hf_bench::{rule, CliOptions};
use hf_dataset::{DatasetProfile, DatasetStats};
use hf_tensor::ser::{obj, ToJson};

/// One `--json` snapshot row: profile name plus its measured statistics.
struct StatsRow {
    dataset: &'static str,
    stats: DatasetStats,
}

impl ToJson for StatsRow {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("dataset", &self.dataset)
                .field("stats", &self.stats);
        });
    }
}

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<StatsRow> = Vec::new();
    println!(
        "Table I: dataset statistics (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );
    let header = format!(
        "{:<8} {:>7} {:>7} {:>11} {:>6} {:>6} {:>6}   | paper: {:>7} {:>7} {:>11} {:>6} {:>6} {:>6}",
        "Dataset", "Users", "Items", "Interact.", "Avg.", "<50%", "<80%",
        "Users", "Items", "Interact.", "Avg.", "<50%", "<80%"
    );
    println!("{header}");
    println!("{}", rule(&header));
    for profile in &opts.datasets {
        let data = profile
            .config_scaled(opts.scale.fraction)
            .generate(opts.seed);
        let s = DatasetStats::compute(&data);
        println!(
            "{:<8} {:>7} {:>7} {:>11} {:>6.0} {:>6} {:>6}   |        {:>7} {:>7} {:>11} {:>6.0} {:>6.0} {:>6.0}",
            profile.name(),
            s.users,
            s.items,
            s.interactions,
            s.mean,
            s.p50,
            s.p80,
            profile.paper_users(),
            profile.paper_items(),
            profile.paper_interactions(),
            profile.paper_mean(),
            profile.paper_p50(),
            profile.paper_p80(),
        );
        snapshot.push(StatsRow {
            dataset: profile.name(),
            stats: s,
        });
    }
    opts.emit_json(&snapshot);
    println!(
        "\n(At scale={} the generated counts are the paper's scaled by the\n\
         user/item fraction {:.2} and count factor {:.2}; at --scale paper they\n\
         match Table I directly.)",
        opts.scale.name,
        opts.scale.fraction,
        opts.scale.fraction.powf(0.25),
    );
}
