//! **Table II** — overall Recall@20 / NDCG@20 of HeteFedRec against the
//! six baselines, per dataset and base model.
//!
//! ```text
//! cargo run --release -p hf_bench --bin table2_overall -- --scale small --dataset all
//! ```

use hetefedrec_core::{run_experiment, Strategy};
use hf_bench::{fmt5, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table II: overall performance (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for model in &opts.models {
        println!("== {} ==", model.name());
        let header = format!(
            "{:<22} {:>9} {:>9} | {:>9} {:>9}",
            "Method", "Recall@20", "NDCG@20", "type", "epochs"
        );
        for profile in &opts.datasets {
            println!("\n-- {} --", profile.name());
            println!("{header}");
            println!("{}", rule(&header));
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = hf_bench::make_config_with(&opts, *model, *profile);
            for strategy in Strategy::ALL {
                let result = run_experiment(&cfg, strategy, &split);
                let kind = if strategy.is_heterogeneous() {
                    "hetero"
                } else {
                    "homog"
                };
                println!(
                    "{:<22} {:>9} {:>9} | {:>9} {:>9}",
                    result.strategy,
                    fmt5(result.final_eval.overall.recall),
                    fmt5(result.final_eval.overall.ndcg),
                    kind,
                    result.history.epochs.len(),
                );
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("method", &result.strategy)
                        .label("type", kind)
                        .value("recall", result.final_eval.overall.recall)
                        .value("ndcg", result.final_eval.overall.ndcg)
                        .value("epochs", result.history.epochs.len() as f64),
                );
            }
        }
        println!();
    }
    opts.emit_json(&snapshot);
}
