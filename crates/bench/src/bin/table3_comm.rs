//! **Table III** — one-time transmission cost per client type, comparing
//! All Small, All Large, and HeteFedRec, plus the measured sparse-upload
//! sizes from a real training round.
//!
//! ```text
//! cargo run --release -p hf_bench --bin table3_comm -- --scale small --dataset ml
//! ```

use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_bench::{make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, Tier};
use hf_fedsim::comm::RoundCost;
use hf_models::{paper_predictor_dims, Ffn};
use hf_tensor::rng::{stream, SeedStream};

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table III: one-time transmission cost per client type (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for profile in &opts.datasets {
        let model = opts.models[0];
        let split = make_split(*profile, opts.scale, opts.seed);
        let cfg = make_config_with(&opts, model, *profile);
        let num_items = split.num_items();
        let dims = cfg.dims;

        // Predictor sizes at each tier width.
        let mut rng = stream(0, SeedStream::ParamInit);
        let mut theta_size =
            |tier: Tier| Ffn::new(&paper_predictor_dims(dims.dim(tier)), &mut rng).num_params();
        let thetas: Vec<usize> = Tier::ALL.iter().map(|&t| theta_size(t)).collect();

        println!(
            "== {} ({} items, dims {}) ==",
            profile.name(),
            num_items,
            dims.label()
        );
        let header = format!(
            "{:<6} {:>22} {:>22} {:>26}",
            "Client", "All Small (params)", "All Large (params)", "HeteFedRec (params)"
        );
        println!("{header}");
        println!("{}", rule(&header));
        for (i, tier) in Tier::ALL.iter().enumerate() {
            let all_small = RoundCost::dense(num_items, dims.dim(Tier::Small), &thetas[..1]);
            let all_large = RoundCost::dense(num_items, dims.dim(Tier::Large), &thetas[2..3]);
            let hete = RoundCost::dense(num_items, dims.dim(*tier), &thetas[..=i]);
            println!(
                "{:<6} {:>22} {:>22} {:>26}",
                tier.label(),
                format!("{} = V+{}", all_small.total(), all_small.theta_params),
                format!("{} = V+{}", all_large.total(), all_large.theta_params),
                format!("{} = V+{}", hete.total(), hete.theta_params),
            );
            snapshot.push(
                SnapshotRow::new()
                    .label("dataset", profile.name())
                    .label("client", tier.label())
                    .value("all_small_params", all_small.total() as f64)
                    .value("all_large_params", all_large.total() as f64)
                    .value("hetefedrec_params", hete.total() as f64),
            );
        }

        // Measured traffic over one epoch of actual training.
        let mut session = SessionBuilder::new(
            cfg.clone(),
            Strategy::HeteFedRec(Ablation::FULL),
            split.clone(),
        )
        .eval_every(0)
        .build()
        .expect("valid experiment configuration");
        session.run_epoch();
        let ledger = session.ledger();
        println!(
            "\nMeasured (1 epoch of HeteFedRec): mean download {:.1} KiB (dense),\n\
             mean upload {:.1} KiB (sparse wire format), {} uploads / {} downloads",
            ledger.mean_download() / 1024.0,
            ledger.mean_upload() / 1024.0,
            ledger.uploads,
            ledger.downloads,
        );
        snapshot.push(
            SnapshotRow::new()
                .label("dataset", profile.name())
                .label("client", "measured_epoch")
                .value("mean_download_bytes", ledger.mean_download())
                .value("mean_upload_bytes", ledger.mean_upload())
                .value("uploads", ledger.uploads as f64)
                .value("downloads", ledger.downloads as f64),
        );
        println!();
    }
    opts.emit_json(&snapshot);
}
