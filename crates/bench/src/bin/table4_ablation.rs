//! **Table IV** — ablation study: HeteFedRec, −RESKD, −RESKD−DDR,
//! −RESKD−DDR−UDL (the last row equals "Directly Aggregate").
//!
//! ```text
//! cargo run --release -p hf_bench --bin table4_ablation -- --scale small --dataset all
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy};
use hf_bench::{fmt5, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table IV: ablation study (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let rows: [(&str, Ablation); 4] = [
        ("HeteFedRec", Ablation::FULL),
        ("- RESKD", Ablation::NO_RESKD),
        ("- RESKD,DDR", Ablation::NO_RESKD_DDR),
        ("- RESKD,DDR,UDL", Ablation::NONE),
    ];

    for model in &opts.models {
        println!("== {} ==", model.name());
        for profile in &opts.datasets {
            println!("\n-- {} --", profile.name());
            let header = format!("{:<18} {:>9} {:>9}", "Variant", "Recall@20", "NDCG@20");
            println!("{header}");
            println!("{}", rule(&header));
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = hf_bench::make_config_with(&opts, *model, *profile);
            for (label, ablation) in rows {
                let result = run_experiment(&cfg, Strategy::HeteFedRec(ablation), &split);
                println!(
                    "{label:<18} {:>9} {:>9}",
                    fmt5(result.final_eval.overall.recall),
                    fmt5(result.final_eval.overall.ndcg),
                );
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("variant", label)
                        .value("recall", result.final_eval.overall.recall)
                        .value("ndcg", result.final_eval.overall.ndcg),
                );
            }
        }
        println!();
    }
    opts.emit_json(&snapshot);
}
