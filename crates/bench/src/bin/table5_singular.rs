//! **Table V** — variance of the singular values of `cov(Vl)` with and
//! without dimensional decorrelation regularization. Higher = more severe
//! dimensional collapse.
//!
//! ```text
//! cargo run --release -p hf_bench --bin table5_singular -- --scale small --dataset all
//! ```

use hetefedrec_core::{Ablation, SessionBuilder, Strategy};
use hf_bench::{make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, Tier};

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table V: variance of singular values of cov(Vl) ± DDR (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    for model in &opts.models {
        println!("== {} ==", model.name());
        let header = format!(
            "{:<10} {:>12} {:>12} {:>10}",
            "Dataset", "- DDR", "+ DDR", "reduction"
        );
        println!("{header}");
        println!("{}", rule(&header));
        for profile in &opts.datasets {
            let split = make_split(*profile, opts.scale, opts.seed);
            let cfg = make_config_with(&opts, *model, *profile);

            let variance_of = |ablation: Ablation| -> f32 {
                // Table V needs only the trained tables, so skip per-epoch
                // evaluation entirely (`eval_every(0)`).
                let mut s =
                    SessionBuilder::new(cfg.clone(), Strategy::HeteFedRec(ablation), split.clone())
                        .eval_every(0)
                        .build()
                        .expect("valid experiment configuration");
                s.run();
                s.server().collapse_metric(Tier::Large)
            };

            // "- DDR": UDL without the regulariser (Table V isolates DDR;
            // RESKD is off in both arms so the tables differ only in DDR).
            let without = variance_of(Ablation::NO_RESKD_DDR);
            let with = variance_of(Ablation::NO_RESKD);
            println!(
                "{:<10} {:>12.4} {:>12.4} {:>9.1}%",
                profile.name(),
                without,
                with,
                100.0 * (1.0 - with / without.max(1e-12)),
            );
            snapshot.push(
                SnapshotRow::new()
                    .label("model", model.name())
                    .label("dataset", profile.name())
                    .value("without_ddr", without as f64)
                    .value("with_ddr", with as f64),
            );
        }
        println!();
    }
    opts.emit_json(&snapshot);
}
