//! **Table VI** — HeteFedRec under different client-division ratios
//! (5:3:2, 1:1:1, 2:3:5) bracketed by All Small (≈10:0:0) and All Large
//! (≈0:0:10).
//!
//! ```text
//! cargo run --release -p hf_bench --bin table6_division -- --scale small --dataset all
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy};
use hf_bench::{fmt5, make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::{DatasetProfile, DivisionRatio};

fn main() {
    let opts = CliOptions::parse(&DatasetProfile::ALL);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table VI: client-division ratios (scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let ratios = [
        DivisionRatio::PAPER_DEFAULT,
        DivisionRatio::NEUTRAL,
        DivisionRatio::OPTIMISTIC,
    ];

    for model in &opts.models {
        println!("== {} ==", model.name());
        let header = format!(
            "{:<10} {:<8} {:>10} {:>8} {:>8} {:>8} {:>10}",
            "Dataset", "Metric", "All Small", "5:3:2", "1:1:1", "2:3:5", "All Large"
        );
        println!("{header}");
        println!("{}", rule(&header));
        for profile in &opts.datasets {
            let split = make_split(*profile, opts.scale, opts.seed);
            let base = make_config_with(&opts, *model, *profile);

            let small = run_experiment(&base, Strategy::AllSmall, &split);
            let large = run_experiment(&base, Strategy::AllLarge, &split);
            let mut cells = Vec::new();
            for ratio in ratios {
                let mut cfg = base.clone();
                cfg.ratio = ratio;
                cells.push(run_experiment(
                    &cfg,
                    Strategy::HeteFedRec(Ablation::FULL),
                    &split,
                ));
            }

            println!(
                "{:<10} {:<8} {:>10} {:>8} {:>8} {:>8} {:>10}",
                profile.name(),
                "Recall",
                fmt5(small.final_eval.overall.recall),
                fmt5(cells[0].final_eval.overall.recall),
                fmt5(cells[1].final_eval.overall.recall),
                fmt5(cells[2].final_eval.overall.recall),
                fmt5(large.final_eval.overall.recall),
            );
            println!(
                "{:<10} {:<8} {:>10} {:>8} {:>8} {:>8} {:>10}",
                "",
                "NDCG",
                fmt5(small.final_eval.overall.ndcg),
                fmt5(cells[0].final_eval.overall.ndcg),
                fmt5(cells[1].final_eval.overall.ndcg),
                fmt5(cells[2].final_eval.overall.ndcg),
                fmt5(large.final_eval.overall.ndcg),
            );
            let settings = [
                ("All Small", &small),
                ("5:3:2", &cells[0]),
                ("1:1:1", &cells[1]),
                ("2:3:5", &cells[2]),
                ("All Large", &large),
            ];
            for (setting, result) in settings {
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("division", setting)
                        .value("recall", result.final_eval.overall.recall)
                        .value("ndcg", result.final_eval.overall.ndcg),
                );
            }
        }
        println!();
    }
    opts.emit_json(&snapshot);
}
