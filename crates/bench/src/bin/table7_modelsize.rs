//! **Table VII** — NDCG@20 of All Small / All Large / HeteFedRec under the
//! three model-size settings {2,4,8}, {8,16,32}, {32,64,128} on ML.
//!
//! ```text
//! cargo run --release -p hf_bench --bin table7_modelsize -- --scale small
//! ```

use hetefedrec_core::{run_experiment, Ablation, Strategy, TierDims};
use hf_bench::{fmt5, make_config_with, make_split, rule, CliOptions, SnapshotRow};
use hf_dataset::DatasetProfile;

fn main() {
    let opts = CliOptions::parse(&[DatasetProfile::MovieLens]);
    let mut snapshot: Vec<SnapshotRow> = Vec::new();
    println!(
        "Table VII: model-size settings (NDCG@20, scale={}, seed={})\n",
        opts.scale.name, opts.seed
    );

    let settings = [
        TierDims::rq5_tiny(),
        TierDims::paper_small(),
        TierDims::paper_large(),
    ];

    for model in &opts.models {
        for profile in &opts.datasets {
            println!("== {} on {} ==", model.name(), profile.name());
            let header = format!(
                "{:<14} {:>10} {:>10} {:>12}",
                "Dims", "All Small", "All Large", "HeteFedRec"
            );
            println!("{header}");
            println!("{}", rule(&header));
            let split = make_split(*profile, opts.scale, opts.seed);
            for dims in settings {
                let mut cfg = make_config_with(&opts, *model, *profile);
                cfg.dims = dims;
                let small = run_experiment(&cfg, Strategy::AllSmall, &split);
                let large = run_experiment(&cfg, Strategy::AllLarge, &split);
                let hete = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
                println!(
                    "{:<14} {:>10} {:>10} {:>12}",
                    dims.label(),
                    fmt5(small.final_eval.overall.ndcg),
                    fmt5(large.final_eval.overall.ndcg),
                    fmt5(hete.final_eval.overall.ndcg),
                );
                snapshot.push(
                    SnapshotRow::new()
                        .label("model", model.name())
                        .label("dataset", profile.name())
                        .label("dims", dims.label())
                        .value("all_small_ndcg", small.final_eval.overall.ndcg)
                        .value("all_large_ndcg", large.final_eval.overall.ndcg)
                        .value("hetefedrec_ndcg", hete.final_eval.overall.ndcg),
                );
            }
            println!();
        }
    }
    opts.emit_json(&snapshot);
}
