//! # hf_bench
//!
//! Experiment harness: one runnable binary per table and figure of the
//! paper (see `DESIGN.md` §4 for the full index) plus std-`Instant`
//! micro-benchmarks (`benches/microbench.rs`).
//!
//! Every binary accepts:
//!
//! * `--scale tiny|small|medium|paper` — dataset fraction and epoch count
//!   (default `tiny`, which completes in well under a minute; `paper` is
//!   the full Table I scale).
//! * `--model ncf|lightgcn|both` — base recommender (default `both`).
//! * `--dataset ml|anime|douban|all` — profile (default depends on the
//!   experiment: figures that the paper shows only for ML default to
//!   `ml`).
//! * `--seed <u64>` — master seed (default 42).
//!
//! Output is the paper's table/figure re-rendered as text, with the
//! measured values where the paper's numbers would be.

#![warn(missing_docs)]

use hetefedrec_core::config::TrainConfig;
use hf_dataset::{DatasetProfile, SplitDataset};
use hf_models::ModelKind;

/// Preset experiment scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunScale {
    /// Human name.
    pub name: &'static str,
    /// Fraction of the paper's users/items to generate.
    pub fraction: f64,
    /// Global training epochs.
    pub epochs: usize,
}

impl RunScale {
    /// ~2% of paper scale; seconds per run. CI/smoke default.
    pub const TINY: RunScale = RunScale {
        name: "tiny",
        fraction: 0.02,
        epochs: 4,
    };
    /// ~8% of paper scale; a couple of minutes per experiment table.
    pub const SMALL: RunScale = RunScale {
        name: "small",
        fraction: 0.08,
        epochs: 8,
    };
    /// ~25% of paper scale.
    pub const MEDIUM: RunScale = RunScale {
        name: "medium",
        fraction: 0.25,
        epochs: 12,
    };
    /// Full Table I scale with the paper's 20 epochs.
    pub const PAPER: RunScale = RunScale {
        name: "paper",
        fraction: 1.0,
        epochs: 20,
    };

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<RunScale> {
        match s {
            "tiny" => Some(Self::TINY),
            "small" => Some(Self::SMALL),
            "medium" => Some(Self::MEDIUM),
            "paper" => Some(Self::PAPER),
            _ => None,
        }
    }
}

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Experiment scale.
    pub scale: RunScale,
    /// Base models to run.
    pub models: Vec<ModelKind>,
    /// Dataset profiles to run.
    pub datasets: Vec<DatasetProfile>,
    /// Master seed.
    pub seed: u64,
    /// Raw `--set key=value` overrides applied to every config.
    pub overrides: Vec<(String, String)>,
    /// Path to write a JSON snapshot of the run's results (`--json`).
    pub json: Option<String>,
}

impl CliOptions {
    /// Parses `std::env::args`, with `default_datasets` used when the user
    /// passes no `--dataset`.
    ///
    /// Exits the process with a usage message on malformed input.
    pub fn parse(default_datasets: &[DatasetProfile]) -> CliOptions {
        let mut scale = RunScale::TINY;
        let mut models = vec![ModelKind::Ncf, ModelKind::LightGcn];
        let mut datasets = default_datasets.to_vec();
        let mut seed = 42u64;
        let mut overrides = Vec::new();
        let mut json = None;

        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let (flag, value) = (args[i].as_str(), args.get(i + 1));
            let value = || -> &str {
                value
                    .map(String::as_str)
                    .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            };
            match flag {
                "--scale" => {
                    scale = RunScale::parse(value()).unwrap_or_else(|| usage("unknown scale"));
                }
                "--model" => {
                    models = match value() {
                        "ncf" => vec![ModelKind::Ncf],
                        "lightgcn" => vec![ModelKind::LightGcn],
                        "both" => vec![ModelKind::Ncf, ModelKind::LightGcn],
                        _ => usage("unknown model"),
                    };
                }
                "--dataset" => {
                    datasets = match value() {
                        "ml" => vec![DatasetProfile::MovieLens],
                        "anime" => vec![DatasetProfile::Anime],
                        "douban" => vec![DatasetProfile::Douban],
                        "all" => DatasetProfile::ALL.to_vec(),
                        _ => usage("unknown dataset"),
                    };
                }
                "--seed" => {
                    seed = value()
                        .parse()
                        .unwrap_or_else(|_| usage("seed must be a u64"));
                }
                "--json" => {
                    json = Some(value().to_string());
                }
                "--set" => {
                    let kv = value();
                    let (k, v) = kv
                        .split_once('=')
                        .unwrap_or_else(|| usage("--set expects key=value"));
                    overrides.push((k.to_string(), v.to_string()));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
            i += 2;
        }
        CliOptions {
            scale,
            models,
            datasets,
            seed,
            overrides,
            json,
        }
    }

    /// Writes `report` to the `--json` path, if one was given.
    ///
    /// Convenience wrapper over [`write_json_snapshot`] so a binary's main
    /// can end with `opts.emit_json(&report)`.
    pub fn emit_json(&self, report: &dyn hf_tensor::ser::ToJson) {
        if let Some(path) = &self.json {
            write_json_snapshot(path, report);
        }
    }

    /// Applies any `--set key=value` overrides to a configuration.
    ///
    /// Supported keys: `local_lr`, `user_lr`, `server_lr`, `alpha`,
    /// `kd_lr`, `kd_items`, `kd_steps`, `epochs`, `local_epochs`,
    /// `clients_per_round`, `negatives`, `item_agg_norm`
    /// (`sum|mean|sqrt`), `server_opt` (`sgd|adam`), `udl_aux`
    /// (auxiliary-task weight), `drop_prob`, `eval_k`, `ddr_max_rows`,
    /// and the event-engine knobs: `mode` (`sync|async`),
    /// `staleness_beta`, `async_buffer`, `async_concurrency`, `latency`
    /// (`fixed:T`, `uniform:MIN:MAX`, `lognormal:MEDIAN:SIGMA`), `churn`
    /// (`none`, `independent:P`, `flappy:P:PERIOD`), and the
    /// secure-aggregation knobs: `secagg` (`on|off`),
    /// `secagg_scale_bits`.
    pub fn apply_overrides(&self, cfg: &mut TrainConfig) {
        use hetefedrec_core::config::{ItemAggNorm, Mode, ServerOpt};
        use hf_fedsim::events::LatencyProfile;
        use hf_fedsim::faults::ChurnProfile;
        fn bad<T>(k: &str, v: &str) -> T {
            usage(&format!("bad value for --set {k}={v}"))
        }
        for (k, v) in &self.overrides {
            match k.as_str() {
                "local_lr" => cfg.local_lr = v.parse().unwrap_or_else(|_| bad(k, v)),
                "user_lr" => cfg.user_lr = v.parse().unwrap_or_else(|_| bad(k, v)),
                "server_lr" => cfg.server_lr = v.parse().unwrap_or_else(|_| bad(k, v)),
                "alpha" => cfg.alpha = v.parse().unwrap_or_else(|_| bad(k, v)),
                "kd_lr" => cfg.kd.lr = v.parse().unwrap_or_else(|_| bad(k, v)),
                "kd_items" => cfg.kd.items = v.parse().unwrap_or_else(|_| bad(k, v)),
                "kd_steps" => cfg.kd.steps = v.parse().unwrap_or_else(|_| bad(k, v)),
                "epochs" => cfg.epochs = v.parse().unwrap_or_else(|_| bad(k, v)),
                "local_epochs" => cfg.local_epochs = v.parse().unwrap_or_else(|_| bad(k, v)),
                "clients_per_round" => {
                    cfg.clients_per_round = v.parse().unwrap_or_else(|_| bad(k, v))
                }
                "negatives" => cfg.negatives = v.parse().unwrap_or_else(|_| bad(k, v)),
                "drop_prob" => cfg.drop_prob = v.parse().unwrap_or_else(|_| bad(k, v)),
                "eval_k" => cfg.eval_k = v.parse().unwrap_or_else(|_| bad(k, v)),
                "ddr_max_rows" => cfg.ddr_max_rows = v.parse().unwrap_or_else(|_| bad(k, v)),
                "udl_aux" => cfg.udl_aux_weight = v.parse().unwrap_or_else(|_| bad(k, v)),
                "item_agg_norm" => {
                    cfg.item_agg_norm = match v.as_str() {
                        "sum" => ItemAggNorm::Sum,
                        "mean" => ItemAggNorm::Mean,
                        "sqrt" => ItemAggNorm::SqrtCount,
                        _ => bad(k, v),
                    }
                }
                "server_opt" => {
                    cfg.server_opt = match v.as_str() {
                        "sgd" => ServerOpt::SgdSum,
                        "adam" => ServerOpt::Adam,
                        _ => bad(k, v),
                    }
                }
                "mode" => cfg.mode = Mode::from_tag(v).unwrap_or_else(|| bad(k, v)),
                "staleness_beta" => {
                    cfg.async_cfg.staleness_beta = v.parse().unwrap_or_else(|_| bad(k, v))
                }
                "async_buffer" => cfg.async_cfg.buffer = v.parse().unwrap_or_else(|_| bad(k, v)),
                "async_concurrency" => {
                    cfg.async_cfg.concurrency = v.parse().unwrap_or_else(|_| bad(k, v))
                }
                "latency" => {
                    cfg.latency = LatencyProfile::parse(v)
                        .unwrap_or_else(|e| usage(&format!("--set {k}={v}: {e}")))
                }
                "churn" => {
                    cfg.churn = ChurnProfile::parse(v)
                        .unwrap_or_else(|e| usage(&format!("--set {k}={v}: {e}")))
                }
                "secagg" => {
                    cfg.secagg.enabled = match v.as_str() {
                        "on" => true,
                        "off" => false,
                        _ => bad(k, v),
                    }
                }
                "secagg_scale_bits" => {
                    cfg.secagg.scale_bits = v.parse().unwrap_or_else(|_| bad(k, v))
                }
                _ => usage(&format!("unknown --set key {k}")),
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|small|medium|paper] [--model ncf|lightgcn|both]\n\
         \x20             [--dataset ml|anime|douban|all] [--seed <u64>]\n\
         \x20             [--json <path>] [--set key=value]..."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// Serialises `report` and writes it to `path`, creating parent
/// directories as needed. Exits with an error message on I/O failure
/// (snapshots are an explicit user request; failing silently would lose
/// the run's results). I/O failures exit 1 without the usage banner —
/// the arguments were fine, the filesystem was not.
pub fn write_json_snapshot(path: &str, report: &dyn hf_tensor::ser::ToJson) {
    fn io_fail(msg: String) -> ! {
        eprintln!("error: {msg}");
        std::process::exit(1)
    }
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                io_fail(format!("cannot create {}: {e}", parent.display()));
            }
        }
    }
    let mut doc = report.to_json();
    doc.push('\n');
    if let Err(e) = std::fs::write(path, doc) {
        io_fail(format!("cannot write {}: {e}", path.display()));
    }
    eprintln!("json snapshot written to {}", path.display());
}

/// One generic `--json` snapshot row: string labels identifying the
/// setting (model, dataset, method, …) followed by named numeric
/// results, and optionally named numeric series (per-epoch curves,
/// histogram counts). Binaries whose output maps onto labels + scalars
/// use this; binaries with richer structure (Table I stats, Table V
/// diagnostics) define bespoke row types instead.
#[derive(Default)]
pub struct SnapshotRow {
    labels: Vec<(&'static str, String)>,
    values: Vec<(&'static str, f64)>,
    series: Vec<(&'static str, Vec<f64>)>,
}

impl SnapshotRow {
    /// An empty row; chain [`Self::label`]/[`Self::value`]/[`Self::series`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (emitted in insertion order, before values).
    pub fn label(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((name, value.into()));
        self
    }

    /// Adds a numeric field.
    pub fn value(mut self, name: &'static str, value: f64) -> Self {
        self.values.push((name, value));
        self
    }

    /// Adds a numeric-array field.
    pub fn series(mut self, name: &'static str, values: Vec<f64>) -> Self {
        self.series.push((name, values));
        self
    }
}

impl hf_tensor::ser::ToJson for SnapshotRow {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            for (name, value) in &self.labels {
                o.field(name, value);
            }
            for (name, value) in &self.values {
                o.field(name, value);
            }
            for (name, values) in &self.series {
                o.field(name, values);
            }
        });
    }
}

/// Generates and splits a profile at the given scale, deterministically.
pub fn make_split(profile: DatasetProfile, scale: RunScale, seed: u64) -> SplitDataset {
    let data = profile.config_scaled(scale.fraction).generate(seed);
    SplitDataset::paper_split(&data, seed)
}

/// Paper-default training configuration at this scale (threads matched to
/// the machine, epochs from the scale preset).
pub fn make_config(
    model: ModelKind,
    profile: DatasetProfile,
    scale: RunScale,
    seed: u64,
) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(model, profile);
    cfg.epochs = scale.epochs;
    cfg.seed = seed;
    cfg.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    cfg
}

/// [`make_config`] plus the CLI's `--set` overrides.
pub fn make_config_with(
    opts: &CliOptions,
    model: ModelKind,
    profile: DatasetProfile,
) -> TrainConfig {
    let mut cfg = make_config(model, profile, opts.scale, opts.seed);
    opts.apply_overrides(&mut cfg);
    cfg
}

/// Renders a horizontal rule sized to a header line.
pub fn rule(header: &str) -> String {
    "-".repeat(header.chars().count())
}

/// Formats a metric to the paper's 5-decimal style.
pub fn fmt5(x: f64) -> String {
    format!("{x:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(RunScale::parse("tiny"), Some(RunScale::TINY));
        assert_eq!(RunScale::parse("paper"), Some(RunScale::PAPER));
        assert_eq!(RunScale::parse("bogus"), None);
    }

    #[test]
    fn make_split_is_deterministic() {
        let a = make_split(DatasetProfile::MovieLens, RunScale::TINY, 1);
        let b = make_split(DatasetProfile::MovieLens, RunScale::TINY, 1);
        assert_eq!(a.num_users(), b.num_users());
        assert_eq!(a.user(0).train, b.user(0).train);
    }

    #[test]
    fn make_config_applies_scale() {
        let cfg = make_config(
            ModelKind::Ncf,
            DatasetProfile::MovieLens,
            RunScale::SMALL,
            7,
        );
        assert_eq!(cfg.epochs, RunScale::SMALL.epochs);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn fmt5_matches_paper_style() {
        assert_eq!(fmt5(0.026_62), "0.02662");
    }

    #[test]
    fn json_snapshot_roundtrips_through_the_filesystem() {
        // Pid-suffixed so concurrent test runs on one machine don't race
        // on the same path.
        let dir =
            std::env::temp_dir().join(format!("hf_bench_snapshot_test_{}", std::process::id()));
        let path = dir.join("nested").join("snap.json");
        let path_str = path.to_str().expect("utf-8 temp path");
        write_json_snapshot(path_str, &vec![1u32, 2, 3]);
        let contents = std::fs::read_to_string(&path).expect("snapshot written");
        assert_eq!(contents, "[1,2,3]\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
