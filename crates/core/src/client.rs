//! Client-side local training (Algorithm 1, `CLIENT TRAIN`).
//!
//! A selected client downloads its tier's public parameters, trains local
//! copies on its private data, and uploads deltas. The interesting part is
//! **unified dual-task learning** (Eq. 11): a client of tier `a` runs one
//! *task* per tier at or below `a`. Task `b` scores with the prefix
//! slices `u[:N_b]`, `V[x][:N_b]` and tier `b`'s predictor `Θ_b`, so the
//! sub-matrix updates it produces optimise exactly the objective the
//! smaller tier's own clients optimise — which is what makes the padded
//! sum on the server meaningful.
//!
//! Local optimisation follows DESIGN.md §5: per-sample SGD on the local
//! copies of `V` rows and `Θ`, a persistent Adam on the private user
//! embedding (Eq. 3), the DDR penalty (Eq. 14) applied once per local
//! pass over the touched rows, and deltas (`trained − downloaded`)
//! uploaded at the end.

use crate::config::TrainConfig;
use crate::ddr;
use crate::strategy::Strategy;
use hf_dataset::{NegativeSampler, SplitDataset, Tier};
use hf_fedsim::transport::{ClientUpdate, SparseRowUpdate};
use hf_models::ffn::Ffn;
use hf_models::ncf::{NcfEngine, NcfWorkspace};
use hf_models::ModelKind;
use hf_tensor::adam::{Adam, AdamConfig};
use hf_tensor::ops::{bce_with_logits, bce_with_logits_grad};
use hf_tensor::rng::Rng;
use hf_tensor::rng::{substream, SeedStream};
use hf_tensor::Matrix;
use std::collections::HashMap;

/// A client's persistent private state.
#[derive(Clone, Debug)]
pub struct UserState {
    /// Private user embedding (width = model-tier dimension).
    pub emb: Vec<f32>,
    /// Persistent Adam state for the user embedding.
    pub adam: Adam,
    /// Present only under [`Strategy::Standalone`]: the client's private
    /// copies of the public parameters.
    pub standalone: Option<StandaloneState>,
}

/// Standalone-mode private model: item rows the client has trained
/// (overlay over the shared initial table) and its own predictor.
#[derive(Clone, Debug)]
pub struct StandaloneState {
    /// Trained item rows, keyed by item id (tier width).
    pub rows: HashMap<u32, Vec<f32>>,
    /// The client's private predictor.
    pub theta: Ffn,
}

impl UserState {
    /// Initialises a client's private state. The embedding is drawn from
    /// the per-user stream so it is independent of scheduling order.
    pub fn init(
        user_id: usize,
        dim: usize,
        cfg: &TrainConfig,
        standalone_theta: Option<Ffn>,
    ) -> Self {
        let mut rng = substream(cfg.seed, SeedStream::UserInit, user_id as u64);
        let emb = hf_tensor::init::normal_vec(dim, 1.0 / (dim as f32).sqrt(), &mut rng);
        Self {
            emb,
            adam: Adam::new(dim, AdamConfig::with_lr(cfg.user_lr)),
            standalone: standalone_theta.map(|theta| StandaloneState {
                rows: HashMap::new(),
                theta,
            }),
        }
    }
}

impl hf_tensor::ser::ToJson for UserState {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("emb", &self.emb)
                .field("adam", &self.adam)
                .field("standalone", &self.standalone);
        });
    }
}

impl hf_tensor::ser::ToJson for StandaloneState {
    fn write_json(&self, out: &mut String) {
        // Rows emit sorted by item id so snapshots are stable across runs
        // (HashMap iteration order is not).
        struct Rows<'a>(&'a HashMap<u32, Vec<f32>>);
        impl hf_tensor::ser::ToJson for Rows<'_> {
            fn write_json(&self, out: &mut String) {
                let mut items: Vec<u32> = self.0.keys().copied().collect();
                items.sort_unstable();
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    hf_tensor::ser::obj(out, |o| {
                        o.field("item", item).field("row", &self.0[item]);
                    });
                }
                out.push(']');
            }
        }
        hf_tensor::ser::obj(out, |o| {
            o.field("rows", &Rows(&self.rows))
                .field("theta", &self.theta);
        });
    }
}

impl UserState {
    /// Restores a checkpointed client state.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let standalone = match v.get("standalone")? {
            s if s.is_null() => None,
            s => {
                let mut rows = HashMap::new();
                for entry in s.get("rows")?.as_arr()? {
                    let item = u32::try_from(entry.get("item")?.as_u64()?)
                        .map_err(|_| hf_tensor::ser::JsonError::msg("item id overflows u32"))?;
                    rows.insert(item, entry.get("row")?.as_f32_vec()?);
                }
                Some(StandaloneState {
                    rows,
                    theta: Ffn::from_json(s.get("theta")?)?,
                })
            }
        };
        Ok(Self {
            emb: v.get("emb")?.as_f32_vec()?,
            adam: Adam::from_json(v.get("adam")?)?,
            standalone,
        })
    }
}

/// Everything a client needs for one round of local training.
pub struct ClientCtx<'a> {
    /// Experiment configuration.
    pub cfg: &'a TrainConfig,
    /// Active strategy (drives UDL/DDR switches and standalone mode).
    pub strategy: Strategy,
    /// The split dataset (clients read only their own row).
    pub split: &'a SplitDataset,
    /// This client's id.
    pub user_id: usize,
    /// This client's model tier.
    pub model_tier: Tier,
    /// Downloaded item-embedding table for this tier (standalone clients
    /// receive the frozen initial table and overlay their own rows).
    pub table: &'a Matrix,
    /// Downloaded predictors, ascending tier; length 1 without UDL.
    pub thetas: &'a [Ffn],
    /// Tier tags matching `thetas` (for upload labelling).
    pub theta_tiers: &'a [Tier],
    /// Unique key of this global round (varies negative sampling between
    /// selections of the same client).
    pub round_key: u64,
}

/// Result of one client's local training.
pub struct ClientOutcome {
    /// Upload payload (empty for standalone clients).
    pub update: ClientUpdate,
    /// The client's advanced private state.
    pub state: UserState,
    /// Summed training loss over all tasks and samples.
    pub loss: f64,
    /// Number of (item, label) samples processed.
    pub samples: usize,
}

/// Local item-row store: lazily clones rows from the downloaded table (or
/// the standalone overlay) on first touch.
struct LocalRows<'a> {
    base: &'a Matrix,
    overlay: Option<&'a HashMap<u32, Vec<f32>>>,
    width: usize,
    rows: HashMap<u32, Vec<f32>>,
}

impl<'a> LocalRows<'a> {
    fn new(base: &'a Matrix, overlay: Option<&'a HashMap<u32, Vec<f32>>>, width: usize) -> Self {
        Self {
            base,
            overlay,
            width,
            rows: HashMap::new(),
        }
    }

    /// The pristine (downloaded) value of a row.
    fn pristine(&self, item: u32) -> &[f32] {
        if let Some(overlay) = self.overlay {
            if let Some(row) = overlay.get(&item) {
                return row;
            }
        }
        self.base.row_prefix(item as usize, self.width)
    }

    /// Current local value (read path; no clone for untouched rows).
    fn get(&self, item: u32) -> &[f32] {
        self.rows
            .get(&item)
            .map(Vec::as_slice)
            .unwrap_or_else(|| self.pristine(item))
    }

    /// Mutable local copy, cloned from pristine on first touch.
    fn get_mut(&mut self, item: u32) -> &mut Vec<f32> {
        if !self.rows.contains_key(&item) {
            let pristine = self.pristine(item).to_vec();
            self.rows.insert(item, pristine);
        }
        self.rows.get_mut(&item).expect("just inserted")
    }

    /// `(item, delta)` pairs over touched rows: `local − pristine`.
    fn deltas(&self) -> Vec<(u32, Vec<f32>)> {
        let mut out: Vec<(u32, Vec<f32>)> = self
            .rows
            .iter()
            .map(|(&item, local)| {
                let pristine = self.pristine(item);
                let delta = local.iter().zip(pristine).map(|(l, p)| l - p).collect();
                (item, delta)
            })
            .collect();
        out.sort_unstable_by_key(|(item, _)| *item);
        out
    }

    /// Touched row ids (unsorted).
    fn touched(&self) -> Vec<u32> {
        self.rows.keys().copied().collect()
    }
}

/// One UDL task: a tier width, its predictor engine, and scratch buffers.
struct Task {
    tier: Tier,
    dim: usize,
    engine: NcfEngine,
    ws: NcfWorkspace,
    theta_grad: Ffn,
    du: Vec<f32>,
    dv: Vec<f32>,
    /// LightGCN: propagated user representation (refreshed per pass).
    prop_user: Vec<f32>,
    /// LightGCN: accumulated `∂L/∂u'` for the deferred graph-row update.
    d_prop_total: Vec<f32>,
}

/// Runs one client's local training and returns its upload and new state.
pub fn train_client(ctx: &ClientCtx<'_>, prev: &UserState) -> ClientOutcome {
    let user_split = ctx.split.user(ctx.user_id);
    let cfg = ctx.cfg;
    let is_standalone = matches!(ctx.strategy, Strategy::Standalone);
    let tier_dim = cfg.dims.dim(ctx.model_tier);
    debug_assert_eq!(prev.emb.len(), tier_dim);

    let mut state = prev.clone();
    if user_split.train.is_empty() {
        return ClientOutcome {
            update: ClientUpdate::default(),
            state,
            loss: 0.0,
            samples: 0,
        };
    }

    // --- Set up local copies -------------------------------------------------
    let overlay = prev.standalone.as_ref().map(|s| &s.rows);
    let mut local = LocalRows::new(ctx.table, overlay, tier_dim);

    let downloaded_thetas: Vec<&Ffn> = if is_standalone {
        vec![&prev.standalone.as_ref().expect("standalone state").theta]
    } else {
        ctx.thetas.iter().collect()
    };
    let task_tiers: &[Tier] = if is_standalone {
        &[ctx.model_tier][..]
    } else {
        ctx.theta_tiers
    };

    let mut tasks: Vec<Task> = task_tiers
        .iter()
        .zip(&downloaded_thetas)
        .map(|(&tier, theta)| {
            let dim = cfg.dims.dim(tier);
            let engine = NcfEngine::from_ffn(dim, (*theta).clone());
            let ws = engine.workspace();
            let theta_grad = engine.ffn().zeros_like();
            Task {
                tier,
                dim,
                ws,
                theta_grad,
                du: vec![0.0; dim],
                dv: vec![0.0; dim],
                prop_user: Vec::new(),
                d_prop_total: vec![0.0; dim],
                engine,
            }
        })
        .collect();

    let is_gcn = cfg.model == ModelKind::LightGcn;
    let graph_items = user_split.train.clone();
    let graph_coeff = 1.0 / (graph_items.len() as f32).sqrt();

    let sampler = NegativeSampler::new(ctx.split.num_items(), cfg.negatives);
    let mut rng = substream(
        cfg.seed,
        SeedStream::Negatives,
        (ctx.user_id as u64) << 20 ^ ctx.round_key,
    );

    let mut du_full = vec![0.0f32; tier_dim];
    let mut total_loss = 0.0f64;
    let mut total_samples = 0usize;

    // --- Local passes ---------------------------------------------------------
    for _pass in 0..cfg.local_epochs.max(1) {
        // LightGCN: refresh each task's propagated user from the current
        // local rows (stale within the pass — DESIGN.md §5).
        if is_gcn {
            for task in &mut tasks {
                let prop = &mut task.prop_user;
                prop.clear();
                prop.extend_from_slice(&state.emb[..task.dim]);
                for &item in &graph_items {
                    let row = local.get(item);
                    hf_tensor::ops::axpy_slice(prop, graph_coeff, &row[..task.dim]);
                }
                prop.iter_mut().for_each(|x| *x *= 0.5);
            }
        }

        let (items, labels) = sampler.build_epoch(user_split, &mut rng);
        for (&item, &label) in items.iter().zip(&labels) {
            du_full.iter_mut().for_each(|x| *x = 0.0);
            for task in &mut tasks {
                // Own-tier task at full weight; auxiliary prefix tasks
                // damped (see `TrainConfig::udl_aux_weight`).
                let task_scale = if task.tier == ctx.model_tier {
                    1.0
                } else {
                    cfg.udl_aux_weight
                };
                let logit = if is_gcn {
                    let row = local.get(item);
                    task.engine
                        .forward(&task.prop_user, &row[..task.dim], &mut task.ws)
                } else {
                    let row = local.get(item);
                    task.engine
                        .forward(&state.emb[..task.dim], &row[..task.dim], &mut task.ws)
                };
                total_loss += (task_scale * bce_with_logits(logit, label)) as f64;
                let d_logit = task_scale * bce_with_logits_grad(logit, label);

                task.engine.backward(
                    d_logit,
                    &mut task.ws,
                    &mut task.theta_grad,
                    &mut task.du,
                    &mut task.dv,
                );
                // Θ: immediate local SGD step, then reset the accumulator.
                task.engine
                    .ffn_mut()
                    .add_scaled(-cfg.local_lr, &task.theta_grad);
                task.theta_grad.zero();
                // V row: immediate local SGD step on the task's prefix.
                {
                    let row = local.get_mut(item);
                    hf_tensor::ops::axpy_slice(&mut row[..task.dim], -cfg.local_lr, &task.dv);
                }
                // User embedding gradient.
                if is_gcn {
                    // u' = (u + coeff Σ V_g)/2 ⇒ ∂u'/∂u = 1/2; graph-row
                    // gradients are deferred via d_prop_total.
                    for (acc, &d) in du_full.iter_mut().zip(&task.du) {
                        *acc += 0.5 * d;
                    }
                    hf_tensor::ops::axpy_slice(&mut task.d_prop_total, 1.0, &task.du);
                } else {
                    for (acc, &d) in du_full.iter_mut().zip(&task.du) {
                        *acc += d;
                    }
                }
            }
            state.adam.step(&mut state.emb, &du_full);
            total_samples += 1;
        }
    }

    // --- Deferred LightGCN graph-row gradients --------------------------------
    if is_gcn {
        for task in &tasks {
            let scale = -cfg.local_lr * 0.5 * graph_coeff;
            if scale != 0.0 {
                for &item in &graph_items {
                    let row = local.get_mut(item);
                    hf_tensor::ops::axpy_slice(&mut row[..task.dim], scale, &task.d_prop_total);
                }
            }
        }
    }

    // --- Dimensional decorrelation regularization (Eq. 13–14) -----------------
    let ablation = ctx.strategy.ablation();
    if ablation.ddr && ctx.model_tier != Tier::Small {
        let mut touched = local.touched();
        touched.sort_unstable();
        if touched.len() > cfg.ddr_max_rows {
            // Deterministic subsample via the client RNG.
            for i in 0..cfg.ddr_max_rows {
                let j = rng.gen_range(i..touched.len());
                touched.swap(i, j);
            }
            touched.truncate(cfg.ddr_max_rows);
        }
        if touched.len() >= 2 {
            let mut z = Matrix::zeros(touched.len(), tier_dim);
            for (slot, &item) in touched.iter().enumerate() {
                z.row_mut(slot).copy_from_slice(local.get(item));
            }
            let (reg_loss, grad) = ddr::decorrelation_loss_grad(&z);
            total_loss += (cfg.alpha * reg_loss) as f64;
            let step = -cfg.local_lr * cfg.alpha;
            for (slot, &item) in touched.iter().enumerate() {
                let row = local.get_mut(item);
                hf_tensor::ops::axpy_slice(row, step, grad.row(slot));
            }
        }
    }

    // --- Build the upload / persist standalone state --------------------------
    let update = if is_standalone {
        let standalone = state.standalone.as_mut().expect("standalone state");
        for (item, row) in local.rows.iter() {
            standalone.rows.insert(*item, row.clone());
        }
        standalone.theta = tasks.pop().expect("one task").engine.ffn().clone();
        ClientUpdate::default()
    } else {
        let thetas = tasks
            .iter()
            .zip(&downloaded_thetas)
            .map(|(task, downloaded)| {
                let trained = task.engine.ffn().to_flat();
                let base = downloaded.to_flat();
                let delta: Vec<f32> = trained.iter().zip(&base).map(|(t, b)| t - b).collect();
                (task.tier.index() as u8, delta)
            })
            .collect();
        ClientUpdate {
            items: SparseRowUpdate::new(tier_dim, local.deltas()),
            thetas,
        }
    };

    ClientOutcome {
        update,
        state,
        loss: total_loss,
        samples: total_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerState;
    use crate::strategy::Ablation;
    use hf_dataset::SyntheticConfig;

    fn setup(model: ModelKind, strategy: Strategy) -> (TrainConfig, SplitDataset, ServerState) {
        let cfg = TrainConfig::test_default(model);
        let data = SyntheticConfig::tiny().generate(3);
        let split = SplitDataset::paper_split(&data, 3);
        let server = ServerState::new(split.num_items(), &cfg, strategy);
        (cfg, split, server)
    }

    fn run_one(
        cfg: &TrainConfig,
        strategy: Strategy,
        split: &SplitDataset,
        server: &ServerState,
        user_id: usize,
        tier: Tier,
    ) -> ClientOutcome {
        let udl = strategy.ablation().udl;
        let thetas = server.thetas_for(tier, udl);
        let theta_tiers: Vec<Tier> = if udl {
            Tier::ALL[..=tier.index()].to_vec()
        } else {
            vec![tier]
        };
        let standalone_theta =
            matches!(strategy, Strategy::Standalone).then(|| server.theta(tier).clone());
        let state = UserState::init(user_id, cfg.dims.dim(tier), cfg, standalone_theta);
        let ctx = ClientCtx {
            cfg,
            strategy,
            split,
            user_id,
            model_tier: tier,
            table: server.table(tier),
            thetas: &thetas,
            theta_tiers: &theta_tiers,
            round_key: 1,
        };
        train_client(&ctx, &state)
    }

    #[test]
    fn small_client_uploads_one_theta() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 0, Tier::Small);
        assert_eq!(out.update.thetas.len(), 1);
        assert_eq!(out.update.thetas[0].0, 0);
        assert_eq!(out.update.items.dim, cfg.dims.dim(Tier::Small));
        assert!(out.samples > 0);
        assert!(out.loss.is_finite());
    }

    #[test]
    fn large_client_uploads_three_thetas_under_udl() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 1, Tier::Large);
        let tiers: Vec<u8> = out.update.thetas.iter().map(|(t, _)| *t).collect();
        assert_eq!(tiers, vec![0, 1, 2]);
        assert_eq!(out.update.items.dim, cfg.dims.dim(Tier::Large));
    }

    #[test]
    fn large_client_uploads_one_theta_without_udl() {
        let strategy = Strategy::DirectlyAggregate;
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 1, Tier::Large);
        assert_eq!(out.update.thetas.len(), 1);
        assert_eq!(out.update.thetas[0].0, 2);
    }

    #[test]
    fn update_touches_only_sampled_items() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 2, Tier::Medium);
        let positives = &split.user(2).train;
        // Every train positive must be touched; the touched set is
        // positives + negatives, well below the universe.
        let touched: Vec<u32> = out.update.items.rows.iter().map(|(r, _)| *r).collect();
        for p in positives {
            assert!(touched.contains(p), "positive {p} untouched");
        }
        assert!(touched.len() < split.num_items());
    }

    #[test]
    fn deltas_are_nonzero_and_finite() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 3, Tier::Medium);
        let mut nonzero = 0;
        for (_, delta) in &out.update.items.rows {
            assert!(delta.iter().all(|x| x.is_finite()));
            if delta.iter().any(|&x| x != 0.0) {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "all deltas are zero");
    }

    #[test]
    fn training_advances_user_embedding() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let before = UserState::init(4, cfg.dims.dim(Tier::Small), &cfg, None);
        let out = run_one(&cfg, strategy, &split, &server, 4, Tier::Small);
        assert_ne!(before.emb, out.state.emb);
        assert!(out.state.emb.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn standalone_produces_no_upload_but_advances_locally() {
        let strategy = Strategy::Standalone;
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 0, Tier::Medium);
        assert!(out.update.items.is_empty());
        assert!(out.update.thetas.is_empty());
        let standalone = out.state.standalone.expect("standalone state");
        assert!(!standalone.rows.is_empty(), "no local rows trained");
    }

    #[test]
    fn lightgcn_client_trains_and_touches_graph_items() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::LightGcn, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 5, Tier::Medium);
        assert!(out.samples > 0);
        assert!(out.loss.is_finite());
        // Graph items (= train positives) must all carry deltas.
        let touched: Vec<u32> = out.update.items.rows.iter().map(|(r, _)| *r).collect();
        for p in &split.user(5).train {
            assert!(touched.contains(p));
        }
    }

    #[test]
    fn udl_trains_the_prefix_against_small_theta() {
        // With UDL, a medium client's update on the small prefix should
        // differ from the no-UDL case (the extra small-task gradient).
        let (cfg, split, _) = setup(ModelKind::Ncf, Strategy::DirectlyAggregate);
        let server_udl = ServerState::new(
            split.num_items(),
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD),
        );
        let with_udl = run_one(
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD),
            &split,
            &server_udl,
            6,
            Tier::Medium,
        );
        let server_no = ServerState::new(split.num_items(), &cfg, Strategy::DirectlyAggregate);
        let without = run_one(
            &cfg,
            Strategy::DirectlyAggregate,
            &split,
            &server_no,
            6,
            Tier::Medium,
        );
        let a = with_udl
            .update
            .items
            .rows
            .iter()
            .find(|(r, _)| *r == split.user(6).train[0]);
        let b = without
            .update
            .items
            .rows
            .iter()
            .find(|(r, _)| *r == split.user(6).train[0]);
        assert_ne!(a.unwrap().1, b.unwrap().1);
    }

    #[test]
    fn ddr_changes_medium_client_updates() {
        let (cfg, split, server) = setup(ModelKind::Ncf, Strategy::HeteFedRec(Ablation::NO_RESKD));
        let with_ddr = run_one(
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD),
            &split,
            &server,
            7,
            Tier::Medium,
        );
        let without = run_one(
            &cfg,
            Strategy::HeteFedRec(Ablation::NO_RESKD_DDR),
            &split,
            &server,
            7,
            Tier::Medium,
        );
        assert_ne!(
            with_ddr.update.items.rows, without.update.items.rows,
            "DDR had no effect on the upload"
        );
    }

    #[test]
    fn client_with_no_train_data_is_a_noop() {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let data = hf_dataset::ImplicitDataset::new(10, vec![vec![0], vec![1, 2, 3]]);
        // User 0 has one interaction which survives as train (never empty),
        // so construct a truly empty user via an empty list.
        let data2 = hf_dataset::ImplicitDataset::new(10, vec![vec![], vec![1, 2, 3]]);
        let _ = data;
        let split = SplitDataset::paper_split(&data2, 1);
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let server = ServerState::new(10, &cfg, strategy);
        let out = run_one(&cfg, strategy, &split, &server, 0, Tier::Small);
        assert_eq!(out.samples, 0);
        assert!(out.update.items.is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (cfg, split, server) = setup(ModelKind::Ncf, strategy);
        let a = run_one(&cfg, strategy, &split, &server, 8, Tier::Large);
        let b = run_one(&cfg, strategy, &split, &server, 8, Tier::Large);
        assert_eq!(a.update, b.update);
        assert_eq!(a.state.emb, b.state.emb);
    }

    #[test]
    fn local_loss_decreases_over_repeated_selection() {
        // Selecting the same client repeatedly (applying its own updates
        // to its private state and keeping the server frozen) must reduce
        // its local loss: the local optimisation is genuinely descending.
        let strategy = Strategy::HeteFedRec(Ablation::NO_RESKD_DDR);
        let (mut cfg, split, server) = setup(ModelKind::Ncf, strategy);
        cfg.local_epochs = 2;
        let thetas = server.thetas_for(Tier::Small, true);
        let theta_tiers = vec![Tier::Small];
        let mut state = UserState::init(9, cfg.dims.dim(Tier::Small), &cfg, None);
        // Each round draws fresh negatives, so per-round loss is a noisy
        // estimate; compare averaged windows rather than single rounds.
        let mut losses = Vec::new();
        for round in 0..16 {
            let ctx = ClientCtx {
                cfg: &cfg,
                strategy,
                split: &split,
                user_id: 9,
                model_tier: Tier::Small,
                table: server.table(Tier::Small),
                thetas: &thetas,
                theta_tiers: &theta_tiers,
                round_key: round,
            };
            let out = train_client(&ctx, &state);
            state = out.state;
            losses.push(out.loss / out.samples.max(1) as f64);
        }
        let head = losses[..4].iter().sum::<f64>() / 4.0;
        let tail = losses[losses.len() - 4..].iter().sum::<f64>() / 4.0;
        assert!(tail < head, "head {head}, tail {tail}, losses {losses:?}");
    }
}
