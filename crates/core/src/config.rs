//! Experiment configuration.

use hf_dataset::{DatasetProfile, DivisionRatio, Tier};
use hf_fedsim::{ChurnProfile, LatencyProfile};
use hf_models::ModelKind;
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};

/// A rejected configuration field.
///
/// Produced by [`TrainConfig::validate`] — the session builder surfaces
/// these as `Result`s instead of panicking deep inside the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"local_lr"`.
    pub field: &'static str,
    /// Why the value was rejected.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn bad(field: &'static str, message: impl Into<String>) -> ConfigError {
    ConfigError {
        field,
        message: message.into(),
    }
}

/// The three tier embedding dimensions `{Ns, Nm, Nl}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierDims {
    dims: [usize; 3],
}

impl TierDims {
    /// Creates tier dimensions, enforcing `Ns < Nm < Nl` (paper §IV-A).
    pub fn new(small: usize, medium: usize, large: usize) -> Self {
        assert!(
            small > 0 && small < medium && medium < large,
            "tier dims must satisfy 0 < Ns < Nm < Nl, got {small},{medium},{large}"
        );
        Self {
            dims: [small, medium, large],
        }
    }

    /// The paper's ML/Anime setting `{8, 16, 32}`.
    pub fn paper_small() -> Self {
        Self::new(8, 16, 32)
    }

    /// The paper's Douban setting `{32, 64, 128}`.
    pub fn paper_large() -> Self {
        Self::new(32, 64, 128)
    }

    /// The RQ5 tiny setting `{2, 4, 8}`.
    pub fn rq5_tiny() -> Self {
        Self::new(2, 4, 8)
    }

    /// Dimension of one tier.
    pub fn dim(&self, tier: Tier) -> usize {
        self.dims[tier.index()]
    }

    /// All three dimensions, ascending.
    pub fn as_array(&self) -> [usize; 3] {
        self.dims
    }

    /// The widest dimension (`Nl`).
    pub fn largest(&self) -> usize {
        self.dims[2]
    }

    /// Paper-style label, e.g. `{8,16,32}`.
    pub fn label(&self) -> String {
        format!("{{{},{},{}}}", self.dims[0], self.dims[1], self.dims[2])
    }

    /// Restores checkpointed tier dimensions (monotonicity re-checked).
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let dims = v.as_usize_vec()?;
        let [s, m, l]: [usize; 3] = dims
            .try_into()
            .map_err(|_| JsonError::msg("tier dims must have 3 entries"))?;
        if !(s > 0 && s < m && m < l) {
            return Err(JsonError::msg(format!(
                "tier dims must satisfy 0 < Ns < Nm < Nl, got {s},{m},{l}"
            )));
        }
        Ok(Self { dims: [s, m, l] })
    }
}

impl ToJson for TierDims {
    fn write_json(&self, out: &mut String) {
        self.dims.write_json(out);
    }
}

/// Relation-based ensemble self-distillation settings (Eq. 16–17).
#[derive(Clone, Copy, Debug)]
pub struct KdConfig {
    /// Items sampled per distillation step (`|V_kd|`).
    pub items: usize,
    /// Server-side gradient-step size on the alignment loss.
    pub lr: f32,
    /// Gradient steps per aggregation round.
    pub steps: usize,
}

impl Default for KdConfig {
    fn default() -> Self {
        Self {
            items: 128,
            lr: 1.0,
            steps: 1,
        }
    }
}

impl ToJson for KdConfig {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("items", &self.items)
                .field("lr", &self.lr)
                .field("steps", &self.steps);
        });
    }
}

impl KdConfig {
    /// Restores a checkpointed distillation configuration.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            items: v.get("items")?.as_usize()?,
            lr: v.get("lr")?.as_f32()?,
            steps: v.get("steps")?.as_usize()?,
        })
    }
}

/// How the server folds aggregated deltas into the public parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerOpt {
    /// Eq. 9 literal: `V -= server_lr * Σ Δ` (deltas already carry the
    /// local learning rate, so `server_lr = 1` reproduces summed local
    /// progress). Predictors average rather than sum — see DESIGN.md §5.
    SgdSum,
    /// Server-side Adam over the summed deltas (per embedding row and per
    /// predictor tensor) — the ablation alternative.
    Adam,
}

/// Per-row normalisation of the aggregated item-embedding delta.
///
/// Eq. 8's plain sum lets a popular item accumulate one full local step
/// from *every* client that touched it each round, which overdrives head
/// items and destabilises training (visible as post-peak degradation in
/// the convergence curves). Normalising by the contributor count per row
/// restores stability; `SqrtCount` is the compromise that keeps some
/// popularity-proportional progress. The server-optimiser ablation bench
/// compares all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemAggNorm {
    /// Eq. 8 literal: plain sum.
    Sum,
    /// Divide each row's summed delta by its contributor count.
    Mean,
    /// Divide each row's summed delta by sqrt(contributor count).
    SqrtCount,
}

impl ServerOpt {
    /// Stable checkpoint tag.
    pub fn tag(self) -> &'static str {
        match self {
            ServerOpt::SgdSum => "sgd_sum",
            ServerOpt::Adam => "adam",
        }
    }

    /// Parses a [`ServerOpt::tag`] spelling.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "sgd_sum" => Some(ServerOpt::SgdSum),
            "adam" => Some(ServerOpt::Adam),
            _ => None,
        }
    }
}

impl ItemAggNorm {
    /// Stable checkpoint tag.
    pub fn tag(self) -> &'static str {
        match self {
            ItemAggNorm::Sum => "sum",
            ItemAggNorm::Mean => "mean",
            ItemAggNorm::SqrtCount => "sqrt_count",
        }
    }

    /// Parses an [`ItemAggNorm::tag`] spelling.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "sum" => Some(ItemAggNorm::Sum),
            "mean" => Some(ItemAggNorm::Mean),
            "sqrt_count" => Some(ItemAggNorm::SqrtCount),
            _ => None,
        }
    }
}

/// How the session orchestrates client training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The paper's lockstep rounds: every cohort trains against the same
    /// parameters and the server waits for all of them (§V-D).
    Sync,
    /// Event-driven asynchronous federation: clients are dispatched up to a
    /// concurrency cap, arrive after per-client latency draws, and are
    /// aggregated in buffered batches with staleness-discounted weights.
    Async,
}

impl Mode {
    /// Stable checkpoint tag.
    pub fn tag(self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Async => "async",
        }
    }

    /// Parses a [`Mode::tag`] spelling.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "sync" => Some(Mode::Sync),
            "async" => Some(Mode::Async),
            _ => None,
        }
    }
}

/// Knobs of the asynchronous aggregation policy (only read when
/// [`TrainConfig::mode`] is [`Mode::Async`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncConfig {
    /// Staleness discount exponent β: an update dispatched `s` aggregation
    /// rounds ago is weighted `1 / (1 + s)^β`. Zero disables discounting.
    pub staleness_beta: f32,
    /// Arrivals aggregated per async round (the FedBuff-style buffer).
    pub buffer: usize,
    /// Maximum clients in flight at once.
    pub concurrency: usize,
    /// Adaptive β: scale the discount exponent by the batch's observed mean
    /// staleness, `β_eff = β · (1 + mean_staleness)`, so long-staleness
    /// batches are damped smoothly instead of by a fixed power. Default
    /// off; the off path is bit-identical to the fixed-β computation and is
    /// omitted from serialized documents.
    pub adaptive_beta: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            staleness_beta: 0.5,
            buffer: 64,
            concurrency: 512,
            adaptive_beta: false,
        }
    }
}

impl ToJson for AsyncConfig {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("staleness_beta", &self.staleness_beta)
                .field("buffer", &self.buffer)
                .field("concurrency", &self.concurrency);
            // Emitted only when on, so default-off documents stay
            // byte-identical to every pre-adaptive-β checkpoint.
            if self.adaptive_beta {
                o.field("adaptive_beta", &self.adaptive_beta);
            }
        });
    }
}

impl AsyncConfig {
    /// Restores checkpointed async settings.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            staleness_beta: v.get("staleness_beta")?.as_f32()?,
            buffer: v.get("buffer")?.as_usize()?,
            concurrency: v.get("concurrency")?.as_usize()?,
            adaptive_beta: match v.opt("adaptive_beta") {
                Some(b) => b.as_bool()?,
                None => false,
            },
        })
    }
}

/// Secure-aggregation knobs for the upload path (DESIGN.md §10).
///
/// Default **off**: the session runs today's plaintext upload path and
/// produces byte-identical checkpoints. When enabled, every accepted
/// upload is quantized into the u64 ring and pairwise-masked, and the
/// server only ever sees blind aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecAggConfig {
    /// Route uploads through the pairwise-masked path.
    pub enabled: bool,
    /// Fixed-point resolution exponent: deltas are quantized to a grid
    /// of `2^-scale_bits`. Must lie in `1..=30`.
    pub scale_bits: u32,
}

impl Default for SecAggConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            scale_bits: 16,
        }
    }
}

impl ToJson for SecAggConfig {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("enabled", &self.enabled)
                .field("scale_bits", &(self.scale_bits as u64));
        });
    }
}

impl SecAggConfig {
    /// Restores checkpointed secure-aggregation settings.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            enabled: v.get("enabled")?.as_bool()?,
            scale_bits: v.get("scale_bits")?.as_u64()? as u32,
        })
    }
}

/// Full configuration of one federated training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Base recommendation model.
    pub model: ModelKind,
    /// Tier embedding dimensions.
    pub dims: TierDims,
    /// Client division ratio over (small, medium, large).
    pub ratio: DivisionRatio,
    /// Global training epochs (each epoch traverses all clients once).
    pub epochs: usize,
    /// Clients per round (paper: 256).
    pub clients_per_round: usize,
    /// Local passes over a client's data per selection (paper's "local
    /// epochs").
    pub local_epochs: usize,
    /// Client-side learning rate for local public-parameter SGD.
    pub local_lr: f32,
    /// Client-side Adam learning rate for the private user embedding
    /// (paper: Adam, 0.001 — we default higher because each client is
    /// selected only once per epoch).
    pub user_lr: f32,
    /// Server application of aggregated updates.
    pub server_opt: ServerOpt,
    /// Per-row normalisation of aggregated item deltas.
    pub item_agg_norm: ItemAggNorm,
    /// Server learning-rate scale on summed item deltas.
    pub server_lr: f32,
    /// Negatives per positive (paper: 4).
    pub negatives: usize,
    /// DDR weight α (Eq. 14; Fig. 8 sweeps 0.5–2.0).
    pub alpha: f32,
    /// Weight of each *auxiliary* prefix task in the UDL loss (the
    /// client's own-tier task always has weight 1). Eq. 11 sums tasks
    /// unweighted (`= 1.0`); damping the auxiliary tasks keeps the
    /// effective step size on shared prefix dimensions comparable to
    /// single-task clients under per-sample SGD, and bounds how much an
    /// over-fit large client can perturb the small tier's objective. The
    /// ablation bench compares weightings.
    pub udl_aux_weight: f32,
    /// Row cap for the DDR correlation computation (bounds client cost).
    pub ddr_max_rows: usize,
    /// Distillation settings.
    pub kd: KdConfig,
    /// Ranking cutoff (paper: 20).
    pub eval_k: usize,
    /// Worker threads for intra-round parallelism.
    pub threads: usize,
    /// Master experiment seed.
    pub seed: u64,
    /// Client upload drop probability (0 = paper setting).
    pub drop_prob: f64,
    /// Orchestration mode (lockstep rounds vs event-driven async).
    pub mode: Mode,
    /// Asynchronous-mode knobs (ignored under [`Mode::Sync`]).
    pub async_cfg: AsyncConfig,
    /// Per-dispatch client latency model. `Fixed(1)` reproduces the legacy
    /// accounting where one synchronous round costs one logical tick.
    pub latency: LatencyProfile,
    /// Client availability model (`None` = paper setting, always online).
    pub churn: ChurnProfile,
    /// Secure aggregation of the upload path (default off).
    pub secagg: SecAggConfig,
}

impl TrainConfig {
    /// Paper-default hyper-parameters for a dataset profile (§V-D), with
    /// epochs left for the caller to choose.
    pub fn paper_defaults(model: ModelKind, profile: DatasetProfile) -> Self {
        let [s, m, l] = profile.paper_dims();
        Self {
            model,
            dims: TierDims::new(s, m, l),
            ratio: DivisionRatio::PAPER_DEFAULT,
            epochs: 20,
            clients_per_round: 256,
            local_epochs: 2,
            local_lr: 0.05,
            user_lr: 0.01,
            server_opt: ServerOpt::SgdSum,
            item_agg_norm: ItemAggNorm::SqrtCount,
            server_lr: 2.0,
            negatives: 4,
            alpha: 1.0,
            udl_aux_weight: 0.3,
            ddr_max_rows: 256,
            kd: KdConfig::default(),
            eval_k: 20,
            threads: 2,
            seed: 42,
            drop_prob: 0.0,
            mode: Mode::Sync,
            async_cfg: AsyncConfig::default(),
            latency: LatencyProfile::unit(),
            churn: ChurnProfile::None,
            secagg: SecAggConfig::default(),
        }
    }

    /// Checks every field for sanity, returning the first offending one.
    ///
    /// The session builder calls this before constructing any state, so a
    /// bad configuration surfaces as a `Result` at the API boundary
    /// instead of a panic (or NaN cascade) mid-run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive_finite(field: &'static str, x: f32) -> Result<(), ConfigError> {
            if x.is_finite() && x > 0.0 {
                Ok(())
            } else {
                Err(bad(field, format!("must be finite and positive, got {x}")))
            }
        }
        fn nonneg_finite(field: &'static str, x: f32) -> Result<(), ConfigError> {
            if x.is_finite() && x >= 0.0 {
                Ok(())
            } else {
                Err(bad(field, format!("must be finite and >= 0, got {x}")))
            }
        }
        if self.epochs == 0 {
            return Err(bad("epochs", "at least one epoch required"));
        }
        if self.clients_per_round == 0 {
            return Err(bad("clients_per_round", "round size must be positive"));
        }
        if self.local_epochs == 0 {
            return Err(bad("local_epochs", "at least one local pass required"));
        }
        if self.negatives == 0 {
            return Err(bad("negatives", "at least one negative per positive"));
        }
        if self.eval_k == 0 {
            return Err(bad("eval_k", "ranking cutoff must be positive"));
        }
        if self.threads == 0 {
            return Err(bad("threads", "at least one worker thread required"));
        }
        if self.ddr_max_rows < 2 {
            return Err(bad("ddr_max_rows", "correlation needs at least 2 rows"));
        }
        positive_finite("local_lr", self.local_lr)?;
        positive_finite("user_lr", self.user_lr)?;
        positive_finite("server_lr", self.server_lr)?;
        nonneg_finite("alpha", self.alpha)?;
        nonneg_finite("udl_aux_weight", self.udl_aux_weight)?;
        if self.kd.items == 0 {
            return Err(bad("kd.items", "distillation subset must be non-empty"));
        }
        if self.kd.steps == 0 {
            return Err(bad("kd.steps", "at least one distillation step"));
        }
        positive_finite("kd.lr", self.kd.lr)?;
        if !(0.0..1.0).contains(&self.drop_prob) {
            return Err(bad(
                "drop_prob",
                format!("must lie in [0, 1), got {}", self.drop_prob),
            ));
        }
        nonneg_finite("async.staleness_beta", self.async_cfg.staleness_beta)?;
        if self.async_cfg.buffer == 0 {
            return Err(bad("async.buffer", "aggregation buffer must be positive"));
        }
        if self.async_cfg.concurrency == 0 {
            return Err(bad("async.concurrency", "at least one client in flight"));
        }
        self.latency.validate().map_err(|m| bad("latency", m))?;
        self.churn.validate().map_err(|m| bad("churn", m))?;
        if self.secagg.scale_bits == 0 || self.secagg.scale_bits > hf_secagg::MAX_SCALE_BITS {
            return Err(bad(
                "secagg.scale_bits",
                format!(
                    "must lie in 1..={}, got {}",
                    hf_secagg::MAX_SCALE_BITS,
                    self.secagg.scale_bits
                ),
            ));
        }
        Ok(())
    }

    /// Restores a checkpointed configuration (re-validated).
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let cfg = Self {
            model: ModelKind::from_json(v.get("model")?)?,
            dims: TierDims::from_json(v.get("dims")?)?,
            ratio: DivisionRatio::from_json(v.get("ratio")?)?,
            epochs: v.get("epochs")?.as_usize()?,
            clients_per_round: v.get("clients_per_round")?.as_usize()?,
            local_epochs: v.get("local_epochs")?.as_usize()?,
            local_lr: v.get("local_lr")?.as_f32()?,
            user_lr: v.get("user_lr")?.as_f32()?,
            server_opt: {
                let tag = v.get("server_opt")?.as_str()?;
                ServerOpt::from_tag(tag)
                    .ok_or_else(|| JsonError::msg(format!("unknown server_opt `{tag}`")))?
            },
            item_agg_norm: {
                let tag = v.get("item_agg_norm")?.as_str()?;
                ItemAggNorm::from_tag(tag)
                    .ok_or_else(|| JsonError::msg(format!("unknown item_agg_norm `{tag}`")))?
            },
            server_lr: v.get("server_lr")?.as_f32()?,
            negatives: v.get("negatives")?.as_usize()?,
            alpha: v.get("alpha")?.as_f32()?,
            udl_aux_weight: v.get("udl_aux_weight")?.as_f32()?,
            ddr_max_rows: v.get("ddr_max_rows")?.as_usize()?,
            kd: KdConfig::from_json(v.get("kd")?)?,
            eval_k: v.get("eval_k")?.as_usize()?,
            threads: v.get("threads")?.as_usize()?,
            seed: v.get("seed")?.as_u64()?,
            drop_prob: v.get("drop_prob")?.as_f64()?,
            // The orchestration fields are optional: v1 checkpoints predate
            // them and restore as the synchronous paper setting.
            mode: match v.opt("mode") {
                Some(m) => {
                    let tag = m.as_str()?;
                    Mode::from_tag(tag)
                        .ok_or_else(|| JsonError::msg(format!("unknown mode `{tag}`")))?
                }
                None => Mode::Sync,
            },
            async_cfg: match v.opt("async") {
                Some(a) => AsyncConfig::from_json(a)?,
                None => AsyncConfig::default(),
            },
            latency: match v.opt("latency") {
                Some(l) => LatencyProfile::from_json(l)?,
                None => LatencyProfile::unit(),
            },
            churn: match v.opt("churn") {
                Some(c) => ChurnProfile::from_json(c)?,
                None => ChurnProfile::None,
            },
            // Absent in v1/v2 documents and in every default-off run.
            secagg: match v.opt("secagg") {
                Some(s) => SecAggConfig::from_json(s)?,
                None => SecAggConfig::default(),
            },
        };
        cfg.validate().map_err(|e| JsonError::msg(e.to_string()))?;
        Ok(cfg)
    }

    /// A fast configuration for unit tests: tiny tiers, few epochs.
    pub fn test_default(model: ModelKind) -> Self {
        Self {
            model,
            dims: TierDims::new(4, 8, 16),
            ratio: DivisionRatio::PAPER_DEFAULT,
            epochs: 2,
            clients_per_round: 32,
            local_epochs: 1,
            local_lr: 0.05,
            user_lr: 0.01,
            server_opt: ServerOpt::SgdSum,
            item_agg_norm: ItemAggNorm::SqrtCount,
            server_lr: 2.0,
            negatives: 4,
            alpha: 1.0,
            udl_aux_weight: 0.3,
            ddr_max_rows: 64,
            kd: KdConfig {
                items: 16,
                lr: 0.05,
                steps: 1,
            },
            eval_k: 10,
            threads: 1,
            seed: 7,
            drop_prob: 0.0,
            mode: Mode::Sync,
            async_cfg: AsyncConfig {
                staleness_beta: 0.5,
                buffer: 8,
                concurrency: 16,
                adaptive_beta: false,
            },
            latency: LatencyProfile::unit(),
            churn: ChurnProfile::None,
            secagg: SecAggConfig::default(),
        }
    }
}

impl ToJson for TrainConfig {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("model", &self.model)
                .field("dims", &self.dims)
                .field("ratio", &self.ratio)
                .field("epochs", &self.epochs)
                .field("clients_per_round", &self.clients_per_round)
                .field("local_epochs", &self.local_epochs)
                .field("local_lr", &self.local_lr)
                .field("user_lr", &self.user_lr)
                .field("server_opt", &self.server_opt.tag())
                .field("item_agg_norm", &self.item_agg_norm.tag())
                .field("server_lr", &self.server_lr)
                .field("negatives", &self.negatives)
                .field("alpha", &self.alpha)
                .field("udl_aux_weight", &self.udl_aux_weight)
                .field("ddr_max_rows", &self.ddr_max_rows)
                .field("kd", &self.kd)
                .field("eval_k", &self.eval_k)
                .field("threads", &self.threads)
                .field("seed", &self.seed)
                .field("drop_prob", &self.drop_prob)
                .field("mode", &self.mode.tag())
                .field("async", &self.async_cfg)
                .field("latency", &self.latency)
                .field("churn", &self.churn);
            // Emitted only when it differs from the default so the
            // default-off configuration serializes byte-identically to
            // every pre-secagg document.
            if self.secagg != SecAggConfig::default() {
                o.field("secagg", &self.secagg);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_dims_accessors() {
        let d = TierDims::paper_small();
        assert_eq!(d.dim(Tier::Small), 8);
        assert_eq!(d.dim(Tier::Medium), 16);
        assert_eq!(d.dim(Tier::Large), 32);
        assert_eq!(d.largest(), 32);
        assert_eq!(d.label(), "{8,16,32}");
    }

    #[test]
    #[should_panic(expected = "tier dims")]
    fn rejects_non_monotone_dims() {
        let _ = TierDims::new(8, 8, 16);
    }

    #[test]
    fn paper_defaults_follow_section_v_d() {
        let cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::Douban);
        assert_eq!(cfg.dims.as_array(), [32, 64, 128]);
        assert_eq!(cfg.clients_per_round, 256);
        assert_eq!(cfg.negatives, 4);
        assert_eq!(cfg.eval_k, 20);
        assert_eq!(cfg.ratio, DivisionRatio::PAPER_DEFAULT);
    }

    #[test]
    fn ml_defaults_use_small_dims() {
        let cfg = TrainConfig::paper_defaults(ModelKind::LightGcn, DatasetProfile::MovieLens);
        assert_eq!(cfg.dims.as_array(), [8, 16, 32]);
    }

    #[test]
    fn defaults_validate_cleanly() {
        TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::Douban)
            .validate()
            .unwrap();
        TrainConfig::test_default(ModelKind::LightGcn)
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_bad_fields_with_the_field_name() {
        let base = TrainConfig::test_default(ModelKind::Ncf);
        let cases: Vec<(&str, Box<dyn Fn(&mut TrainConfig)>)> = vec![
            ("epochs", Box::new(|c| c.epochs = 0)),
            ("clients_per_round", Box::new(|c| c.clients_per_round = 0)),
            ("local_epochs", Box::new(|c| c.local_epochs = 0)),
            ("negatives", Box::new(|c| c.negatives = 0)),
            ("eval_k", Box::new(|c| c.eval_k = 0)),
            ("threads", Box::new(|c| c.threads = 0)),
            ("ddr_max_rows", Box::new(|c| c.ddr_max_rows = 1)),
            ("local_lr", Box::new(|c| c.local_lr = 0.0)),
            ("user_lr", Box::new(|c| c.user_lr = f32::NAN)),
            ("server_lr", Box::new(|c| c.server_lr = -1.0)),
            ("alpha", Box::new(|c| c.alpha = f32::INFINITY)),
            ("udl_aux_weight", Box::new(|c| c.udl_aux_weight = -0.5)),
            ("kd.items", Box::new(|c| c.kd.items = 0)),
            ("kd.steps", Box::new(|c| c.kd.steps = 0)),
            ("kd.lr", Box::new(|c| c.kd.lr = 0.0)),
            ("drop_prob", Box::new(|c| c.drop_prob = 1.0)),
            (
                "async.staleness_beta",
                Box::new(|c| c.async_cfg.staleness_beta = f32::NAN),
            ),
            ("async.buffer", Box::new(|c| c.async_cfg.buffer = 0)),
            (
                "async.concurrency",
                Box::new(|c| c.async_cfg.concurrency = 0),
            ),
            (
                "latency",
                Box::new(|c| c.latency = LatencyProfile::Fixed(0)),
            ),
            (
                "churn",
                Box::new(|c| {
                    c.churn = ChurnProfile::Independent { offline_prob: 1.5 };
                }),
            ),
            ("secagg.scale_bits", Box::new(|c| c.secagg.scale_bits = 31)),
        ];
        for (field, mutate) in cases {
            let mut cfg = base.clone();
            mutate(&mut cfg);
            let err = cfg.validate().expect_err(field);
            assert_eq!(err.field, field, "{err}");
        }
    }

    #[test]
    fn config_json_roundtrips_exactly() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut cfg = TrainConfig::paper_defaults(ModelKind::LightGcn, DatasetProfile::Douban);
        cfg.server_opt = ServerOpt::Adam;
        cfg.item_agg_norm = ItemAggNorm::Mean;
        cfg.drop_prob = 0.25;
        cfg.local_lr = 1.0 / 3.0;
        cfg.mode = Mode::Async;
        cfg.async_cfg = AsyncConfig {
            staleness_beta: 0.75,
            buffer: 48,
            concurrency: 192,
            adaptive_beta: true,
        };
        cfg.latency = LatencyProfile::LogNormal {
            median: 4.0,
            sigma: 0.8,
        };
        cfg.churn = ChurnProfile::Flappy {
            offline_prob: 0.2,
            period: 5,
        };
        cfg.secagg = SecAggConfig {
            enabled: true,
            scale_bits: 20,
        };
        let back = TrainConfig::from_json(&parse_json(&cfg.to_json()).unwrap()).unwrap();
        assert_eq!(back.model, cfg.model);
        assert_eq!(back.dims, cfg.dims);
        assert_eq!(back.ratio, cfg.ratio);
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.server_opt, cfg.server_opt);
        assert_eq!(back.item_agg_norm, cfg.item_agg_norm);
        assert_eq!(back.local_lr.to_bits(), cfg.local_lr.to_bits());
        assert_eq!(back.drop_prob.to_bits(), cfg.drop_prob.to_bits());
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.mode, cfg.mode);
        assert_eq!(back.async_cfg, cfg.async_cfg);
        assert_eq!(back.latency, cfg.latency);
        assert_eq!(back.churn, cfg.churn);
        assert_eq!(back.secagg, cfg.secagg);
    }

    #[test]
    fn default_off_secagg_serializes_without_the_field() {
        use hf_tensor::ser::{parse_json, ToJson};
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let json = cfg.to_json();
        assert!(
            !json.contains("secagg"),
            "default-off secagg must not appear in the document: {json}"
        );
        let back = TrainConfig::from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(back.secagg, SecAggConfig::default());
    }

    #[test]
    fn default_off_adaptive_beta_serializes_without_the_field() {
        use hf_tensor::ser::{parse_json, ToJson};
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let json = cfg.to_json();
        assert!(
            !json.contains("adaptive_beta"),
            "default-off adaptive_beta must not appear in the document: {json}"
        );
        let back = TrainConfig::from_json(&parse_json(&json).unwrap()).unwrap();
        assert!(!back.async_cfg.adaptive_beta);
    }

    #[test]
    fn per_tier_latency_roundtrips_through_config() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.latency = LatencyProfile::PerTier(Box::new([
            LatencyProfile::Fixed(1),
            LatencyProfile::Uniform { min: 2, max: 6 },
            LatencyProfile::LogNormal {
                median: 9.0,
                sigma: 0.5,
            },
        ]));
        let back = TrainConfig::from_json(&parse_json(&cfg.to_json()).unwrap()).unwrap();
        assert_eq!(back.latency, cfg.latency);
    }

    #[test]
    fn v1_config_without_orchestration_fields_restores_as_sync() {
        use hf_tensor::ser::{parse_json, ToJson};
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        // Strip the orchestration fields to reconstruct a v1 document.
        let json = cfg.to_json();
        let cut = json.find(",\"mode\":").expect("mode field present");
        let v1 = format!("{}}}", &json[..cut]);
        let back = TrainConfig::from_json(&parse_json(&v1).unwrap()).unwrap();
        assert_eq!(back.mode, Mode::Sync);
        assert_eq!(back.async_cfg, AsyncConfig::default());
        assert_eq!(back.latency, LatencyProfile::unit());
        assert_eq!(back.churn, ChurnProfile::None);
    }

    #[test]
    fn config_from_json_revalidates() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 0;
        let json = cfg.to_json();
        let doc = parse_json(&json).unwrap();
        assert!(TrainConfig::from_json(&doc).is_err());
    }
}
