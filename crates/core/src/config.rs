//! Experiment configuration.

use hf_dataset::{DatasetProfile, DivisionRatio, Tier};
use hf_models::ModelKind;

/// The three tier embedding dimensions `{Ns, Nm, Nl}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierDims {
    dims: [usize; 3],
}

impl TierDims {
    /// Creates tier dimensions, enforcing `Ns < Nm < Nl` (paper §IV-A).
    pub fn new(small: usize, medium: usize, large: usize) -> Self {
        assert!(
            small > 0 && small < medium && medium < large,
            "tier dims must satisfy 0 < Ns < Nm < Nl, got {small},{medium},{large}"
        );
        Self {
            dims: [small, medium, large],
        }
    }

    /// The paper's ML/Anime setting `{8, 16, 32}`.
    pub fn paper_small() -> Self {
        Self::new(8, 16, 32)
    }

    /// The paper's Douban setting `{32, 64, 128}`.
    pub fn paper_large() -> Self {
        Self::new(32, 64, 128)
    }

    /// The RQ5 tiny setting `{2, 4, 8}`.
    pub fn rq5_tiny() -> Self {
        Self::new(2, 4, 8)
    }

    /// Dimension of one tier.
    pub fn dim(&self, tier: Tier) -> usize {
        self.dims[tier.index()]
    }

    /// All three dimensions, ascending.
    pub fn as_array(&self) -> [usize; 3] {
        self.dims
    }

    /// The widest dimension (`Nl`).
    pub fn largest(&self) -> usize {
        self.dims[2]
    }

    /// Paper-style label, e.g. `{8,16,32}`.
    pub fn label(&self) -> String {
        format!("{{{},{},{}}}", self.dims[0], self.dims[1], self.dims[2])
    }
}

/// Relation-based ensemble self-distillation settings (Eq. 16–17).
#[derive(Clone, Copy, Debug)]
pub struct KdConfig {
    /// Items sampled per distillation step (`|V_kd|`).
    pub items: usize,
    /// Server-side gradient-step size on the alignment loss.
    pub lr: f32,
    /// Gradient steps per aggregation round.
    pub steps: usize,
}

impl Default for KdConfig {
    fn default() -> Self {
        Self {
            items: 128,
            lr: 1.0,
            steps: 1,
        }
    }
}

/// How the server folds aggregated deltas into the public parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerOpt {
    /// Eq. 9 literal: `V -= server_lr * Σ Δ` (deltas already carry the
    /// local learning rate, so `server_lr = 1` reproduces summed local
    /// progress). Predictors average rather than sum — see DESIGN.md §5.
    SgdSum,
    /// Server-side Adam over the summed deltas (per embedding row and per
    /// predictor tensor) — the ablation alternative.
    Adam,
}

/// Per-row normalisation of the aggregated item-embedding delta.
///
/// Eq. 8's plain sum lets a popular item accumulate one full local step
/// from *every* client that touched it each round, which overdrives head
/// items and destabilises training (visible as post-peak degradation in
/// the convergence curves). Normalising by the contributor count per row
/// restores stability; `SqrtCount` is the compromise that keeps some
/// popularity-proportional progress. The server-optimiser ablation bench
/// compares all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemAggNorm {
    /// Eq. 8 literal: plain sum.
    Sum,
    /// Divide each row's summed delta by its contributor count.
    Mean,
    /// Divide each row's summed delta by sqrt(contributor count).
    SqrtCount,
}

/// Full configuration of one federated training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Base recommendation model.
    pub model: ModelKind,
    /// Tier embedding dimensions.
    pub dims: TierDims,
    /// Client division ratio over (small, medium, large).
    pub ratio: DivisionRatio,
    /// Global training epochs (each epoch traverses all clients once).
    pub epochs: usize,
    /// Clients per round (paper: 256).
    pub clients_per_round: usize,
    /// Local passes over a client's data per selection (paper's "local
    /// epochs").
    pub local_epochs: usize,
    /// Client-side learning rate for local public-parameter SGD.
    pub local_lr: f32,
    /// Client-side Adam learning rate for the private user embedding
    /// (paper: Adam, 0.001 — we default higher because each client is
    /// selected only once per epoch).
    pub user_lr: f32,
    /// Server application of aggregated updates.
    pub server_opt: ServerOpt,
    /// Per-row normalisation of aggregated item deltas.
    pub item_agg_norm: ItemAggNorm,
    /// Server learning-rate scale on summed item deltas.
    pub server_lr: f32,
    /// Negatives per positive (paper: 4).
    pub negatives: usize,
    /// DDR weight α (Eq. 14; Fig. 8 sweeps 0.5–2.0).
    pub alpha: f32,
    /// Weight of each *auxiliary* prefix task in the UDL loss (the
    /// client's own-tier task always has weight 1). Eq. 11 sums tasks
    /// unweighted (`= 1.0`); damping the auxiliary tasks keeps the
    /// effective step size on shared prefix dimensions comparable to
    /// single-task clients under per-sample SGD, and bounds how much an
    /// over-fit large client can perturb the small tier's objective. The
    /// ablation bench compares weightings.
    pub udl_aux_weight: f32,
    /// Row cap for the DDR correlation computation (bounds client cost).
    pub ddr_max_rows: usize,
    /// Distillation settings.
    pub kd: KdConfig,
    /// Ranking cutoff (paper: 20).
    pub eval_k: usize,
    /// Worker threads for intra-round parallelism.
    pub threads: usize,
    /// Master experiment seed.
    pub seed: u64,
    /// Client upload drop probability (0 = paper setting).
    pub drop_prob: f64,
}

impl TrainConfig {
    /// Paper-default hyper-parameters for a dataset profile (§V-D), with
    /// epochs left for the caller to choose.
    pub fn paper_defaults(model: ModelKind, profile: DatasetProfile) -> Self {
        let [s, m, l] = profile.paper_dims();
        Self {
            model,
            dims: TierDims::new(s, m, l),
            ratio: DivisionRatio::PAPER_DEFAULT,
            epochs: 20,
            clients_per_round: 256,
            local_epochs: 2,
            local_lr: 0.05,
            user_lr: 0.01,
            server_opt: ServerOpt::SgdSum,
            item_agg_norm: ItemAggNorm::SqrtCount,
            server_lr: 2.0,
            negatives: 4,
            alpha: 1.0,
            udl_aux_weight: 0.3,
            ddr_max_rows: 256,
            kd: KdConfig::default(),
            eval_k: 20,
            threads: 2,
            seed: 42,
            drop_prob: 0.0,
        }
    }

    /// A fast configuration for unit tests: tiny tiers, few epochs.
    pub fn test_default(model: ModelKind) -> Self {
        Self {
            model,
            dims: TierDims::new(4, 8, 16),
            ratio: DivisionRatio::PAPER_DEFAULT,
            epochs: 2,
            clients_per_round: 32,
            local_epochs: 1,
            local_lr: 0.05,
            user_lr: 0.01,
            server_opt: ServerOpt::SgdSum,
            item_agg_norm: ItemAggNorm::SqrtCount,
            server_lr: 2.0,
            negatives: 4,
            alpha: 1.0,
            udl_aux_weight: 0.3,
            ddr_max_rows: 64,
            kd: KdConfig {
                items: 16,
                lr: 0.05,
                steps: 1,
            },
            eval_k: 10,
            threads: 1,
            seed: 7,
            drop_prob: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_dims_accessors() {
        let d = TierDims::paper_small();
        assert_eq!(d.dim(Tier::Small), 8);
        assert_eq!(d.dim(Tier::Medium), 16);
        assert_eq!(d.dim(Tier::Large), 32);
        assert_eq!(d.largest(), 32);
        assert_eq!(d.label(), "{8,16,32}");
    }

    #[test]
    #[should_panic(expected = "tier dims")]
    fn rejects_non_monotone_dims() {
        let _ = TierDims::new(8, 8, 16);
    }

    #[test]
    fn paper_defaults_follow_section_v_d() {
        let cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::Douban);
        assert_eq!(cfg.dims.as_array(), [32, 64, 128]);
        assert_eq!(cfg.clients_per_round, 256);
        assert_eq!(cfg.negatives, 4);
        assert_eq!(cfg.eval_k, 20);
        assert_eq!(cfg.ratio, DivisionRatio::PAPER_DEFAULT);
    }

    #[test]
    fn ml_defaults_use_small_dims() {
        let cfg = TrainConfig::paper_defaults(ModelKind::LightGcn, DatasetProfile::MovieLens);
        assert_eq!(cfg.dims.as_array(), [8, 16, 32]);
    }
}
