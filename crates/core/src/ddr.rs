//! Dimensional decorrelation regularization (Eq. 12–14).
//!
//! Unified dual-task learning alone lets a wide embedding satisfy every
//! loss term through its leading `Ns` columns — the *dimensional collapse*
//! the paper diagnoses via the variance of the covariance matrix's
//! singular values (Eq. 12, Table V). Penalising that variance directly
//! requires an SVD per step, so the paper follows [70], [71] and
//! regularises the Frobenius norm of the correlation matrix instead:
//!
//! ```text
//! Lreg(V) = (1/N) ‖ corr( (V - V̄) / sqrt(var(V)) ) ‖_F        (Eq. 13)
//! ```
//!
//! The gradient here treats the standardisation statistics (per-column
//! mean and variance) as constants — the stop-gradient simplification of
//! the cited FedDecorr reference implementation (DESIGN.md §2). Under
//! that convention, with `Ẑ` the standardised matrix and
//! `K = (1/B) ẐᵀẐ` the correlation matrix (constant unit diagonal
//! excluded from the penalty — same minimisers, and the gradient then
//! vanishes exactly at the decorrelated optimum `K = I`):
//!
//! ```text
//! ∂L/∂K = K / (N·‖K‖_F),   ∂L/∂Ẑ = (2/B)·Ẑ·(∂L/∂K),   ∂L/∂Z = ∂L/∂Ẑ ⊘ σ
//! ```

use hf_tensor::stats;
use hf_tensor::Matrix;

/// Variance floor below which a column is considered collapsed-constant
/// and excluded from the penalty.
const VAR_EPS: f32 = 1e-8;

/// Evaluates `Lreg` (Eq. 13) and its gradient with respect to the rows of
/// `z` (a `B x N` matrix of item embeddings).
///
/// Returns `(loss, gradient)`; the gradient has `z`'s shape. For inputs
/// with fewer than 2 rows or columns the loss is 0 with a zero gradient
/// (a single embedding row carries no correlation signal).
///
/// This single-threaded form is what the client hot path uses — client
/// training already runs fanned out across the round's worker pool, so
/// nesting another pool inside it would oversubscribe. Server-side and
/// diagnostic callers with large `B` should prefer
/// [`decorrelation_loss_grad_threaded`].
pub fn decorrelation_loss_grad(z: &Matrix) -> (f32, Matrix) {
    decorrelation_loss_grad_threaded(z, 1)
}

/// [`decorrelation_loss_grad`] with the gradient product `Ẑ · K_off`
/// fanned over up to `threads` workers (`hf_fedsim::linalg::par_matmul`).
///
/// Bit-identical to the single-threaded form for every thread count: the
/// parallel driver partitions output rows without changing any per-row
/// accumulation order.
pub fn decorrelation_loss_grad_threaded(z: &Matrix, threads: usize) -> (f32, Matrix) {
    let (b, n) = (z.rows(), z.cols());
    if b < 2 || n < 2 {
        return (0.0, Matrix::zeros(b, n));
    }

    let means = stats::column_means(z);
    let vars = stats::column_variances(z);
    let inv_std: Vec<f32> = vars
        .iter()
        .map(|&v| if v > VAR_EPS { 1.0 / v.sqrt() } else { 0.0 })
        .collect();

    // Standardise (stop-grad on means/vars).
    let mut zhat = z.clone();
    for r in 0..b {
        for ((x, &mu), &is) in zhat.row_mut(r).iter_mut().zip(&means).zip(&inv_std) {
            *x = (*x - mu) * is;
        }
    }

    // Correlation matrix K = (1/B) Ẑᵀ Ẑ, with the constant unit diagonal
    // removed: the diagonal never varies (each column has unit variance
    // by construction), but under stop-grad statistics it would inject a
    // spurious self-shrinkage term into the gradient that does not vanish
    // at the decorrelated optimum. Penalising only the off-diagonal mass
    // has the same minimisers and a clean fixed point at K = I.
    let mut k = zhat.gram();
    k.scale(1.0 / b as f32);
    for j in 0..n {
        k.set(j, j, 0.0);
    }

    let norm = k.frobenius_norm();
    let loss = norm / n as f32;
    if norm < 1e-12 {
        return (loss, Matrix::zeros(b, n));
    }

    // ∂L/∂Ẑ = (2/B) Ẑ K_off / (N ‖K_off‖_F); then divide by σ per column.
    let mut grad = hf_fedsim::linalg::par_matmul(&zhat, &k, threads);
    grad.scale(2.0 / (b as f32 * n as f32 * norm));
    for r in 0..b {
        for (g, &is) in grad.row_mut(r).iter_mut().zip(&inv_std) {
            *g *= is;
        }
    }
    (loss, grad)
}

/// Convenience: `Lreg` value only (diagnostics).
pub fn decorrelation_loss(z: &Matrix) -> f32 {
    decorrelation_loss_grad(z).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, SeedStream};
    use hf_tensor::{init, stats};

    #[test]
    fn loss_is_low_for_decorrelated_columns() {
        let mut rng = stream(1, SeedStream::Custom(40));
        let z = init::normal(2000, 8, 1.0, &mut rng);
        let (loss, _) = decorrelation_loss_grad(&z);
        // Independent columns: off-diagonal correlations ≈ N(0, 1/√B),
        // so the penalty sits near sqrt(N²-N)/(√B·N) ≈ 0.02 at B=2000.
        assert!(loss < 0.05, "loss {loss}");
    }

    #[test]
    fn loss_is_high_for_collapsed_columns() {
        // Every column a multiple of the same vector: off-diagonal
        // correlations are all ±1, ‖K_off‖_F = sqrt(N²-N), loss ≈ 0.91.
        let z = Matrix::from_fn(100, 6, |r, c| ((r as f32).sin()) * (c as f32 + 1.0));
        let (loss, _) = decorrelation_loss_grad(&z);
        assert!(loss > 0.85, "loss {loss}");
    }

    #[test]
    fn collapsed_loss_exceeds_decorrelated_loss() {
        let mut rng = stream(2, SeedStream::Custom(41));
        let good = init::normal(500, 8, 1.0, &mut rng);
        let bad = Matrix::from_fn(500, 8, |r, c| {
            ((r * 31 % 97) as f32 / 97.0 - 0.5) * (1.0 + c as f32 * 0.2)
        });
        assert!(decorrelation_loss(&bad) > 2.0 * decorrelation_loss(&good));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = stream(3, SeedStream::Custom(42));
        // Mildly correlated input so the gradient is non-trivial.
        let base = init::normal(12, 4, 1.0, &mut rng);
        let mut z = base.clone();
        for r in 0..z.rows() {
            let v0 = z.get(r, 0);
            *z.get_mut(r, 2) += 0.5 * v0;
        }

        // The analytic gradient uses stop-grad statistics, so compare
        // against finite differences of the *same stop-grad objective*:
        // re-standardise with the unperturbed means/vars.
        let means = stats::column_means(&z);
        let vars = stats::column_variances(&z);
        let frozen_loss = |m: &Matrix| -> f32 {
            let bsz = m.rows() as f32;
            let mut zh = m.clone();
            for r in 0..zh.rows() {
                for ((x, &mu), &va) in zh.row_mut(r).iter_mut().zip(&means).zip(&vars) {
                    *x = (*x - mu) / va.sqrt();
                }
            }
            let mut k = zh.gram();
            k.scale(1.0 / bsz);
            for j in 0..m.cols() {
                k.set(j, j, 0.0);
            }
            k.frobenius_norm() / m.cols() as f32
        };

        let (_, grad) = decorrelation_loss_grad(&z);
        let eps = 1e-3;
        for r in 0..z.rows() {
            for c in 0..z.cols() {
                let mut plus = z.clone();
                *plus.get_mut(r, c) += eps;
                let mut minus = z.clone();
                *minus.get_mut(r, c) -= eps;
                let fd = (frozen_loss(&plus) - frozen_loss(&minus)) / (2.0 * eps);
                let g = grad.get(r, c);
                assert!(
                    (fd - g).abs() < 3e-2 * fd.abs().max(g.abs()).max(0.1),
                    "({r},{c}): analytic {g} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn gradient_descent_reduces_singular_value_variance() {
        // The end-to-end claim behind Table V: pushing Lreg down flattens
        // the embedding spectrum. The penalty is scale-invariant (it sees
        // the *correlation* matrix), so measure the singular-value
        // variance of the column-standardised matrix — in training the
        // task loss pins the scales, here we pin them explicitly.
        let mut rng = stream(9, SeedStream::Custom(43));
        let noise = init::normal(200, 6, 1.0, &mut rng);
        let mut z = Matrix::from_fn(200, 6, |r, c| {
            let shared = ((r * 13 % 101) as f32 / 101.0 - 0.5) * 2.0;
            0.8 * shared + 0.6 * noise.get(r, c)
        });
        let spectrum_spread =
            |m: &Matrix| stats::singular_value_variance(&stats::standardize_columns(m, 1e-12));
        let before = spectrum_spread(&z);
        for _ in 0..400 {
            let (_, grad) = decorrelation_loss_grad(&z);
            z.axpy(-2.0, &grad);
        }
        let after = spectrum_spread(&z);
        assert!(after < before * 0.8, "before {before}, after {after}");
    }

    #[test]
    fn threaded_gradient_is_bit_identical() {
        let mut rng = stream(4, SeedStream::Custom(44));
        let z = init::normal(300, 32, 1.0, &mut rng);
        let (l1, g1) = decorrelation_loss_grad_threaded(&z, 1);
        for threads in [2, 8] {
            let (lt, gt) = decorrelation_loss_grad_threaded(&z, threads);
            assert_eq!(l1.to_bits(), lt.to_bits());
            for (a, b) in g1.as_slice().iter().zip(gt.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let (l, g) = decorrelation_loss_grad(&Matrix::zeros(1, 5));
        assert_eq!(l, 0.0);
        assert_eq!(g.max_abs(), 0.0);
        let (l, g) = decorrelation_loss_grad(&Matrix::zeros(5, 1));
        assert_eq!(l, 0.0);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn constant_columns_are_ignored() {
        let z = Matrix::from_fn(
            50,
            3,
            |r, c| if c == 2 { 7.0 } else { ((r + c) as f32).sin() },
        );
        let (loss, grad) = decorrelation_loss_grad(&z);
        assert!(loss.is_finite());
        for r in 0..50 {
            assert_eq!(grad.get(r, 2), 0.0, "constant column must get no gradient");
        }
    }
}
