//! Full-ranking evaluation across strategies and tiers.
//!
//! Each user is scored with the model it would actually serve: its model
//! tier's item table and predictor (or its private standalone copies),
//! its private user embedding, and — for Fed-LightGCN — its local-graph
//! propagation. Training positives are masked; Recall@20 / NDCG@20 are
//! computed against the held-out test items (§V-B). The per-*data*-group
//! breakdown reproduces Fig. 6.
//!
//! Scoring goes through [`hf_models::scoring::SplitNcf`] — the same
//! scorer the serving layer (`hf_serve`) batches over item-table panels —
//! so offline evaluation and online serving produce identical rankings by
//! construction. [`score_user`] is the shared per-user entry point.

use crate::client::UserState;
use crate::config::TrainConfig;
use crate::server::ServerState;
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset, Tier};
use hf_metrics::eval::{EvalResult, Evaluator, GroupedEval, UserEval};
use hf_models::scoring::{propagate_lightgcn, SplitNcf};
use hf_models::ModelKind;

/// Aggregated evaluation output: overall plus per-data-group (Fig. 6).
#[derive(Clone, Debug, Default)]
pub struct EvalOutput {
    /// Mean metrics over all users with test data (Table II row).
    pub overall: EvalResult,
    /// Mean metrics per data group `[Us, Um, Ul]` (Fig. 6 bars).
    pub per_group: [EvalResult; 3],
}

impl hf_tensor::ser::ToJson for EvalOutput {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("overall", &self.overall)
                .field("per_group", &self.per_group);
        });
    }
}

impl EvalOutput {
    /// Restores a checkpointed evaluation.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let groups = v.get("per_group")?.as_arr()?;
        if groups.len() != 3 {
            return Err(hf_tensor::ser::JsonError::msg(
                "per_group must have 3 entries",
            ));
        }
        Ok(Self {
            overall: EvalResult::from_json(v.get("overall")?)?,
            per_group: [
                EvalResult::from_json(&groups[0])?,
                EvalResult::from_json(&groups[1])?,
                EvalResult::from_json(&groups[2])?,
            ],
        })
    }

    /// Paper-style one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "Recall {:.5}  NDCG {:.5} | Us {:.5}  Um {:.5}  Ul {:.5}",
            self.overall.recall,
            self.overall.ndcg,
            self.per_group[0].ndcg,
            self.per_group[1].ndcg,
            self.per_group[2].ndcg,
        )
    }
}

/// Scores every item for one user through the shared split-layer scorer.
///
/// This is the single scoring path for both offline evaluation (below)
/// and online serving (`hf_serve` reproduces it bit-for-bit with panel
/// batching); any change to its semantics changes what the system serves.
pub fn score_user(
    cfg: &TrainConfig,
    strategy: Strategy,
    split: &SplitDataset,
    server: &ServerState,
    state: &UserState,
    user_id: usize,
    model_tier: Tier,
) -> Vec<f32> {
    let user_split = split.user(user_id);
    let dim = cfg.dims.dim(model_tier);
    let num_items = split.num_items();
    let is_standalone = matches!(strategy, Strategy::Standalone);

    let theta = if is_standalone {
        &state.standalone.as_ref().expect("standalone state").theta
    } else {
        server.theta(model_tier)
    };
    let scorer = SplitNcf::from_ffn(dim, theta);
    let mut ws = scorer.workspace();

    let table = server.table(model_tier);
    let overlay = state.standalone.as_ref().map(|s| &s.rows);
    let row_of = |item: usize| -> &[f32] {
        if let Some(overlay) = overlay {
            if let Some(row) = overlay.get(&(item as u32)) {
                return row.as_slice();
            }
        }
        table.row_prefix(item, dim)
    };

    // Fed-LightGCN scores with the propagated user representation.
    let user_repr: Vec<f32> = match cfg.model {
        ModelKind::Ncf => state.emb.clone(),
        ModelKind::LightGcn => propagate_lightgcn(
            &state.emb,
            user_split.train.len(),
            user_split.train.iter().map(|&item| row_of(item as usize)),
        ),
    };

    let user_half = scorer.user_half(&user_repr);
    let mut item_half = vec![0.0f32; scorer.hidden_width()];
    let mut scores = Vec::with_capacity(num_items);
    for item in 0..num_items {
        scorer.item_half_into(row_of(item), &mut item_half);
        scores.push(scorer.finish(&user_half, &item_half, &mut ws));
    }
    scores
}

/// Scores every item for one user and evaluates the ranking.
///
/// Exposed for tests and tools; [`evaluate`] is the batch entry point.
pub fn evaluate_user(
    cfg: &TrainConfig,
    strategy: Strategy,
    split: &SplitDataset,
    server: &ServerState,
    state: &UserState,
    user_id: usize,
    model_tier: Tier,
) -> Option<UserEval> {
    let user_split = split.user(user_id);
    if user_split.test.is_empty() {
        return None;
    }
    let scores = score_user(cfg, strategy, split, server, state, user_id, model_tier);
    let evaluator = Evaluator { k: cfg.eval_k };
    evaluator.evaluate_user(&scores, &user_split.train, &user_split.test)
}

/// Evaluates the whole population in parallel.
///
/// `model_groups` assigns serving tiers; `data_groups` assigns the
/// Fig. 6 reporting buckets (always the data-size division, even for
/// homogeneous strategies).
pub fn evaluate(
    cfg: &TrainConfig,
    strategy: Strategy,
    split: &SplitDataset,
    server: &ServerState,
    users: &[UserState],
    model_groups: &ClientGroups,
    data_groups: &ClientGroups,
) -> EvalOutput {
    let ids: Vec<usize> = (0..split.num_users()).collect();
    let evals = hf_fedsim::parallel::parallel_map(&ids, cfg.threads, |&u| {
        evaluate_user(
            cfg,
            strategy,
            split,
            server,
            &users[u],
            u,
            model_groups.tier(u),
        )
    });

    let mut grouped = GroupedEval::new(3);
    for (u, eval) in evals.into_iter().enumerate() {
        if let Some(e) = eval {
            grouped.push(data_groups.tier(u).index(), e);
        }
    }
    let per = grouped.per_group();
    EvalOutput {
        overall: grouped.overall(),
        per_group: [per[0], per[1], per[2]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_dataset::{DivisionRatio, SyntheticConfig};

    fn setup() -> (
        TrainConfig,
        SplitDataset,
        ServerState,
        Vec<UserState>,
        ClientGroups,
    ) {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let data = SyntheticConfig::tiny().generate(5);
        let split = SplitDataset::paper_split(&data, 5);
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let server = ServerState::new(split.num_items(), &cfg, strategy);
        let groups = strategy.assign_tiers(&split, DivisionRatio::PAPER_DEFAULT);
        let users: Vec<UserState> = (0..split.num_users())
            .map(|u| UserState::init(u, cfg.dims.dim(groups.tier(u)), &cfg, None))
            .collect();
        (cfg, split, server, users, groups)
    }

    #[test]
    fn evaluation_covers_users_with_test_data() {
        let (cfg, split, server, users, groups) = setup();
        let out = evaluate(
            &cfg,
            Strategy::HeteFedRec(Ablation::FULL),
            &split,
            &server,
            &users,
            &groups,
            &groups,
        );
        let with_test = split
            .iter_users()
            .filter(|(_, s)| !s.test.is_empty())
            .count();
        assert_eq!(out.overall.users, with_test);
        let group_sum: usize = out.per_group.iter().map(|g| g.users).sum();
        assert_eq!(group_sum, with_test);
    }

    #[test]
    fn metrics_are_bounded() {
        let (cfg, split, server, users, groups) = setup();
        let out = evaluate(
            &cfg,
            Strategy::HeteFedRec(Ablation::FULL),
            &split,
            &server,
            &users,
            &groups,
            &groups,
        );
        for r in std::iter::once(&out.overall).chain(out.per_group.iter()) {
            assert!((0.0..=1.0).contains(&r.recall), "recall {}", r.recall);
            assert!((0.0..=1.0).contains(&r.ndcg), "ndcg {}", r.ndcg);
        }
    }

    #[test]
    fn evaluation_is_deterministic_and_thread_invariant() {
        let (mut cfg, split, server, users, groups) = setup();
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let a = evaluate(&cfg, strategy, &split, &server, &users, &groups, &groups);
        cfg.threads = 4;
        let b = evaluate(&cfg, strategy, &split, &server, &users, &groups, &groups);
        assert_eq!(a.overall.recall, b.overall.recall);
        assert_eq!(a.overall.ndcg, b.overall.ndcg);
    }

    #[test]
    fn lightgcn_evaluation_runs() {
        let cfg = TrainConfig::test_default(ModelKind::LightGcn);
        let data = SyntheticConfig::tiny().generate(6);
        let split = SplitDataset::paper_split(&data, 6);
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let server = ServerState::new(split.num_items(), &cfg, strategy);
        let groups = strategy.assign_tiers(&split, DivisionRatio::PAPER_DEFAULT);
        let users: Vec<UserState> = (0..split.num_users())
            .map(|u| UserState::init(u, cfg.dims.dim(groups.tier(u)), &cfg, None))
            .collect();
        let out = evaluate(&cfg, strategy, &split, &server, &users, &groups, &groups);
        assert!(out.overall.users > 0);
        assert!(out.overall.ndcg.is_finite());
    }

    #[test]
    fn standalone_uses_private_parameters() {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let data = SyntheticConfig::tiny().generate(7);
        let split = SplitDataset::paper_split(&data, 7);
        let strategy = Strategy::Standalone;
        let server = ServerState::new(split.num_items(), &cfg, strategy);
        let groups = strategy.assign_tiers(&split, DivisionRatio::PAPER_DEFAULT);
        let u = 0;
        let tier = groups.tier(u);
        let state = UserState::init(
            u,
            cfg.dims.dim(tier),
            &cfg,
            Some(server.theta(tier).clone()),
        );
        let eval = evaluate_user(&cfg, strategy, &split, &server, &state, u, tier);
        // User 0 of the tiny dataset has test items, so evaluation runs.
        assert!(eval.is_some());
    }

    #[test]
    fn summary_mentions_all_groups() {
        let out = EvalOutput::default();
        let s = out.summary();
        assert!(s.contains("Us") && s.contains("Um") && s.contains("Ul"));
    }
}
