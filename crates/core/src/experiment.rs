//! High-level experiment runner shared by the bench binaries.

use crate::config::TrainConfig;
use crate::eval::EvalOutput;
use crate::session::{History, SessionBuilder};
use crate::strategy::Strategy;
use hf_dataset::{SplitDataset, Tier};
use hf_fedsim::comm::CommLedger;

/// Everything an experiment table needs from one training run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Strategy display name (paper row label).
    pub strategy: String,
    /// Final evaluation (Table II / VI / VII cells; Fig. 6 bars).
    pub final_eval: EvalOutput,
    /// Per-epoch history (Fig. 7 curves).
    pub history: History,
    /// Dimensional-collapse diagnostic per tier (Table V).
    pub collapse: [f32; 3],
    /// Accumulated communication ledger.
    pub comm: CommLedger,
}

impl hf_tensor::ser::ToJson for ExperimentResult {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("strategy", &self.strategy)
                .field("final_eval", &self.final_eval)
                .field("history", &self.history)
                .field("collapse", &self.collapse)
                .field("comm", &self.comm);
        });
    }
}

/// Trains `strategy` under `cfg` on `split` to completion and collects
/// the artefacts every table/figure binary consumes.
///
/// # Panics
/// Panics on an invalid configuration; use [`SessionBuilder`] directly
/// for `Result`-based handling, round events, or checkpointing.
pub fn run_experiment(
    cfg: &TrainConfig,
    strategy: Strategy,
    split: &SplitDataset,
) -> ExperimentResult {
    let mut session = SessionBuilder::new(cfg.clone(), strategy, split.clone())
        .build()
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
    session.run();
    let final_eval = session
        .final_eval()
        .cloned()
        .unwrap_or_else(|| session.evaluate());
    let collapse = [
        session.server().collapse_metric(Tier::Small),
        session.server().collapse_metric(Tier::Medium),
        session.server().collapse_metric(Tier::Large),
    ];
    ExperimentResult {
        strategy: strategy.name().to_string(),
        final_eval,
        history: session.history().clone(),
        collapse,
        comm: session.ledger().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_dataset::SyntheticConfig;
    use hf_models::ModelKind;

    #[test]
    fn run_experiment_produces_complete_artefacts() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 1;
        let data = SyntheticConfig::tiny().generate(2);
        let split = SplitDataset::paper_split(&data, 2);
        let result = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
        assert_eq!(result.strategy, "HeteFedRec(Ours)");
        assert_eq!(result.history.epochs.len(), 1);
        assert!(result.final_eval.overall.users > 0);
        assert!(result.collapse.iter().all(|c| c.is_finite()));
        assert!(result.comm.uploads > 0);
    }

    #[test]
    fn results_snapshot_as_json() {
        use hf_tensor::ser::ToJson;

        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 1;
        let data = SyntheticConfig::tiny().generate(2);
        let split = SplitDataset::paper_split(&data, 2);
        let result = run_experiment(&cfg, Strategy::AllSmall, &split);
        let json = result.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"strategy\":\"All Small\""));
        for key in [
            "final_eval",
            "overall",
            "per_group",
            "history",
            "train_loss",
            "collapse",
            "comm",
            "upload_bytes",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key} in {json}"
            );
        }
    }
}
