//! # hetefedrec-core
//!
//! The paper's contribution: **HeteFedRec**, a federated recommender
//! system in which clients train models of different sizes (item-embedding
//! widths `Ns < Nm < Nl`), plus every baseline it is compared against.
//!
//! The three techniques that make heterogeneous aggregation work:
//!
//! 1. **Padding-based aggregation** (Eq. 7–10, [`server`]): smaller
//!    item-embedding updates are zero-padded to the widest tier and
//!    summed; each tier table receives the matching prefix slice.
//! 2. **Unified dual-task learning** (Eq. 11, [`client`]): a client
//!    optimises the recommendation loss on every prefix slice of its
//!    embeddings simultaneously, pairing slice `[:N_a]` with tier `a`'s
//!    predictor `Θ_a`, so sub-matrix updates share the smaller tiers'
//!    objective.
//! 3. **Dimensional decorrelation regularization** (Eq. 12–14, [`ddr`])
//!    prevents wide embeddings from collapsing into the shared
//!    low-dimensional prefix, and **relation-based ensemble
//!    self-distillation** (Eq. 16–17, [`reskd`]) aligns the cosine
//!    geometry of the three tables on the server without any reference
//!    dataset.
//!
//! [`strategy`] enumerates the paper's six baselines and the ablation
//! switches of Table IV; [`session`] runs the full federated protocol as
//! a resumable stepper of typed round/epoch events and produces the
//! metric histories every experiment binary consumes; [`eval`] ranks the
//! full item universe through the same split-layer scorer the serving
//! layer (`hf_serve`) uses.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod ddr;
pub mod eval;
pub mod experiment;
pub mod reskd;
pub mod server;
pub mod session;
pub mod strategy;

pub use config::{
    AsyncConfig, ConfigError, ItemAggNorm, KdConfig, Mode, SecAggConfig, ServerOpt, TierDims,
    TrainConfig,
};
pub use eval::EvalOutput;
pub use experiment::{run_experiment, ExperimentResult};
pub use session::{
    AsyncRoundStats, EpochRecord, EpochReport, History, IngestReport, RoundReport,
    SecAggRoundStats, Session, SessionBuilder, SessionError, SessionEvent, StopReason,
};
pub use strategy::{Ablation, Strategy};
