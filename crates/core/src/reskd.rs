//! Relation-based ensemble self-knowledge distillation (Eq. 16–17).
//!
//! Classic federated distillation needs a public reference dataset, which
//! FedRec privacy rules out (§IV-C). HeteFedRec instead distils on the
//! server, using only the item-embedding tables themselves: if the tables
//! are well trained, the *relative geometry* of any item subset should
//! agree across tiers. Each round the server
//!
//! 1. samples a subset `V_kd` of items,
//! 2. computes each tier's pairwise cosine-similarity matrix over the
//!    subset and averages them into the ensemble target
//!    `d_ens = (1/3) Σ_a d(V_a, V_kd)` (Eq. 16),
//! 3. takes gradient steps on each tier's sampled rows to minimise
//!    `‖d(V_a, V_kd) − d_ens‖²` (Eq. 17).
//!
//! Because each tier's update comes from its own alignment gradient, this
//! step intentionally breaks the exact Eq. 10 prefix equality that
//! aggregation maintains (see DESIGN.md §5).

use crate::config::KdConfig;
use hf_tensor::rng::Rng;
use hf_tensor::sim::{alignment_loss_grad, cosine_similarity_matrix, mean_of};
use hf_tensor::Matrix;

/// Samples `count` distinct item indices from `0..num_items` via a partial
/// Fisher–Yates pass (deterministic given the RNG state).
pub fn sample_items(num_items: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let count = count.min(num_items);
    let mut pool: Vec<usize> = (0..num_items).collect();
    for i in 0..count {
        let j = rng.gen_range(i..num_items);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// One full distillation round over the tier tables.
///
/// `tables` are the post-aggregation `{Vs, Vm, Vl}` (any widths). Returns
/// the summed alignment loss *before* the update — the quantity that
/// shrinks round over round when distillation works.
///
/// The three per-tier alignment descents are independent once the
/// ensemble target is fixed, and their costs are skewed by tier width
/// (the large tier pays ~4x the small tier per step), so they fan out
/// over the work-stealing pool when `threads > 1`. Each tier's descent is
/// a self-contained computation, so results are bit-identical for every
/// thread count.
pub fn distill_round(
    tables: &mut [Matrix; 3],
    kd: &KdConfig,
    threads: usize,
    rng: &mut impl Rng,
) -> f32 {
    let num_items = tables[0].rows();
    debug_assert!(tables.iter().all(|t| t.rows() == num_items));
    if kd.items < 2 || num_items < 2 {
        return 0.0;
    }
    let selected = sample_items(num_items, kd.items, rng);

    // Eq. 16: per-tier similarity over the subset, then the ensemble mean.
    let subsets: Vec<Matrix> = tables.iter().map(|t| t.select_rows(&selected)).collect();
    let sims: Vec<Matrix> = subsets.iter().map(cosine_similarity_matrix).collect();
    let target = mean_of(&sims.iter().collect::<Vec<_>>());

    // Eq. 17: align each tier to the ensemble target. The raw alignment
    // loss sums over all k² similarity pairs, so its gradient magnitude
    // grows with the subset size; normalising by the off-diagonal pair
    // count makes `kd.lr` scale-free in `kd.items`.
    let k = selected.len() as f32;
    let pair_norm = 1.0 / (k * (k - 1.0)).max(1.0);
    let distilled = hf_fedsim::parallel::parallel_map(&subsets, threads, |subset| {
        let mut subset = subset.clone();
        let mut first_loss = None;
        for _ in 0..kd.steps.max(1) {
            let (loss, grad) = alignment_loss_grad(&subset, &target);
            first_loss.get_or_insert(loss * pair_norm);
            subset.axpy(-kd.lr * pair_norm, &grad);
        }
        (subset, first_loss.unwrap_or(0.0))
    });

    let mut total_loss = 0.0;
    for (table, (subset, loss)) in tables.iter_mut().zip(distilled) {
        total_loss += loss;
        // Write the distilled rows back.
        for (slot, &item) in selected.iter().enumerate() {
            table.row_mut(item).copy_from_slice(subset.row(slot));
        }
    }
    total_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, SeedStream};
    use hf_tensor::{init, sim};

    fn tables(seed: u64) -> [Matrix; 3] {
        let mut rng = stream(seed, SeedStream::ParamInit);
        [
            init::embedding_normal(50, 4, &mut rng),
            init::embedding_normal(50, 8, &mut rng),
            init::embedding_normal(50, 16, &mut rng),
        ]
    }

    #[test]
    fn sample_items_distinct_and_in_range() {
        let mut rng = stream(1, SeedStream::Distill);
        let s = sample_items(100, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_items_clamps_to_universe() {
        let mut rng = stream(2, SeedStream::Distill);
        assert_eq!(sample_items(5, 100, &mut rng).len(), 5);
    }

    #[test]
    fn distillation_reduces_alignment_loss() {
        let mut t = tables(10);
        let kd = KdConfig {
            items: 50,
            lr: 30.0,
            steps: 1,
        };
        // Run several rounds on the same (full) subset; the reported
        // pre-update loss must shrink.
        let mut rng = stream(3, SeedStream::Distill);
        let first = distill_round(&mut t, &kd, 1, &mut rng);
        let mut last = first;
        for _ in 0..20 {
            let mut rng = stream(3, SeedStream::Distill); // same subset each time
            last = distill_round(&mut t, &kd, 1, &mut rng);
        }
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn distillation_pulls_tier_geometries_together() {
        let mut t = tables(11);
        let kd = KdConfig {
            items: 50,
            lr: 30.0,
            steps: 2,
        };
        let spread = |t: &[Matrix; 3]| -> f32 {
            let sims: Vec<Matrix> = t.iter().map(cosine_similarity_matrix).collect();
            let mean = sim::mean_of(&sims.iter().collect::<Vec<_>>());
            sims.iter().map(|s| s.sub(&mean).sum_squares() as f32).sum()
        };
        let before = spread(&t);
        for _ in 0..30 {
            let mut rng = stream(4, SeedStream::Distill);
            distill_round(&mut t, &kd, 1, &mut rng);
        }
        let after = spread(&t);
        assert!(after < before * 0.6, "before {before}, after {after}");
    }

    #[test]
    fn untouched_rows_are_unchanged() {
        let mut t = tables(12);
        let originals = t.clone();
        let kd = KdConfig {
            items: 10,
            lr: 5.0,
            steps: 1,
        };
        let mut rng = stream(5, SeedStream::Distill);
        let selected = {
            // Re-derive the same subset the round will use.
            let mut probe = stream(5, SeedStream::Distill);
            sample_items(50, 10, &mut probe)
        };
        distill_round(&mut t, &kd, 1, &mut rng);
        for (table, original) in t.iter().zip(&originals) {
            for row in 0..50 {
                if !selected.contains(&row) {
                    assert_eq!(table.row(row), original.row(row), "row {row} moved");
                }
            }
        }
    }

    #[test]
    fn distillation_is_bit_identical_across_thread_counts() {
        let kd = KdConfig {
            items: 30,
            lr: 10.0,
            steps: 2,
        };
        let mut reference = tables(15);
        let loss_ref = distill_round(&mut reference, &kd, 1, &mut stream(8, SeedStream::Distill));
        for threads in [2, 8] {
            let mut t = tables(15);
            let loss = distill_round(&mut t, &kd, threads, &mut stream(8, SeedStream::Distill));
            assert_eq!(loss.to_bits(), loss_ref.to_bits(), "threads = {threads}");
            for (a, b) in t.iter().zip(&reference) {
                assert_eq!(a, b, "threads = {threads}");
            }
        }
    }

    #[test]
    fn degenerate_kd_is_noop() {
        let mut t = tables(13);
        let before = t.clone();
        let kd = KdConfig {
            items: 1,
            lr: 0.1,
            steps: 1,
        };
        let mut rng = stream(6, SeedStream::Distill);
        assert_eq!(distill_round(&mut t, &kd, 1, &mut rng), 0.0);
        assert_eq!(t[0], before[0]);
    }

    #[test]
    fn distillation_is_deterministic() {
        let mut a = tables(14);
        let mut b = tables(14);
        let kd = KdConfig::default();
        let la = distill_round(&mut a, &kd, 1, &mut stream(7, SeedStream::Distill));
        let lb = distill_round(&mut b, &kd, 1, &mut stream(7, SeedStream::Distill));
        assert_eq!(la, lb);
        assert_eq!(a[1], b[1]);
    }
}
