//! Central-server state: public parameters, padding-based heterogeneous
//! aggregation (Eq. 7–10, 15), and the distillation hook.

use crate::config::{ItemAggNorm, KdConfig, ServerOpt, TierDims, TrainConfig};
use crate::reskd;
use crate::strategy::Strategy;
use hf_dataset::Tier;
use hf_fedsim::transport::ClientUpdate;
use hf_models::{paper_predictor_dims, Ffn, RowGradBuffer};
use hf_tensor::adam::{Adam, AdamConfig, SparseRowAdam};
use hf_tensor::rng::StdRng;
use hf_tensor::rng::{stream, SeedStream};
use hf_tensor::Matrix;
use std::collections::HashMap;

/// The server's public parameters and optimiser state.
#[derive(Clone, Debug)]
pub struct ServerState {
    num_items: usize,
    dims: TierDims,
    strategy: Strategy,
    server_opt: ServerOpt,
    item_agg_norm: ItemAggNorm,
    server_lr: f32,
    /// Tier item-embedding tables `{Vs, Vm, Vl}`, initialised from the
    /// same point on shared prefixes (required for Eq. 10).
    tables: [Matrix; 3],
    /// Tier predictors `{Θs, Θm, Θl}`.
    thetas: [Ffn; 3],
    /// Server-Adam state (only allocated under [`ServerOpt::Adam`]).
    item_adam: Option<Box<[SparseRowAdam; 3]>>,
    theta_adam: Option<Box<[Adam; 3]>>,
    /// Distillation RNG (its own stream so KD sampling never perturbs
    /// anything else).
    kd_rng: StdRng,
}

impl ServerState {
    /// Initialises public parameters for `num_items` items.
    ///
    /// `Vl` is drawn Normal(0, 1/√Nl); `Vm` and `Vs` are its leading-column
    /// copies so all tiers start "from the same point" (§IV-B). Each
    /// tier's predictor is drawn independently at its own width.
    pub fn new(num_items: usize, cfg: &TrainConfig, strategy: Strategy) -> Self {
        let mut rng = stream(cfg.seed, SeedStream::ParamInit);
        let dims = cfg.dims;
        let large = hf_tensor::init::embedding_normal(num_items, dims.largest(), &mut rng);
        let tables = [
            large.prefix_columns(dims.dim(Tier::Small)),
            large.prefix_columns(dims.dim(Tier::Medium)),
            large,
        ];
        let thetas = [
            Ffn::new(&paper_predictor_dims(dims.dim(Tier::Small)), &mut rng),
            Ffn::new(&paper_predictor_dims(dims.dim(Tier::Medium)), &mut rng),
            Ffn::new(&paper_predictor_dims(dims.dim(Tier::Large)), &mut rng),
        ];
        let (item_adam, theta_adam) = match cfg.server_opt {
            ServerOpt::SgdSum => (None, None),
            ServerOpt::Adam => {
                let ac = AdamConfig::with_lr(cfg.server_lr);
                (
                    Some(Box::new([
                        SparseRowAdam::new(num_items, dims.dim(Tier::Small), ac),
                        SparseRowAdam::new(num_items, dims.dim(Tier::Medium), ac),
                        SparseRowAdam::new(num_items, dims.dim(Tier::Large), ac),
                    ])),
                    Some(Box::new([
                        Adam::new(thetas[0].num_params(), ac),
                        Adam::new(thetas[1].num_params(), ac),
                        Adam::new(thetas[2].num_params(), ac),
                    ])),
                )
            }
        };
        Self {
            num_items,
            dims,
            strategy,
            server_opt: cfg.server_opt,
            item_agg_norm: cfg.item_agg_norm,
            server_lr: cfg.server_lr,
            tables,
            thetas,
            item_adam,
            theta_adam,
            kd_rng: stream(cfg.seed, SeedStream::Distill),
        }
    }

    /// Item universe size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Tier dimensions.
    pub fn dims(&self) -> TierDims {
        self.dims
    }

    /// One tier's item-embedding table.
    pub fn table(&self, tier: Tier) -> &Matrix {
        &self.tables[tier.index()]
    }

    /// One tier's predictor.
    pub fn theta(&self, tier: Tier) -> &Ffn {
        &self.thetas[tier.index()]
    }

    /// The predictors a client of `tier` downloads: every tier at or below
    /// its own, ascending (Algorithm 1: `Um` receives `Θs, Θm`; `Ul` all
    /// three).
    pub fn thetas_for(&self, tier: Tier, udl: bool) -> Vec<Ffn> {
        if udl {
            (0..=tier.index()).map(|i| self.thetas[i].clone()).collect()
        } else {
            vec![self.thetas[tier.index()].clone()]
        }
    }

    /// Applies one round of client updates.
    ///
    /// `updates` carries each accepted client's model tier alongside its
    /// payload. Item-embedding deltas aggregate by padded **sum** (Eq. 8):
    /// every delta lands in a `Nl`-wide accumulator at its natural prefix,
    /// and each tier table then absorbs the prefix slice matching its
    /// width (which preserves `Vs = Vm[:Ns] = Vl[:Ns]`, Eq. 10). Under
    /// [`Strategy::ClusteredFedRec`] the sum instead stays within each
    /// tier. Predictor deltas are **averaged** per tier (DESIGN.md §5).
    pub fn apply_round(&mut self, updates: &[(Tier, ClientUpdate)]) {
        self.apply_round_weighted(updates, &vec![1.0; updates.len()]);
    }

    /// [`ServerState::apply_round`] with a per-update weight — the
    /// asynchronous mode's staleness discount `1 / (1 + s)^β`.
    ///
    /// Each client's item-embedding delta is scaled by its weight before
    /// the per-row [`ItemAggNorm`] normalisation (contributor counts stay
    /// unweighted), and predictor deltas become a weighted average
    /// (`Σ wᵢ·Δᵢ / Σ wᵢ`). All-ones weights reproduce
    /// [`ServerState::apply_round`] bit-for-bit.
    ///
    /// # Panics
    /// Panics if `weights.len() != updates.len()`.
    pub fn apply_round_weighted(&mut self, updates: &[(Tier, ClientUpdate)], weights: &[f32]) {
        assert_eq!(updates.len(), weights.len(), "one weight per update");
        if updates.is_empty() {
            return;
        }
        if self.strategy.aggregates_across_tiers() {
            let mut acc = RowGradBuffer::new(self.dims.largest());
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for ((_, update), &w) in updates.iter().zip(weights) {
                for (row, delta) in &update.items.rows {
                    acc.accumulate(*row, w, delta);
                    *counts.entry(*row).or_insert(0) += 1;
                }
            }
            self.apply_item_aggregate(&mut acc, &counts, &[Tier::Small, Tier::Medium, Tier::Large]);
        } else {
            // Clustered: aggregate within each tier only.
            for tier in Tier::ALL {
                let mut acc = RowGradBuffer::new(self.dims.dim(tier));
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for ((t, update), &w) in updates.iter().zip(weights) {
                    if *t == tier {
                        for (row, delta) in &update.items.rows {
                            acc.accumulate(*row, w, delta);
                            *counts.entry(*row).or_insert(0) += 1;
                        }
                    }
                }
                if !acc.is_empty() {
                    self.apply_item_aggregate(&mut acc, &counts, &[tier]);
                }
            }
        }
        for tier in Tier::ALL {
            let idx = tier.index();
            let expected = self.thetas[idx].num_params();
            let mut sum = vec![0.0f32; expected];
            let mut count = 0usize;
            let mut weight_sum = 0.0f32;
            for ((_, update), &w) in updates.iter().zip(weights) {
                for (t, flat) in &update.thetas {
                    if *t as usize == idx {
                        assert_eq!(flat.len(), expected, "theta delta width mismatch");
                        hf_tensor::ops::axpy_slice(&mut sum, w, flat);
                        count += 1;
                        weight_sum += w;
                    }
                }
            }
            self.apply_theta_aggregate(tier, sum, count, weight_sum);
        }
    }

    /// Applies an **already-summed** item-delta aggregate: per-row
    /// weighted sums in `acc`, per-row contributor counts in `counts`.
    /// This is the seam the secure-aggregation path shares with
    /// [`ServerState::apply_round_weighted`] — the server consumes only
    /// the sum, never individual updates, so an unmasked ring aggregate
    /// plugs in here bit-identically.
    pub fn apply_item_aggregate(
        &mut self,
        acc: &mut RowGradBuffer,
        counts: &HashMap<u32, u32>,
        tiers: &[Tier],
    ) {
        self.normalize_rows(acc, counts);
        self.apply_item_deltas(acc, tiers);
    }

    /// Applies an already-summed predictor aggregate for one tier:
    /// `sum = Σ wᵢ·Δᵢ` over `count` contributors with total weight
    /// `weight_sum`. No-op when nothing contributed (same seam as
    /// [`ServerState::apply_item_aggregate`]).
    pub fn apply_theta_aggregate(
        &mut self,
        tier: Tier,
        mut sum: Vec<f32>,
        count: usize,
        weight_sum: f32,
    ) {
        let idx = tier.index();
        assert_eq!(
            sum.len(),
            self.thetas[idx].num_params(),
            "theta aggregate width mismatch"
        );
        if count == 0 || weight_sum <= 0.0 {
            return;
        }
        let inv = 1.0 / weight_sum;
        match self.server_opt {
            ServerOpt::SgdSum => {
                sum.iter_mut().for_each(|x| *x *= inv * self.server_lr);
                let delta = Ffn::from_flat(self.thetas[idx].dims(), &sum);
                self.thetas[idx].add_scaled(1.0, &delta);
            }
            ServerOpt::Adam => {
                // Mean delta as negative gradient.
                sum.iter_mut().for_each(|x| *x *= -inv);
                let mut flat = self.thetas[idx].to_flat();
                self.theta_adam.as_mut().expect("adam state")[idx].step(&mut flat, &sum);
                self.thetas[idx] = Ffn::from_flat(self.thetas[idx].dims(), &flat);
            }
        }
    }

    /// Applies the configured per-row normalisation to an aggregated
    /// delta buffer (see [`ItemAggNorm`]).
    fn normalize_rows(&self, acc: &mut RowGradBuffer, counts: &HashMap<u32, u32>) {
        if self.item_agg_norm == ItemAggNorm::Sum {
            return;
        }
        // RowGradBuffer has no in-place per-row scaling; rebuild via drain.
        let dim = acc.dim();
        let rows = acc.drain();
        for (row, mut delta) in rows {
            let n = counts.get(&row).copied().unwrap_or(1).max(1) as f32;
            let scale = match self.item_agg_norm {
                ItemAggNorm::Sum => 1.0,
                ItemAggNorm::Mean => 1.0 / n,
                ItemAggNorm::SqrtCount => 1.0 / n.sqrt(),
            };
            delta.iter_mut().for_each(|x| *x *= scale);
            acc.accumulate(row, 1.0, &delta[..dim]);
        }
    }

    /// Folds an aggregated delta buffer into the given tier tables at
    /// their prefix widths.
    fn apply_item_deltas(&mut self, acc: &RowGradBuffer, tiers: &[Tier]) {
        for &tier in tiers {
            let dim = self.dims.dim(tier).min(acc.dim());
            let table = &mut self.tables[tier.index()];
            match self.server_opt {
                ServerOpt::SgdSum => {
                    for (row, delta) in acc.iter() {
                        table.row_axpy(row as usize, self.server_lr, &delta[..dim]);
                    }
                }
                ServerOpt::Adam => {
                    let adam = &mut self.item_adam.as_mut().expect("adam state")[tier.index()];
                    let mut grad = vec![0.0f32; dim];
                    for (row, delta) in acc.iter() {
                        // Deltas are descent directions; Adam consumes
                        // gradients, so negate.
                        for (g, &d) in grad.iter_mut().zip(&delta[..dim]) {
                            *g = -d;
                        }
                        adam.step_row(row as usize, table.row_prefix_mut(row as usize, dim), &grad);
                    }
                }
            }
        }
    }

    /// Runs one relation-based ensemble self-distillation round (Eq. 16–17)
    /// with up to `threads` workers and returns the pre-update alignment
    /// loss. Results are identical for every thread count.
    pub fn distill(&mut self, kd: &KdConfig, threads: usize) -> f32 {
        reskd::distill_round(&mut self.tables, kd, threads, &mut self.kd_rng)
    }

    /// Variance of the singular values of `cov(V_tier)` — the Table V
    /// dimensional-collapse diagnostic.
    pub fn collapse_metric(&self, tier: Tier) -> f32 {
        hf_tensor::stats::singular_value_variance(&self.tables[tier.index()])
    }

    /// Writes the server's *mutable* state (tables, predictors, optimiser
    /// moments, distillation RNG) as JSON. Config-derived fields are not
    /// repeated — [`ServerState::from_json`] rebuilds them from the
    /// configuration stored alongside the snapshot.
    pub fn snapshot_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("tables", &self.tables)
                .field("thetas", &self.thetas)
                .field("item_adam", &self.item_adam.as_ref().map(|a| a.as_slice()))
                .field(
                    "theta_adam",
                    &self.theta_adam.as_ref().map(|a| a.as_slice()),
                )
                .field("kd_rng", &self.kd_rng);
        });
    }

    /// Restores a server from a [`ServerState::snapshot_json`] snapshot
    /// plus the run's configuration and strategy.
    pub fn from_json(
        v: &hf_tensor::ser::JsonValue<'_>,
        num_items: usize,
        cfg: &TrainConfig,
        strategy: Strategy,
    ) -> Result<Self, hf_tensor::ser::JsonError> {
        use hf_tensor::ser::JsonError;
        let read3 = |key: &str| -> Result<[&hf_tensor::ser::JsonValue<'_>; 3], JsonError> {
            let arr = v.get(key)?.as_arr()?;
            if arr.len() != 3 {
                return Err(JsonError::msg(format!("`{key}` must have 3 tiers")));
            }
            Ok([&arr[0], &arr[1], &arr[2]])
        };
        let mut tables = Vec::with_capacity(3);
        for (tier, t) in Tier::ALL.iter().zip(read3("tables")?) {
            let m = Matrix::from_json(t)?;
            if m.rows() != num_items || m.cols() != cfg.dims.dim(*tier) {
                return Err(JsonError::msg(format!(
                    "{tier:?} table is {}x{}, expected {num_items}x{}",
                    m.rows(),
                    m.cols(),
                    cfg.dims.dim(*tier)
                )));
            }
            tables.push(m);
        }
        let tables: [Matrix; 3] = tables.try_into().expect("length checked");

        let mut thetas = Vec::with_capacity(3);
        for (tier, t) in Tier::ALL.iter().zip(read3("thetas")?) {
            let f = Ffn::from_json(t)?;
            if f.dims() != paper_predictor_dims(cfg.dims.dim(*tier)) {
                return Err(JsonError::msg(format!("{tier:?} predictor shape mismatch")));
            }
            thetas.push(f);
        }
        let thetas: [Ffn; 3] = thetas.try_into().expect("length checked");

        let (item_adam, theta_adam) = match cfg.server_opt {
            ServerOpt::SgdSum => {
                if !v.get("item_adam")?.is_null() || !v.get("theta_adam")?.is_null() {
                    return Err(JsonError::msg(
                        "adam state present but server_opt is sgd_sum",
                    ));
                }
                (None, None)
            }
            ServerOpt::Adam => {
                let mut ia = Vec::with_capacity(3);
                for t in read3("item_adam")? {
                    ia.push(SparseRowAdam::from_json(t)?);
                }
                let mut ta = Vec::with_capacity(3);
                for t in read3("theta_adam")? {
                    ta.push(Adam::from_json(t)?);
                }
                let ia: [SparseRowAdam; 3] = ia.try_into().expect("length checked");
                let ta: [Adam; 3] = ta.try_into().expect("length checked");
                (Some(Box::new(ia)), Some(Box::new(ta)))
            }
        };

        Ok(Self {
            num_items,
            dims: cfg.dims,
            strategy,
            server_opt: cfg.server_opt,
            item_agg_norm: cfg.item_agg_norm,
            server_lr: cfg.server_lr,
            tables,
            thetas,
            item_adam,
            theta_adam,
            kd_rng: StdRng::from_json(v.get("kd_rng")?)?,
        })
    }

    /// Maximum absolute violation of the Eq. 10 prefix invariant
    /// (`Vs = Vm[:Ns] = Vl[:Ns]`, `Vm = Vl[:Nm]`). Exactly zero while
    /// distillation is disabled; grows once RESKD perturbs tiers
    /// individually.
    pub fn eq10_violation(&self) -> f32 {
        let ns = self.dims.dim(Tier::Small);
        let nm = self.dims.dim(Tier::Medium);
        let mut worst = 0.0f32;
        for row in 0..self.num_items {
            let s = self.tables[0].row(row);
            let m = self.tables[1].row(row);
            let l = self.tables[2].row(row);
            for d in 0..ns {
                worst = worst.max((s[d] - m[d]).abs()).max((s[d] - l[d]).abs());
            }
            for d in 0..nm {
                worst = worst.max((m[d] - l[d]).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_fedsim::transport::SparseRowUpdate;
    use hf_models::ModelKind;

    fn cfg() -> TrainConfig {
        // These tests exercise the Eq. 8/9 literal semantics: plain sum,
        // unit server learning rate.
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.item_agg_norm = crate::config::ItemAggNorm::Sum;
        cfg.server_lr = 1.0;
        cfg
    }

    fn server(strategy: Strategy) -> ServerState {
        ServerState::new(30, &cfg(), strategy)
    }

    fn update(
        tier: Tier,
        row: u32,
        dim: usize,
        value: f32,
        theta_len: usize,
    ) -> (Tier, ClientUpdate) {
        (
            tier,
            ClientUpdate {
                items: SparseRowUpdate::new(dim, vec![(row, vec![value; dim])]),
                thetas: vec![(tier.index() as u8, vec![value; theta_len])],
            },
        )
    }

    #[test]
    fn tables_start_from_the_same_point() {
        let s = server(Strategy::HeteFedRec(Ablation::FULL));
        assert_eq!(s.eq10_violation(), 0.0);
    }

    #[test]
    fn padded_sum_updates_every_tier_prefix() {
        let mut s = server(Strategy::HeteFedRec(Ablation::NO_RESKD));
        let before = s.tables.clone();
        // A small-tier client touches row 3 with +1 on its 4 dims.
        let theta_len = s.theta(Tier::Small).num_params();
        s.apply_round(&[update(Tier::Small, 3, 4, 1.0, theta_len)]);
        // All three tables move on row 3's first 4 columns...
        for tier in Tier::ALL {
            let t = s.table(tier);
            let b = &before[tier.index()];
            for d in 0..4 {
                assert!(
                    (t.get(3, d) - (b.get(3, d) + 1.0)).abs() < 1e-6,
                    "{tier:?} dim {d}"
                );
            }
            // ...and nowhere else.
            for d in 4..t.cols() {
                assert_eq!(t.get(3, d), b.get(3, d), "{tier:?} tail dim {d}");
            }
            assert_eq!(t.row(0), b.row(0), "{tier:?} untouched row");
        }
    }

    #[test]
    fn eq10_invariant_survives_aggregation() {
        let mut s = server(Strategy::HeteFedRec(Ablation::NO_RESKD));
        let tl = [
            s.theta(Tier::Small).num_params(),
            s.theta(Tier::Medium).num_params(),
            s.theta(Tier::Large).num_params(),
        ];
        for round in 0..5 {
            let updates = vec![
                update(Tier::Small, round, 4, 0.1, tl[0]),
                update(Tier::Medium, round + 1, 8, -0.2, tl[1]),
                update(Tier::Large, round + 2, 16, 0.3, tl[2]),
            ];
            s.apply_round(&updates);
        }
        assert!(
            s.eq10_violation() < 1e-6,
            "violation {}",
            s.eq10_violation()
        );
    }

    #[test]
    fn distillation_breaks_eq10_as_documented() {
        let mut s = server(Strategy::HeteFedRec(Ablation::FULL));
        s.distill(
            &KdConfig {
                items: 20,
                lr: 20.0,
                steps: 2,
            },
            1,
        );
        assert!(s.eq10_violation() > 0.0);
    }

    #[test]
    fn clustered_aggregation_stays_within_tier() {
        let mut s = server(Strategy::ClusteredFedRec);
        let before = s.tables.clone();
        let theta_len = s.theta(Tier::Small).num_params();
        s.apply_round(&[update(Tier::Small, 3, 4, 1.0, theta_len)]);
        // Small table moves; medium and large tables must not.
        assert!((s.table(Tier::Small).get(3, 0) - (before[0].get(3, 0) + 1.0)).abs() < 1e-6);
        assert_eq!(s.table(Tier::Medium).row(3), before[1].row(3));
        assert_eq!(s.table(Tier::Large).row(3), before[2].row(3));
    }

    #[test]
    fn unit_weights_reproduce_apply_round_bitwise() {
        let theta_len = |s: &ServerState, t: Tier| s.theta(t).num_params();
        for strategy in [
            Strategy::HeteFedRec(Ablation::NO_RESKD),
            Strategy::ClusteredFedRec,
        ] {
            let mut plain = server(strategy);
            let mut weighted = server(strategy);
            let tl = [
                theta_len(&plain, Tier::Small),
                theta_len(&plain, Tier::Medium),
                theta_len(&plain, Tier::Large),
            ];
            for round in 0..4 {
                let updates = vec![
                    update(Tier::Small, round, 4, 0.1, tl[0]),
                    update(Tier::Medium, round + 1, 8, -0.2, tl[1]),
                    update(Tier::Large, round + 2, 16, 0.3, tl[2]),
                ];
                plain.apply_round(&updates);
                weighted.apply_round_weighted(&updates, &[1.0, 1.0, 1.0]);
            }
            let (mut a, mut b) = (String::new(), String::new());
            plain.snapshot_json(&mut a);
            weighted.snapshot_json(&mut b);
            assert_eq!(a, b, "{strategy:?}");
        }
    }

    #[test]
    fn staleness_weights_discount_item_deltas() {
        let mut s = server(Strategy::HeteFedRec(Ablation::NO_RESKD));
        let before = s.table(Tier::Small).get(3, 0);
        let theta_len = s.theta(Tier::Small).num_params();
        // One client with weight 0.25: the +1 delta lands as +0.25.
        s.apply_round_weighted(&[update(Tier::Small, 3, 4, 1.0, theta_len)], &[0.25]);
        assert!((s.table(Tier::Small).get(3, 0) - (before + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn theta_deltas_weight_average_per_tier() {
        let mut s = server(Strategy::HeteFedRec(Ablation::NO_RESKD));
        let theta_len = s.theta(Tier::Small).num_params();
        let before = s.theta(Tier::Small).to_flat();
        // Weights 3 and 1 over deltas +1 and +5: weighted mean is +2.
        s.apply_round_weighted(
            &[
                update(Tier::Small, 1, 4, 1.0, theta_len),
                update(Tier::Small, 2, 4, 5.0, theta_len),
            ],
            &[3.0, 1.0],
        );
        let after = s.theta(Tier::Small).to_flat();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b - 2.0).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn theta_deltas_average_per_tier() {
        let mut s = server(Strategy::HeteFedRec(Ablation::NO_RESKD));
        let theta_len = s.theta(Tier::Small).num_params();
        let before = s.theta(Tier::Small).to_flat();
        // Two small clients upload +1 and +3: mean is +2.
        s.apply_round(&[
            update(Tier::Small, 0, 4, 1.0, theta_len),
            update(Tier::Small, 1, 4, 3.0, theta_len),
        ]);
        let after = s.theta(Tier::Small).to_flat();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b - 2.0).abs() < 1e-5);
        }
        // Medium/large thetas untouched (no deltas for them).
        let _ = s;
    }

    #[test]
    fn adam_server_opt_moves_parameters() {
        let mut c = cfg();
        c.server_opt = ServerOpt::Adam;
        c.server_lr = 0.01;
        let mut s = ServerState::new(30, &c, Strategy::HeteFedRec(Ablation::NO_RESKD));
        let theta_len = s.theta(Tier::Small).num_params();
        let before_row = s.table(Tier::Large).row(5).to_vec();
        let before_theta = s.theta(Tier::Small).to_flat();
        s.apply_round(&[update(Tier::Small, 5, 4, 1.0, theta_len)]);
        // Adam's first step has magnitude ≈ lr in the delta direction.
        let after_row = s.table(Tier::Large).row(5);
        for d in 0..4 {
            assert!((after_row[d] - before_row[d] - 0.01).abs() < 1e-4);
        }
        let after_theta = s.theta(Tier::Small).to_flat();
        assert!((after_theta[0] - before_theta[0] - 0.01).abs() < 1e-4);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let mut s = server(Strategy::HeteFedRec(Ablation::FULL));
        let before = s.tables.clone();
        s.apply_round(&[]);
        assert_eq!(s.tables, before);
    }

    #[test]
    fn thetas_for_respects_udl_protocol() {
        let s = server(Strategy::HeteFedRec(Ablation::FULL));
        assert_eq!(s.thetas_for(Tier::Small, true).len(), 1);
        assert_eq!(s.thetas_for(Tier::Medium, true).len(), 2);
        assert_eq!(s.thetas_for(Tier::Large, true).len(), 3);
        assert_eq!(s.thetas_for(Tier::Large, false).len(), 1);
        // Without UDL a large client gets only its own predictor.
        let only = &s.thetas_for(Tier::Large, false)[0];
        assert_eq!(only.num_params(), s.theta(Tier::Large).num_params());
    }

    #[test]
    fn collapse_metric_is_finite_and_nonnegative() {
        let s = server(Strategy::HeteFedRec(Ablation::FULL));
        for tier in Tier::ALL {
            let m = s.collapse_metric(tier);
            assert!(m.is_finite() && m >= -1e-6, "{tier:?}: {m}");
        }
    }
}
