//! Session-driven federation API.
//!
//! The original `Trainer::train()` loop was closed: callers could not
//! observe rounds, stop early, change evaluation cadence, or resume an
//! interrupted run. This module redesigns the orchestration layer around
//! three pieces:
//!
//! * [`SessionBuilder`] — fluent construction with up-front configuration
//!   validation that returns [`SessionError`] instead of panicking deep
//!   inside the run.
//! * [`Session`] — the federation loop exposed as a *stepper* of typed
//!   events: every [`Session::step`] (or iteration of
//!   [`Session::events`]) yields a [`RoundReport`] or an [`EpochReport`],
//!   with observer hooks, configurable eval cadence, and built-in early
//!   stopping on an NDCG plateau.
//! * Checkpoint/resume — [`Session::checkpoint`] writes a versioned JSON
//!   snapshot of *all* mutable state (server tables and predictors,
//!   optimiser moments, every client's private state, scheduler queue and
//!   RNG, fault injector, communication ledger, round counter, mid-epoch
//!   cohort queue, history) via `hf_tensor::ser`; restoring it resumes
//!   the run **bit-identically** — a checkpointed-and-resumed run
//!   produces exactly the same `EvalOutput` as an uninterrupted one.
//!
//! Observer hooks and eval/early-stop *settings* live on the builder and
//! are not part of a checkpoint (closures cannot be serialised); re-apply
//! them when resuming.

use crate::client::{train_client, ClientCtx, ClientOutcome, UserState};
use crate::config::{ConfigError, TrainConfig};
use crate::eval::{evaluate, EvalOutput};
use crate::server::ServerState;
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset, Tier};
use hf_fedsim::comm::{CommLedger, RoundCost};
use hf_fedsim::faults::FaultInjector;
use hf_fedsim::parallel::parallel_map;
use hf_fedsim::scheduler::RoundScheduler;
use hf_fedsim::transport::ClientUpdate;
use hf_models::Ffn;
use hf_tensor::ser::{obj, parse_json, JsonError, JsonValue, ToJson};
use std::collections::VecDeque;

/// Checkpoint document identifier.
const CHECKPOINT_FORMAT: &str = "hetefedrec.checkpoint";
/// Current checkpoint schema version.
const CHECKPOINT_VERSION: u64 = 1;

/// Why a [`SessionBuilder`] refused to produce a session, or a checkpoint
/// refused to restore.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// A configuration field failed validation.
    Config(ConfigError),
    /// The split dataset has no clients to schedule.
    EmptyPopulation,
    /// An early-stopping patience of zero would stop after the first
    /// evaluation regardless of its value.
    ZeroPatience,
    /// The checkpoint document is malformed, the wrong format/version, or
    /// inconsistent with the configuration it carries.
    Checkpoint(String),
    /// The checkpoint was taken against a differently-shaped dataset.
    DatasetMismatch {
        /// Users recorded in the checkpoint.
        expected_users: usize,
        /// Users in the provided split.
        actual_users: usize,
        /// Items recorded in the checkpoint.
        expected_items: usize,
        /// Items in the provided split.
        actual_items: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "{e}"),
            SessionError::EmptyPopulation => write!(f, "split dataset has no clients"),
            SessionError::ZeroPatience => {
                write!(f, "early-stopping patience must be at least 1")
            }
            SessionError::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
            SessionError::DatasetMismatch {
                expected_users,
                actual_users,
                expected_items,
                actual_items,
            } => write!(
                f,
                "checkpoint was taken on {expected_users} users / {expected_items} items, \
                 but the provided split has {actual_users} users / {actual_items} items"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

impl From<JsonError> for SessionError {
    fn from(e: JsonError) -> Self {
        SessionError::Checkpoint(e.to_string())
    }
}

/// One completed federation round (a cohort trained, aggregated, and —
/// under full HeteFedRec — distilled).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Global 1-based round counter (monotone across epochs and resumes).
    pub round: u64,
    /// 1-based epoch this round belongs to.
    pub epoch: usize,
    /// 1-based position within the epoch.
    pub round_in_epoch: usize,
    /// Total rounds this epoch will run.
    pub rounds_in_epoch: usize,
    /// Clients selected this round.
    pub cohort: usize,
    /// Mean local training loss per sample this round (0 when no samples).
    pub loss: f64,
    /// (item, label) samples processed this round.
    pub samples: usize,
    /// Uploads accepted into aggregation (cohort minus strategy-filtered,
    /// dropped, and empty updates).
    pub accepted: usize,
    /// Bytes downloaded by this round's cohort.
    pub download_bytes: u64,
    /// Bytes uploaded by this round's accepted clients.
    pub upload_bytes: u64,
}

impl ToJson for RoundReport {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("round", &self.round)
                .field("epoch", &self.epoch)
                .field("round_in_epoch", &self.round_in_epoch)
                .field("rounds_in_epoch", &self.rounds_in_epoch)
                .field("cohort", &self.cohort)
                .field("loss", &self.loss)
                .field("samples", &self.samples)
                .field("accepted", &self.accepted)
                .field("download_bytes", &self.download_bytes)
                .field("upload_bytes", &self.upload_bytes);
        });
    }
}

/// One completed epoch (a full traversal of the client queue).
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean local training loss across the epoch's client selections.
    pub train_loss: f64,
    /// Post-epoch evaluation — `Some` when the eval cadence hit this
    /// epoch (always on the final configured epoch unless cadence is 0).
    pub eval: Option<EvalOutput>,
}

impl ToJson for EpochReport {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("epoch", &self.epoch)
                .field("train_loss", &self.train_loss)
                .field("eval", &self.eval);
        });
    }
}

/// A typed event yielded by the session stepper.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A federation round completed.
    Round(RoundReport),
    /// An epoch boundary was crossed.
    Epoch(EpochReport),
}

/// Why a session stopped stepping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// All configured epochs ran.
    Completed,
    /// The NDCG plateau detector fired after `epoch`.
    EarlyStopped {
        /// Epoch after which training stopped.
        epoch: usize,
    },
    /// [`Session::request_stop`] was honoured after `epoch`.
    Requested {
        /// Epoch after which training stopped.
        epoch: usize,
    },
}

impl ToJson for StopReason {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            match self {
                StopReason::Completed => o.field("reason", &"completed"),
                StopReason::EarlyStopped { epoch } => {
                    o.field("reason", &"early_stopped").field("epoch", epoch)
                }
                StopReason::Requested { epoch } => {
                    o.field("reason", &"requested").field("epoch", epoch)
                }
            };
        });
    }
}

impl StopReason {
    fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        match v.get("reason")?.as_str()? {
            "completed" => Ok(StopReason::Completed),
            "early_stopped" => Ok(StopReason::EarlyStopped {
                epoch: v.get("epoch")?.as_usize()?,
            }),
            "requested" => Ok(StopReason::Requested {
                epoch: v.get("epoch")?.as_usize()?,
            }),
            other => Err(JsonError::msg(format!("unknown stop reason `{other}`"))),
        }
    }
}

/// Per-epoch record for convergence curves (Fig. 7).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean local training loss across all client selections.
    pub train_loss: f64,
    /// Post-epoch evaluation.
    pub eval: EvalOutput,
}

impl ToJson for EpochRecord {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("epoch", &self.epoch)
                .field("train_loss", &self.train_loss)
                .field("eval", &self.eval);
        });
    }
}

impl EpochRecord {
    fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            epoch: v.get("epoch")?.as_usize()?,
            train_loss: v.get("train_loss")?.as_f64()?,
            eval: EvalOutput::from_json(v.get("eval")?)?,
        })
    }
}

/// Metric history across a training run (one record per *evaluated*
/// epoch; with the default cadence of 1 that is every epoch).
#[derive(Clone, Debug, Default)]
pub struct History {
    /// One record per evaluated epoch.
    pub epochs: Vec<EpochRecord>,
}

impl ToJson for History {
    fn write_json(&self, out: &mut String) {
        self.epochs.write_json(out);
    }
}

impl History {
    /// The best NDCG reached and the epoch it occurred in. NaN entries
    /// (diverged runs) rank lowest instead of aborting, so diagnostics
    /// survive divergence; the result is NaN only when *every* epoch
    /// diverged.
    pub fn best_ndcg(&self) -> Option<(usize, f64)> {
        self.epochs
            .iter()
            .map(|e| (e.epoch, e.eval.overall.ndcg))
            .max_by(|a, b| {
                // total_cmp ranks NaN above +inf; push it below -inf
                // instead so a diverged epoch never wins.
                match (a.1.is_nan(), b.1.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => a.1.total_cmp(&b.1),
                }
            })
    }

    /// The final evaluated epoch's evaluation.
    pub fn final_eval(&self) -> Option<&EvalOutput> {
        self.epochs.last().map(|e| &e.eval)
    }

    /// Restores a checkpointed history.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let epochs = v
            .as_arr()?
            .iter()
            .map(EpochRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { epochs })
    }
}

#[derive(Clone, Copy, Debug)]
struct EarlyStopConfig {
    patience: usize,
    min_delta: f64,
}

type RoundHook = Box<dyn FnMut(&RoundReport)>;
type EpochHook = Box<dyn FnMut(&EpochReport)>;

/// Fluent constructor for a [`Session`].
///
/// ```
/// use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
/// use hf_dataset::{SplitDataset, SyntheticConfig};
/// use hf_models::ModelKind;
///
/// let data = SyntheticConfig::tiny().generate(7);
/// let split = SplitDataset::paper_split(&data, 7);
/// let cfg = TrainConfig::test_default(ModelKind::Ncf);
/// let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
///     .eval_every(1)
///     .build()
///     .expect("valid configuration");
/// let history = session.run();
/// assert_eq!(history.epochs.len(), session.cfg().epochs);
/// ```
pub struct SessionBuilder {
    source: Source,
    split: SplitDataset,
    eval_every: usize,
    early_stop: Option<EarlyStopConfig>,
    threads_override: Option<usize>,
    round_hooks: Vec<RoundHook>,
    epoch_hooks: Vec<EpochHook>,
}

/// Where the session's configuration and state come from.
enum Source {
    /// Fresh run: caller-supplied configuration, state initialised from
    /// the seed.
    Fresh {
        cfg: TrainConfig,
        strategy: Strategy,
    },
    /// Resume: the raw checkpoint text, parsed exactly once in
    /// [`SessionBuilder::build`] (the parsed tree borrows its number
    /// tokens from this text, so the builder keeps it owned and the
    /// whole restore costs a single parse).
    Checkpoint { json: String },
}

impl SessionBuilder {
    /// Starts a builder for a fresh run.
    pub fn new(cfg: TrainConfig, strategy: Strategy, split: SplitDataset) -> Self {
        Self {
            source: Source::Fresh { cfg, strategy },
            split,
            eval_every: 1,
            early_stop: None,
            threads_override: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        }
    }

    /// Starts a builder that will *resume* from a [`Session::checkpoint`]
    /// document. Configuration and strategy come from the checkpoint; the
    /// caller supplies the (identically generated) split dataset plus any
    /// observers, cadence, or early-stopping settings, then calls
    /// [`SessionBuilder::build`]. The document is parsed (and any
    /// malformed-checkpoint error surfaces) at build time, so a restore
    /// pays exactly one parse.
    pub fn from_checkpoint(json: &str, split: SplitDataset) -> Result<Self, SessionError> {
        Ok(Self::from_checkpoint_owned(json.to_string(), split))
    }

    /// [`SessionBuilder::from_checkpoint`] reading the document from a
    /// file.
    pub fn from_checkpoint_file(
        path: impl AsRef<std::path::Path>,
        split: SplitDataset,
    ) -> Result<Self, SessionError> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| SessionError::Checkpoint(format!("cannot read checkpoint: {e}")))?;
        Ok(Self::from_checkpoint_owned(json, split))
    }

    fn from_checkpoint_owned(json: String, split: SplitDataset) -> Self {
        Self {
            source: Source::Checkpoint { json },
            split,
            eval_every: 1,
            early_stop: None,
            threads_override: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        }
    }

    /// Evaluate every `n` epochs (default 1). The final configured epoch
    /// is always evaluated so a completed run has a final eval; `0`
    /// disables automatic evaluation entirely (callers can still call
    /// [`Session::evaluate`]).
    pub fn eval_every(mut self, n: usize) -> Self {
        self.eval_every = n;
        self
    }

    /// Stop after `patience` consecutive evaluations without an NDCG
    /// improvement greater than `min_delta` over the best seen so far.
    /// Requires `patience >= 1` (checked at build).
    pub fn early_stopping(mut self, patience: usize, min_delta: f64) -> Self {
        self.early_stop = Some(EarlyStopConfig {
            patience,
            min_delta,
        });
        self
    }

    /// Registers a per-round observer, called after every completed round.
    pub fn on_round(mut self, hook: impl FnMut(&RoundReport) + 'static) -> Self {
        self.round_hooks.push(Box::new(hook));
        self
    }

    /// Registers a per-epoch observer, called at every epoch boundary.
    pub fn on_epoch(mut self, hook: impl FnMut(&EpochReport) + 'static) -> Self {
        self.epoch_hooks.push(Box::new(hook));
        self
    }

    /// Overrides the worker-thread count (results are bit-identical for
    /// every thread count, so this is always safe — including when
    /// resuming a checkpoint taken under a different setting).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads_override = Some(threads);
        self
    }

    /// Validates the configuration and produces a [`Session`] — fresh, or
    /// restored when the builder came from a checkpoint.
    pub fn build(self) -> Result<Session, SessionError> {
        if self.split.num_users() == 0 {
            return Err(SessionError::EmptyPopulation);
        }
        if let Some(es) = &self.early_stop {
            if es.patience == 0 {
                return Err(SessionError::ZeroPatience);
            }
        }
        let Self {
            source,
            split,
            eval_every,
            early_stop,
            threads_override,
            round_hooks,
            epoch_hooks,
        } = self;

        let mut session = match source {
            Source::Fresh { mut cfg, strategy } => {
                if let Some(threads) = threads_override {
                    cfg.threads = threads;
                }
                cfg.validate()?;
                let model_groups = strategy.assign_tiers(&split, cfg.ratio);
                let data_groups = ClientGroups::divide(&split, cfg.ratio);
                let server = ServerState::new(split.num_items(), &cfg, strategy);
                let users = (0..split.num_users())
                    .map(|u| {
                        let tier = model_groups.tier(u);
                        let standalone_theta = matches!(strategy, Strategy::Standalone)
                            .then(|| server.theta(tier).clone());
                        UserState::init(u, cfg.dims.dim(tier), &cfg, standalone_theta)
                    })
                    .collect();
                let scheduler =
                    RoundScheduler::new(split.num_users(), cfg.clients_per_round, cfg.seed);
                let faults = if cfg.drop_prob > 0.0 {
                    FaultInjector::new(cfg.seed, cfg.drop_prob)
                } else {
                    FaultInjector::disabled()
                };
                Session {
                    cfg,
                    strategy,
                    split,
                    server,
                    users,
                    model_groups,
                    data_groups,
                    scheduler,
                    faults,
                    ledger: CommLedger::default(),
                    round_counter: 0,
                    history: History::default(),
                    epoch: 0,
                    in_epoch: false,
                    pending: VecDeque::new(),
                    rounds_in_epoch: 0,
                    round_in_epoch: 0,
                    epoch_loss_sum: 0.0,
                    epoch_sample_sum: 0,
                    finished: None,
                    stop_requested: false,
                    best_ndcg: None,
                    evals_since_improvement: 0,
                    eval_every: 1,
                    early_stop: None,
                    round_hooks: Vec::new(),
                    epoch_hooks: Vec::new(),
                }
            }
            Source::Checkpoint { json } => {
                // The one and only parse of the checkpoint text; the tree
                // borrows its number tokens from `json`.
                let doc = parse_json(&json)?;
                let format = doc.get("format")?.as_str()?;
                if format != CHECKPOINT_FORMAT {
                    return Err(SessionError::Checkpoint(format!(
                        "unknown format `{format}`"
                    )));
                }
                let version = doc.get("version")?.as_u64()?;
                if version != CHECKPOINT_VERSION {
                    return Err(SessionError::Checkpoint(format!(
                        "unsupported version {version} (this build reads {CHECKPOINT_VERSION})"
                    )));
                }
                let mut cfg = TrainConfig::from_json(doc.get("cfg")?)?;
                let strategy = Strategy::from_json(doc.get("strategy")?)?;
                if let Some(threads) = threads_override {
                    cfg.threads = threads;
                }
                cfg.validate()?;
                let model_groups = strategy.assign_tiers(&split, cfg.ratio);
                let data_groups = ClientGroups::divide(&split, cfg.ratio);
                Session::restore_parts(&doc, cfg, strategy, split, model_groups, data_groups)?
            }
        };
        session.eval_every = eval_every;
        session.early_stop = early_stop;
        session.round_hooks = round_hooks;
        session.epoch_hooks = epoch_hooks;
        Ok(session)
    }
}

/// A resumable federated training run.
///
/// Construct via [`SessionBuilder`]; drive it with [`Session::step`] /
/// [`Session::events`] for event-by-event control, [`Session::run_epoch`]
/// for epoch-at-a-time control, or [`Session::run`] to completion.
pub struct Session {
    cfg: TrainConfig,
    strategy: Strategy,
    split: SplitDataset,
    server: ServerState,
    users: Vec<UserState>,
    /// Tier each client's *model* has (strategy-dependent).
    model_groups: ClientGroups,
    /// Tier each client's *data volume* implies (always the ratio
    /// division; drives Fig. 6 reporting and exclusive filtering).
    data_groups: ClientGroups,
    scheduler: RoundScheduler,
    faults: FaultInjector,
    ledger: CommLedger,
    round_counter: u64,
    history: History,
    // --- stepper state (checkpointed) ---
    /// 1-based epoch currently in progress (0 before the first step).
    epoch: usize,
    in_epoch: bool,
    pending: VecDeque<Vec<usize>>,
    rounds_in_epoch: usize,
    round_in_epoch: usize,
    epoch_loss_sum: f64,
    epoch_sample_sum: usize,
    finished: Option<StopReason>,
    stop_requested: bool,
    best_ndcg: Option<f64>,
    evals_since_improvement: usize,
    // --- observers (builder-side; not checkpointed) ---
    eval_every: usize,
    early_stop: Option<EarlyStopConfig>,
    round_hooks: Vec<RoundHook>,
    epoch_hooks: Vec<EpochHook>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hooks are opaque closures; summarise the run state instead.
        f.debug_struct("Session")
            .field("strategy", &self.strategy.name())
            .field("epoch", &self.epoch)
            .field("round_counter", &self.round_counter)
            .field("in_epoch", &self.in_epoch)
            .field("finished", &self.finished)
            .field("users", &self.users.len())
            .field("history_epochs", &self.history.epochs.len())
            .finish_non_exhaustive()
    }
}

impl Session {
    // -- accessors ----------------------------------------------------------

    /// The active configuration.
    pub fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Server state (public parameters).
    pub fn server(&self) -> &ServerState {
        &self.server
    }

    /// The split dataset this run trains on.
    pub fn split(&self) -> &SplitDataset {
        &self.split
    }

    /// Every client's private state.
    pub fn users(&self) -> &[UserState] {
        &self.users
    }

    /// One client's private state (user embedding and, in standalone
    /// mode, its local model) — the serving path reads this.
    pub fn user_state(&self, user: usize) -> &UserState {
        &self.users[user]
    }

    /// The model-tier assignment.
    pub fn model_groups(&self) -> &ClientGroups {
        &self.model_groups
    }

    /// The data-size division (Fig. 6 buckets).
    pub fn data_groups(&self) -> &ClientGroups {
        &self.data_groups
    }

    /// Communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// History of evaluated epochs.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Global rounds executed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round_counter
    }

    /// Epochs fully completed so far.
    pub fn epochs_completed(&self) -> usize {
        if self.in_epoch {
            self.epoch.saturating_sub(1)
        } else {
            self.epoch
        }
    }

    /// Why the session stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.finished
    }

    /// `true` once the event stream is exhausted.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The last evaluation recorded in the history, if any.
    pub fn final_eval(&self) -> Option<&EvalOutput> {
        self.history.final_eval()
    }

    // -- driving ------------------------------------------------------------

    /// Executes the next unit of work and reports it: the next round, or
    /// — when an epoch's cohorts are exhausted — the epoch boundary
    /// (evaluation per cadence, history append, early-stop bookkeeping).
    /// Returns `None` once the session has finished.
    pub fn step(&mut self) -> Option<SessionEvent> {
        if self.finished.is_some() {
            return None;
        }
        if !self.in_epoch {
            self.start_epoch();
        }
        if let Some(cohort) = self.pending.pop_front() {
            self.round_counter += 1;
            self.round_in_epoch += 1;
            let (report, loss_sum) = self.run_round(&cohort);
            self.epoch_loss_sum += loss_sum;
            self.epoch_sample_sum += report.samples;
            for hook in &mut self.round_hooks {
                hook(&report);
            }
            return Some(SessionEvent::Round(report));
        }
        Some(SessionEvent::Epoch(self.finish_epoch()))
    }

    /// Iterator view over [`Session::step`] — `for event in session.events()`.
    pub fn events(&mut self) -> Events<'_> {
        Events { session: self }
    }

    /// Drives the session to completion (configured epochs, early stop,
    /// or a requested stop) and returns the accumulated history.
    pub fn run(&mut self) -> &History {
        while self.step().is_some() {}
        &self.history
    }

    /// Runs exactly one epoch and returns its mean training loss.
    ///
    /// Manual epoch driving deliberately ignores the `cfg.epochs` horizon
    /// (and any previous stop): each call forces one more full epoch, so
    /// exploratory callers can keep training past the configured end.
    pub fn run_epoch(&mut self) -> f64 {
        self.finished = None;
        loop {
            match self.step() {
                Some(SessionEvent::Epoch(report)) => return report.train_loss,
                Some(SessionEvent::Round(_)) => {}
                // `finished` was just cleared and step() only yields None
                // when it is set; the epoch report above returns first.
                None => unreachable!("step() must produce an epoch report"),
            }
        }
    }

    /// Asks the session to stop at the next epoch boundary. The stepper
    /// then reports [`StopReason::Requested`] and yields `None`.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Changes the evaluation cadence mid-run (see
    /// [`SessionBuilder::eval_every`]). Lets long runs cheapen
    /// intermediate epochs once the curve is understood.
    pub fn set_eval_every(&mut self, n: usize) {
        self.eval_every = n;
    }

    /// Evaluates the current model state (does not advance the run).
    pub fn evaluate(&self) -> EvalOutput {
        evaluate(
            &self.cfg,
            self.strategy,
            &self.split,
            &self.server,
            &self.users,
            &self.model_groups,
            &self.data_groups,
        )
    }

    // -- internals ----------------------------------------------------------

    fn start_epoch(&mut self) {
        self.epoch += 1;
        let rounds = self.scheduler.next_epoch();
        self.rounds_in_epoch = rounds.len();
        self.round_in_epoch = 0;
        self.pending = rounds.into();
        self.epoch_loss_sum = 0.0;
        self.epoch_sample_sum = 0;
        self.in_epoch = true;
    }

    fn should_eval(&self) -> bool {
        if self.eval_every == 0 {
            return false;
        }
        // The final *configured* epoch always evaluates; epochs driven
        // past the horizon via run_epoch follow the cadence alone.
        self.epoch % self.eval_every == 0 || self.epoch == self.cfg.epochs
    }

    fn finish_epoch(&mut self) -> EpochReport {
        let train_loss = if self.epoch_sample_sum == 0 {
            0.0
        } else {
            self.epoch_loss_sum / self.epoch_sample_sum as f64
        };
        let eval = self.should_eval().then(|| self.evaluate());
        if let Some(e) = &eval {
            self.history.epochs.push(EpochRecord {
                epoch: self.epoch,
                train_loss,
                eval: e.clone(),
            });
            self.note_eval(e.overall.ndcg);
        }
        self.in_epoch = false;

        let plateaued = self
            .early_stop
            .is_some_and(|es| eval.is_some() && self.evals_since_improvement >= es.patience);
        if self.stop_requested {
            self.finished = Some(StopReason::Requested { epoch: self.epoch });
        } else if plateaued {
            self.finished = Some(StopReason::EarlyStopped { epoch: self.epoch });
        } else if self.epoch >= self.cfg.epochs {
            self.finished = Some(StopReason::Completed);
        }

        let report = EpochReport {
            epoch: self.epoch,
            train_loss,
            eval,
        };
        for hook in &mut self.epoch_hooks {
            hook(&report);
        }
        report
    }

    fn note_eval(&mut self, ndcg: f64) {
        let min_delta = self.early_stop.map(|es| es.min_delta).unwrap_or(0.0);
        // A NaN eval (diverged run) never counts as an improvement, and a
        // NaN never becomes the best — otherwise `ndcg > NaN + δ` is false
        // forever and one transient divergence would poison the plateau
        // detector (and `Some(NaN)` would round-trip through a checkpoint
        // as `None`, breaking resume bit-identity of the early-stop state).
        let improved = !ndcg.is_nan()
            && match self.best_ndcg {
                None => true,
                Some(best) => best.is_nan() || ndcg > best + min_delta,
            };
        if improved {
            self.best_ndcg = Some(ndcg);
            self.evals_since_improvement = 0;
        } else {
            self.evals_since_improvement += 1;
        }
    }

    /// Executes one round over the given client cohort, returning the
    /// report plus the raw loss sum (kept separate so the epoch mean
    /// accumulates exactly the per-sample sums, in round order).
    fn run_round(&mut self, cohort: &[usize]) -> (RoundReport, f64) {
        let udl = self.strategy.ablation().udl;
        // Per-tier download bundles, cloned once per round.
        let tier_thetas: [Vec<Ffn>; 3] = [
            self.server.thetas_for(Tier::Small, udl),
            self.server.thetas_for(Tier::Medium, udl),
            self.server.thetas_for(Tier::Large, udl),
        ];
        let tier_tags: [Vec<Tier>; 3] = [
            theta_tiers(Tier::Small, udl),
            theta_tiers(Tier::Medium, udl),
            theta_tiers(Tier::Large, udl),
        ];

        let cfg = &self.cfg;
        let strategy = self.strategy;
        let split = &self.split;
        let server = &self.server;
        let users = &self.users;
        let model_groups = &self.model_groups;
        let round_key = self.round_counter;

        let outcomes: Vec<ClientOutcome> = parallel_map(cohort, cfg.threads, |&uid| {
            let tier = model_groups.tier(uid);
            let ctx = ClientCtx {
                cfg,
                strategy,
                split,
                user_id: uid,
                model_tier: tier,
                table: server.table(tier),
                thetas: &tier_thetas[tier.index()],
                theta_tiers: &tier_tags[tier.index()],
                round_key,
            };
            train_client(&ctx, &users[uid])
        });

        let mut accepted: Vec<(Tier, ClientUpdate)> = Vec::new();
        let mut loss_sum = 0.0;
        let mut sample_sum = 0usize;
        let mut round_download = 0u64;
        let mut round_upload = 0u64;
        for (&uid, outcome) in cohort.iter().zip(outcomes) {
            let model_tier = self.model_groups.tier(uid);
            let data_tier = self.data_groups.tier(uid);
            // Download accounting: tier table + every downloaded predictor.
            let theta_sizes: Vec<usize> = tier_thetas[model_tier.index()]
                .iter()
                .map(Ffn::num_params)
                .collect();
            let download = RoundCost::dense(
                self.split.num_items(),
                self.cfg.dims.dim(model_tier),
                &theta_sizes,
            );
            self.ledger.record_download(download.bytes());
            round_download += download.bytes() as u64;

            loss_sum += outcome.loss;
            sample_sum += outcome.samples;
            self.users[uid] = outcome.state;

            if self.strategy.accepts_update(data_tier)
                && !self.faults.drops(self.round_counter, uid)
                && !(outcome.update.items.is_empty() && outcome.update.thetas.is_empty())
            {
                let bytes = outcome.update.encoded_len();
                self.ledger.record_upload(bytes);
                round_upload += bytes as u64;
                accepted.push((model_tier, outcome.update));
            }
        }

        let accepted_count = accepted.len();
        self.server.apply_round(&accepted);
        if self.strategy.ablation().reskd {
            self.server.distill(&self.cfg.kd, self.cfg.threads);
        }
        let report = RoundReport {
            round: self.round_counter,
            epoch: self.epoch,
            round_in_epoch: self.round_in_epoch,
            rounds_in_epoch: self.rounds_in_epoch,
            cohort: cohort.len(),
            loss: if sample_sum == 0 {
                0.0
            } else {
                loss_sum / sample_sum as f64
            },
            samples: sample_sum,
            accepted: accepted_count,
            download_bytes: round_download,
            upload_bytes: round_upload,
        };
        (report, loss_sum)
    }

    // -- checkpointing ------------------------------------------------------

    /// Serialises the session's complete mutable state as a versioned
    /// JSON document. Restoring it (on an identically generated split)
    /// resumes the run bit-identically — even mid-epoch, and regardless
    /// of the thread count on either side.
    pub fn checkpoint(&self) -> String {
        struct Pending<'a>(&'a VecDeque<Vec<usize>>);
        impl ToJson for Pending<'_> {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                for (i, cohort) in self.0.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    cohort.write_json(out);
                }
                out.push(']');
            }
        }
        struct Server<'a>(&'a ServerState);
        impl ToJson for Server<'_> {
            fn write_json(&self, out: &mut String) {
                self.0.snapshot_json(out);
            }
        }
        let mut out = String::new();
        obj(&mut out, |o| {
            o.field("format", &CHECKPOINT_FORMAT)
                .field("version", &CHECKPOINT_VERSION)
                .field("cfg", &self.cfg)
                .field("strategy", &self.strategy)
                .field("num_users", &self.split.num_users())
                .field("num_items", &self.split.num_items())
                .field("round_counter", &self.round_counter)
                .field("epoch", &self.epoch)
                .field("in_epoch", &self.in_epoch)
                .field("pending", &Pending(&self.pending))
                .field("rounds_in_epoch", &self.rounds_in_epoch)
                .field("round_in_epoch", &self.round_in_epoch)
                .field("epoch_loss_sum", &self.epoch_loss_sum)
                .field("epoch_sample_sum", &self.epoch_sample_sum)
                .field("finished", &self.finished)
                .field("stop_requested", &self.stop_requested)
                .field("best_ndcg", &self.best_ndcg)
                .field("evals_since_improvement", &self.evals_since_improvement)
                .field("ledger", &self.ledger)
                .field("scheduler", &self.scheduler)
                .field("faults", &self.faults)
                .field("server", &Server(&self.server))
                .field("users", &self.users)
                .field("history", &self.history);
        });
        out
    }

    /// Writes [`Session::checkpoint`] to a file, creating parent
    /// directories as needed.
    pub fn write_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut doc = self.checkpoint();
        doc.push('\n');
        std::fs::write(path, doc)
    }

    /// Restores a session from a [`Session::checkpoint`] document with
    /// default observer settings. Use [`SessionBuilder::from_checkpoint`]
    /// to re-attach hooks, cadence, or early stopping.
    pub fn restore(json: &str, split: SplitDataset) -> Result<Self, SessionError> {
        SessionBuilder::from_checkpoint(json, split)?.build()
    }

    fn restore_parts(
        doc: &JsonValue<'_>,
        cfg: TrainConfig,
        strategy: Strategy,
        split: SplitDataset,
        model_groups: ClientGroups,
        data_groups: ClientGroups,
    ) -> Result<Self, SessionError> {
        let expected_users = doc.get("num_users")?.as_usize()?;
        let expected_items = doc.get("num_items")?.as_usize()?;
        if expected_users != split.num_users() || expected_items != split.num_items() {
            return Err(SessionError::DatasetMismatch {
                expected_users,
                actual_users: split.num_users(),
                expected_items,
                actual_items: split.num_items(),
            });
        }

        let server = ServerState::from_json(doc.get("server")?, split.num_items(), &cfg, strategy)?;
        let users_json = doc.get("users")?.as_arr()?;
        if users_json.len() != split.num_users() {
            return Err(SessionError::Checkpoint(format!(
                "{} user states for {} users",
                users_json.len(),
                split.num_users()
            )));
        }
        let mut users = Vec::with_capacity(users_json.len());
        for (u, v) in users_json.iter().enumerate() {
            let state = UserState::from_json(v)?;
            let expected_dim = cfg.dims.dim(model_groups.tier(u));
            if state.emb.len() != expected_dim {
                return Err(SessionError::Checkpoint(format!(
                    "user {u} embedding has width {}, expected {expected_dim}",
                    state.emb.len()
                )));
            }
            users.push(state);
        }

        let mut pending = VecDeque::new();
        for cohort in doc.get("pending")?.as_arr()? {
            let cohort = cohort.as_usize_vec()?;
            if cohort.iter().any(|&u| u >= split.num_users()) {
                return Err(SessionError::Checkpoint(
                    "pending cohort references unknown client".into(),
                ));
            }
            pending.push_back(cohort);
        }

        let finished = match doc.get("finished")? {
            v if v.is_null() => None,
            v => Some(StopReason::from_json(v)?),
        };
        let best = doc.get("best_ndcg")?;
        let best_ndcg = if best.is_null() {
            None
        } else {
            Some(best.as_f64()?)
        };

        Ok(Session {
            scheduler: RoundScheduler::from_json(doc.get("scheduler")?)?,
            faults: FaultInjector::from_json(doc.get("faults")?)?,
            ledger: CommLedger::from_json(doc.get("ledger")?)?,
            round_counter: doc.get("round_counter")?.as_u64()?,
            history: History::from_json(doc.get("history")?)?,
            epoch: doc.get("epoch")?.as_usize()?,
            in_epoch: doc.get("in_epoch")?.as_bool()?,
            pending,
            rounds_in_epoch: doc.get("rounds_in_epoch")?.as_usize()?,
            round_in_epoch: doc.get("round_in_epoch")?.as_usize()?,
            epoch_loss_sum: doc.get("epoch_loss_sum")?.as_f64()?,
            epoch_sample_sum: doc.get("epoch_sample_sum")?.as_usize()?,
            finished,
            stop_requested: doc.get("stop_requested")?.as_bool()?,
            best_ndcg,
            evals_since_improvement: doc.get("evals_since_improvement")?.as_usize()?,
            cfg,
            strategy,
            split,
            server,
            users,
            model_groups,
            data_groups,
            eval_every: 1,
            early_stop: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        })
    }
}

/// Iterator adaptor over [`Session::step`].
pub struct Events<'a> {
    session: &'a mut Session,
}

impl Iterator for Events<'_> {
    type Item = SessionEvent;

    fn next(&mut self) -> Option<SessionEvent> {
        self.session.step()
    }
}

/// Tier tags for the predictors a client of `tier` holds.
pub(crate) fn theta_tiers(tier: Tier, udl: bool) -> Vec<Tier> {
    if udl {
        Tier::ALL[..=tier.index()].to_vec()
    } else {
        vec![tier]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_dataset::SyntheticConfig;
    use hf_models::ModelKind;

    fn tiny_split(seed: u64) -> SplitDataset {
        let data = SyntheticConfig::tiny().generate(seed);
        SplitDataset::paper_split(&data, seed)
    }

    fn session(strategy: Strategy, model: ModelKind) -> Session {
        let cfg = TrainConfig::test_default(model);
        SessionBuilder::new(cfg, strategy, tiny_split(9))
            .build()
            .expect("valid config")
    }

    #[test]
    fn one_epoch_trains_and_returns_finite_loss() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let loss = s.run_epoch();
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
    }

    #[test]
    fn training_improves_over_random_init() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let before = s.evaluate();
        for _ in 0..4 {
            s.run_epoch();
        }
        let after = s.evaluate();
        assert!(
            after.overall.ndcg > before.overall.ndcg,
            "before {:.5}, after {:.5}",
            before.overall.ndcg,
            after.overall.ndcg
        );
    }

    #[test]
    fn run_records_history_for_every_epoch() {
        let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
        s.run();
        assert_eq!(s.history().epochs.len(), s.cfg().epochs);
        assert_eq!(s.stop_reason(), Some(StopReason::Completed));
        assert!(s.history().best_ndcg().is_some());
        assert!(s.final_eval().is_some());
    }

    #[test]
    fn event_stream_has_the_expected_shape() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let epochs = s.cfg().epochs;
        let mut rounds = 0usize;
        let mut epoch_reports = Vec::new();
        let mut last_round_global = 0u64;
        for event in s.events() {
            match event {
                SessionEvent::Round(r) => {
                    rounds += 1;
                    assert!(r.round > last_round_global, "rounds must be monotone");
                    last_round_global = r.round;
                    assert!(r.round_in_epoch >= 1 && r.round_in_epoch <= r.rounds_in_epoch);
                    assert!(r.cohort > 0);
                    assert!(r.download_bytes > 0);
                }
                SessionEvent::Epoch(e) => epoch_reports.push(e),
            }
        }
        assert_eq!(epoch_reports.len(), epochs);
        assert!(rounds >= epochs, "at least one round per epoch");
        assert!(epoch_reports.iter().all(|e| e.eval.is_some()));
        // The stream is exhausted; further steps yield nothing.
        assert!(s.step().is_none());
    }

    #[test]
    fn eval_cadence_skips_intermediate_epochs() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 5;
        let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .eval_every(2)
            .build()
            .unwrap();
        let mut evaluated = Vec::new();
        for event in s.events() {
            if let SessionEvent::Epoch(e) = event {
                if e.eval.is_some() {
                    evaluated.push(e.epoch);
                }
            }
        }
        // Epochs 2 and 4 by cadence, 5 because it is final.
        assert_eq!(evaluated, vec![2, 4, 5]);
        assert_eq!(s.history().epochs.len(), 3);
    }

    #[test]
    fn eval_cadence_zero_never_evaluates() {
        let mut s = SessionBuilder::new(
            TrainConfig::test_default(ModelKind::Ncf),
            Strategy::AllSmall,
            tiny_split(9),
        )
        .eval_every(0)
        .build()
        .unwrap();
        s.run();
        assert!(s.history().epochs.is_empty());
        assert_eq!(s.stop_reason(), Some(StopReason::Completed));
    }

    #[test]
    fn observer_hooks_fire_for_rounds_and_epochs() {
        use std::cell::Cell;
        use std::rc::Rc;
        let rounds = Rc::new(Cell::new(0usize));
        let epochs = Rc::new(Cell::new(0usize));
        let (r2, e2) = (rounds.clone(), epochs.clone());
        let mut s = SessionBuilder::new(
            TrainConfig::test_default(ModelKind::Ncf),
            Strategy::AllSmall,
            tiny_split(9),
        )
        .on_round(move |_| r2.set(r2.get() + 1))
        .on_epoch(move |_| e2.set(e2.get() + 1))
        .build()
        .unwrap();
        s.run();
        assert_eq!(epochs.get(), s.cfg().epochs);
        assert_eq!(rounds.get() as u64, s.rounds_completed());
    }

    #[test]
    fn nan_evals_do_not_poison_the_plateau_detector() {
        let mut s = SessionBuilder::new(
            TrainConfig::test_default(ModelKind::Ncf),
            Strategy::AllSmall,
            tiny_split(9),
        )
        .early_stopping(2, 0.0)
        .build()
        .unwrap();
        // A diverged eval is a non-improvement but never becomes "best".
        s.note_eval(f64::NAN);
        assert_eq!(s.best_ndcg, None);
        assert_eq!(s.evals_since_improvement, 1);
        // Recovery registers as an improvement and resets the counter.
        s.note_eval(0.5);
        assert_eq!(s.best_ndcg, Some(0.5));
        assert_eq!(s.evals_since_improvement, 0);
        // And best_ndcg being NaN-free means the checkpointed early-stop
        // state round-trips without the null/NaN ambiguity.
        s.note_eval(f64::NAN);
        assert_eq!(s.best_ndcg, Some(0.5));
    }

    #[test]
    fn eval_cadence_can_change_mid_run() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 4;
        let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .build()
            .unwrap();
        s.run_epoch();
        assert_eq!(s.history().epochs.len(), 1);
        s.set_eval_every(0);
        s.run_epoch();
        assert_eq!(s.history().epochs.len(), 1, "cadence 0 skips evaluation");
    }

    #[test]
    fn early_stopping_fires_on_a_plateau() {
        // An impossible min_delta means no eval ever "improves" after the
        // first, so the plateau detector must fire after `patience`
        // further evals.
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 50;
        let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .early_stopping(2, f64::MAX)
            .build()
            .unwrap();
        s.run();
        assert_eq!(s.stop_reason(), Some(StopReason::EarlyStopped { epoch: 3 }));
        assert_eq!(s.history().epochs.len(), 3);
    }

    #[test]
    fn request_stop_halts_at_the_epoch_boundary() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 50;
        let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .build()
            .unwrap();
        while let Some(event) = s.step() {
            if let SessionEvent::Epoch(e) = event {
                if e.epoch == 2 {
                    s.request_stop();
                }
            }
        }
        assert_eq!(s.stop_reason(), Some(StopReason::Requested { epoch: 3 }));
    }

    #[test]
    fn builder_rejects_invalid_configs_without_panicking() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.local_lr = f32::NAN;
        let err = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .build()
            .expect_err("NaN learning rate must be rejected");
        assert!(
            matches!(err, SessionError::Config(ref c) if c.field == "local_lr"),
            "{err}"
        );

        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.drop_prob = 1.5;
        assert!(SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .build()
            .is_err());

        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let err = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .early_stopping(0, 0.0)
            .build()
            .expect_err("zero patience");
        assert!(matches!(err, SessionError::ZeroPatience));
    }

    #[test]
    fn eq10_holds_through_training_without_reskd() {
        let mut s = session(Strategy::HeteFedRec(Ablation::NO_RESKD), ModelKind::Ncf);
        s.run_epoch();
        s.run_epoch();
        assert!(
            s.server().eq10_violation() < 1e-4,
            "violation {}",
            s.server().eq10_violation()
        );
    }

    #[test]
    fn standalone_never_changes_server_tables() {
        let mut s = session(Strategy::Standalone, ModelKind::Ncf);
        let before = s.server().table(Tier::Small).clone();
        s.run_epoch();
        assert_eq!(*s.server().table(Tier::Small), before);
        // But private state advanced.
        assert!(s.users().iter().any(|u| u
            .standalone
            .as_ref()
            .map(|s| !s.rows.is_empty())
            .unwrap_or(false)));
    }

    #[test]
    fn ledger_accumulates_traffic() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        s.run_epoch();
        let ledger = s.ledger();
        assert!(ledger.downloads as usize >= s.split().num_users());
        assert!(ledger.uploads > 0);
        assert!(ledger.upload_bytes > 0);
    }

    #[test]
    fn round_reports_account_for_the_whole_ledger() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let mut up = 0u64;
        let mut down = 0u64;
        let mut accepted = 0u64;
        for event in s.events() {
            if let SessionEvent::Round(r) = event {
                up += r.upload_bytes;
                down += r.download_bytes;
                accepted += r.accepted as u64;
            }
        }
        assert_eq!(up, s.ledger().upload_bytes);
        assert_eq!(down, s.ledger().download_bytes);
        assert_eq!(accepted, s.ledger().uploads);
    }

    #[test]
    fn exclusive_strategy_filters_small_data_clients() {
        let mut s = session(Strategy::AllLargeExclusive, ModelKind::Ncf);
        s.run_epoch();
        // Uploads recorded only for Um ∪ Ul clients.
        let expected = s.data_groups().sizes()[1] + s.data_groups().sizes()[2];
        assert_eq!(s.ledger().uploads as usize, expected);
    }

    #[test]
    fn fault_injection_drops_roughly_the_configured_fraction() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.drop_prob = 0.5;
        let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
            .build()
            .unwrap();
        s.run_epoch();
        let uploads = s.ledger().uploads as f64;
        let population = s.split().num_users() as f64;
        let rate = uploads / population;
        assert!((0.2..0.8).contains(&rate), "upload rate {rate}");
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let mut a = SessionBuilder::new(
            cfg.clone(),
            Strategy::HeteFedRec(Ablation::FULL),
            tiny_split(9),
        )
        .threads(1)
        .build()
        .unwrap();
        let mut b = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
            .threads(4)
            .build()
            .unwrap();
        a.run_epoch();
        b.run_epoch();
        let ea = a.evaluate();
        let eb = b.evaluate();
        assert_eq!(ea.overall.ndcg, eb.overall.ndcg);
        assert_eq!(ea.overall.recall, eb.overall.recall);
    }

    #[test]
    fn lightgcn_trains_end_to_end() {
        let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn);
        let loss = s.run_epoch();
        assert!(loss.is_finite() && loss > 0.0);
        let eval = s.evaluate();
        assert!(eval.overall.users > 0);
    }

    #[test]
    fn best_ndcg_survives_nan_entries() {
        let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
        s.run();
        let mut history = s.history().clone();
        let mut poisoned = history.epochs[0].clone();
        poisoned.eval.overall.ndcg = f64::NAN;
        history.epochs.push(poisoned);
        // Must not panic, and must not pick the NaN entry.
        let (_, best) = history.best_ndcg().expect("non-empty");
        assert!(best.is_finite());
    }

    // --- checkpoint / resume ---------------------------------------------

    /// Drives `steps` stepper events, checkpoints, restores on a freshly
    /// generated split, and asserts the resumed session finishes with an
    /// EvalOutput bit-identical to the uninterrupted reference.
    fn checkpoint_roundtrip(strategy: Strategy, steps: usize, restore_threads: usize) {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);

        let mut reference = SessionBuilder::new(cfg.clone(), strategy, tiny_split(9))
            .build()
            .unwrap();
        reference.run();

        let mut interrupted = SessionBuilder::new(cfg, strategy, tiny_split(9))
            .build()
            .unwrap();
        for _ in 0..steps {
            interrupted.step();
        }
        let json = interrupted.checkpoint();
        drop(interrupted);

        let mut resumed = SessionBuilder::from_checkpoint(&json, tiny_split(9))
            .unwrap()
            .threads(restore_threads)
            .build()
            .unwrap();
        resumed.run();

        let a = reference.history().final_eval().expect("reference eval");
        let b = resumed.history().final_eval().expect("resumed eval");
        assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
        assert_eq!(a.overall.recall.to_bits(), b.overall.recall.to_bits());
        assert_eq!(a.overall.mrr.to_bits(), b.overall.mrr.to_bits());
        for (ga, gb) in a.per_group.iter().zip(&b.per_group) {
            assert_eq!(ga.ndcg.to_bits(), gb.ndcg.to_bits());
            assert_eq!(ga.users, gb.users);
        }
        assert_eq!(
            reference.history().epochs.len(),
            resumed.history().epochs.len()
        );
        for (ea, eb) in reference
            .history()
            .epochs
            .iter()
            .zip(&resumed.history().epochs)
        {
            assert_eq!(ea.train_loss.to_bits(), eb.train_loss.to_bits());
        }
        assert_eq!(
            reference.ledger().upload_bytes,
            resumed.ledger().upload_bytes
        );
        assert_eq!(reference.rounds_completed(), resumed.rounds_completed());
        // Server parameters themselves must agree bit-for-bit.
        for tier in Tier::ALL {
            assert_eq!(
                reference.server().table(tier).as_slice(),
                resumed.server().table(tier).as_slice()
            );
        }
    }

    #[test]
    fn mid_epoch_checkpoint_resumes_bit_identically() {
        // 2 steps: one full round plus part of the first epoch — lands
        // mid-epoch, exercising the pending-cohort queue.
        checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::FULL), 2, 1);
    }

    #[test]
    fn epoch_boundary_checkpoint_resumes_bit_identically() {
        // Enough steps to cross the first epoch boundary (the tiny split
        // schedules a handful of rounds per epoch, then the epoch event).
        checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::NO_RESKD), 6, 1);
    }

    #[test]
    fn checkpoint_resume_is_thread_invariant() {
        checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::FULL), 3, 4);
    }

    #[test]
    fn standalone_state_checkpoints() {
        checkpoint_roundtrip(Strategy::Standalone, 2, 1);
    }

    #[test]
    fn adam_server_state_checkpoints() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.server_opt = crate::config::ServerOpt::Adam;
        cfg.server_lr = 0.01;
        let mut reference = SessionBuilder::new(
            cfg.clone(),
            Strategy::HeteFedRec(Ablation::FULL),
            tiny_split(9),
        )
        .build()
        .unwrap();
        reference.run();
        let mut interrupted =
            SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
                .build()
                .unwrap();
        interrupted.step();
        interrupted.step();
        let mut resumed = Session::restore(&interrupted.checkpoint(), tiny_split(9)).unwrap();
        resumed.run();
        assert_eq!(
            reference.final_eval().unwrap().overall.ndcg.to_bits(),
            resumed.final_eval().unwrap().overall.ndcg.to_bits()
        );
    }

    #[test]
    fn finished_sessions_checkpoint_and_stay_finished() {
        let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
        s.run();
        let mut resumed = Session::restore(&s.checkpoint(), tiny_split(9)).unwrap();
        assert_eq!(resumed.stop_reason(), Some(StopReason::Completed));
        assert!(resumed.step().is_none());
        assert_eq!(resumed.history().epochs.len(), s.history().epochs.len());
    }

    #[test]
    fn restore_rejects_mismatched_datasets_and_garbage() {
        let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
        s.step();
        let json = s.checkpoint();
        let tiny = hf_dataset::ImplicitDataset::new(10, vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let other = SplitDataset::paper_split(&tiny, 1);
        let err = Session::restore(&json, other).expect_err("different dataset");
        assert!(matches!(err, SessionError::DatasetMismatch { .. }), "{err}");

        assert!(Session::restore("not json", tiny_split(9)).is_err());
        assert!(Session::restore("{}", tiny_split(9)).is_err());
        let wrong_version = json.replacen("\"version\":1", "\"version\":999", 1);
        assert!(Session::restore(&wrong_version, tiny_split(9)).is_err());
    }
}
