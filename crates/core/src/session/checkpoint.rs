//! Versioned checkpoint serialization and restore.
//!
//! Schema history:
//!
//! * **v1** — the original synchronous document: config, strategy, server
//!   and client state, scheduler RNG, fault injector, ledger, stepper
//!   bookkeeping, history.
//! * **v2** — adds the orchestration fields of the event-driven engine:
//!   the config gains `mode`/`async`/`latency`/`churn`, the fault
//!   injector gains its churn profile, and the document gains `clock`
//!   (synchronous logical time) and `event_scheduler` (the async
//!   engine's clock, in-flight arrival queue, not-yet-dispatched
//!   traversal remainder, and per-client dispatch versions; `null` in
//!   synchronous runs).
//! * **v3** — adds the secure-aggregation state: the config gains
//!   `secagg`, and the document gains a `secagg` object carrying the
//!   key-agreement RNG plus any pipelined group setup (members, public
//!   keys, secrets, and escrowed seed shares for the next synchronous
//!   cohort) so a mid-round resume replays the exact same masks.
//! * **v4** — adds the streaming-ingest state: an `ingest` object with
//!   the baseline population, the number of stream events applied, and
//!   the frozen per-client tier assignments plus division thresholds
//!   (streamed interactions mutate train counts after division, so the
//!   restore path must not recompute tiers from the split).
//!
//! Every addition has a prior-version default (`Sync`, unit latency, no
//! churn, tick 0, no engine, secure aggregation off, no ingest), so old
//! documents still restore — the reader accepts
//! `MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION`. Conversely a run with
//! secure aggregation *off* stamps version 2 and omits the `secagg`
//! field, and one that never ingested omits `ingest` (stamping at most
//! v3), so default-configuration checkpoints stay byte-identical to
//! earlier builds.

use super::reports::{History, StopReason};
use super::{Session, SessionBuilder, SessionError};
use crate::client::UserState;
use crate::config::{Mode, TrainConfig};
use crate::server::ServerState;
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset};
use hf_fedsim::comm::CommLedger;
use hf_fedsim::events::EventScheduler;
use hf_fedsim::faults::FaultInjector;
use hf_fedsim::scheduler::RoundScheduler;
use hf_tensor::ser::{obj, JsonValue, ToJson};
use std::collections::VecDeque;

/// Checkpoint document identifier.
pub(crate) const CHECKPOINT_FORMAT: &str = "hetefedrec.checkpoint";
/// Current checkpoint schema version (the writer stamps this only when
/// the document actually carries v3 state; see [`Session::checkpoint`]).
pub(crate) const CHECKPOINT_VERSION: u64 = 4;
/// Oldest schema version this build still restores.
pub(crate) const MIN_CHECKPOINT_VERSION: u64 = 1;

impl Session {
    /// Serialises the session's complete mutable state as a versioned
    /// JSON document. Restoring it (on an identically generated split)
    /// resumes the run bit-identically — even mid-epoch, in either
    /// orchestration mode, and regardless of the thread count on either
    /// side.
    pub fn checkpoint(&self) -> String {
        struct Pending<'a>(&'a VecDeque<Vec<usize>>);
        impl ToJson for Pending<'_> {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                for (i, cohort) in self.0.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    cohort.write_json(out);
                }
                out.push(']');
            }
        }
        struct Server<'a>(&'a ServerState);
        impl ToJson for Server<'_> {
            fn write_json(&self, out: &mut String) {
                self.0.snapshot_json(out);
            }
        }
        // Stamp the version the document actually needs: v4 state exists
        // only once ingest happened, v3 only with secure aggregation on,
        // so default runs keep writing byte-identical v2 documents.
        let version: u64 = if self.ingested_events > 0 {
            4
        } else if self.secagg.is_some() {
            3
        } else {
            2
        };
        let mut out = String::new();
        obj(&mut out, |o| {
            o.field("format", &CHECKPOINT_FORMAT)
                .field("version", &version)
                .field("cfg", &self.cfg)
                .field("strategy", &self.strategy)
                .field("num_users", &self.split.num_users())
                .field("num_items", &self.split.num_items())
                .field("round_counter", &self.round_counter)
                .field("epoch", &self.epoch)
                .field("in_epoch", &self.in_epoch)
                .field("pending", &Pending(&self.pending))
                .field("rounds_in_epoch", &self.rounds_in_epoch)
                .field("round_in_epoch", &self.round_in_epoch)
                .field("epoch_loss_sum", &self.epoch_loss_sum)
                .field("epoch_sample_sum", &self.epoch_sample_sum)
                .field("finished", &self.finished)
                .field("stop_requested", &self.stop_requested)
                .field("best_ndcg", &self.best_ndcg)
                .field("evals_since_improvement", &self.evals_since_improvement)
                // v2 additions, kept contiguous so a v1 document is
                // exactly this document minus the two fields.
                .field("clock", &self.clock)
                .field("event_scheduler", &self.async_state);
            // v3 addition, present only when the state exists.
            if let Some(secagg) = &self.secagg {
                o.field("secagg", secagg);
            }
            // v4 addition, present only once the stream touched the
            // population: carries the frozen tier assignments so restore
            // never re-divides the mutated split.
            if self.ingested_events > 0 {
                struct Ingest<'a>(&'a Session);
                impl ToJson for Ingest<'_> {
                    fn write_json(&self, out: &mut String) {
                        let s = self.0;
                        obj(out, |o| {
                            o.field("baseline_users", &s.baseline_users)
                                .field("events", &s.ingested_events)
                                .field("model_tiers", &s.model_groups.tier_indices())
                                .field("data_tiers", &s.data_groups.tier_indices())
                                .field(
                                    "model_thresholds",
                                    &[s.model_groups.thresholds.0, s.model_groups.thresholds.1],
                                )
                                .field(
                                    "data_thresholds",
                                    &[s.data_groups.thresholds.0, s.data_groups.thresholds.1],
                                );
                        });
                    }
                }
                o.field("ingest", &Ingest(self));
            }
            o.field("ledger", &self.ledger)
                .field("scheduler", &self.scheduler)
                .field("faults", &self.faults)
                .field("server", &Server(&self.server))
                .field("users", &self.users)
                .field("history", &self.history);
        });
        out
    }

    /// Writes [`Session::checkpoint`] to a file, creating parent
    /// directories as needed.
    pub fn write_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut doc = self.checkpoint();
        doc.push('\n');
        std::fs::write(path, doc)
    }

    /// Restores a session from a [`Session::checkpoint`] document with
    /// default observer settings. Use [`SessionBuilder::from_checkpoint`]
    /// to re-attach hooks, cadence, or early stopping.
    pub fn restore(json: &str, split: SplitDataset) -> Result<Self, SessionError> {
        SessionBuilder::from_checkpoint(json, split)?.build()
    }

    /// Recovers the tier assignments for a restoring session. v4
    /// documents carry them verbatim (frozen at division time, extended
    /// by admissions); earlier documents recompute from the split, which
    /// no stream ever touched.
    pub(super) fn restore_groups(
        doc: &JsonValue<'_>,
        cfg: &TrainConfig,
        strategy: Strategy,
        split: &SplitDataset,
    ) -> Result<(ClientGroups, ClientGroups), SessionError> {
        let Some(ingest) = doc.opt("ingest") else {
            return Ok((
                strategy.assign_tiers(split, cfg.ratio),
                ClientGroups::divide(split, cfg.ratio),
            ));
        };
        let read = |tiers_key: &str, thr_key: &str| -> Result<ClientGroups, SessionError> {
            let raw = ingest.get(tiers_key)?.as_u64_vec()?;
            let mut indices = Vec::with_capacity(raw.len());
            for v in raw {
                // Checked conversion: a raw `as u8` would wrap 256 back
                // to a valid index and mask the corruption.
                if v > 2 {
                    return Err(SessionError::Checkpoint(format!(
                        "tier index {v} out of range in `{tiers_key}`"
                    )));
                }
                indices.push(v as u8);
            }
            let thr = ingest.get(thr_key)?.as_usize_vec()?;
            if thr.len() != 2 {
                return Err(SessionError::Checkpoint(format!(
                    "`{thr_key}` must hold exactly two thresholds, got {}",
                    thr.len()
                )));
            }
            ClientGroups::from_tier_indices(&indices, (thr[0], thr[1]))
                .map_err(SessionError::Checkpoint)
        };
        Ok((
            read("model_tiers", "model_thresholds")?,
            read("data_tiers", "data_thresholds")?,
        ))
    }

    pub(super) fn restore_parts(
        doc: &JsonValue<'_>,
        cfg: TrainConfig,
        strategy: Strategy,
        split: SplitDataset,
        model_groups: ClientGroups,
        data_groups: ClientGroups,
    ) -> Result<Self, SessionError> {
        let expected_users = doc.get("num_users")?.as_usize()?;
        let expected_items = doc.get("num_items")?.as_usize()?;
        if expected_users != split.num_users() || expected_items != split.num_items() {
            return Err(SessionError::DatasetMismatch {
                expected_users,
                actual_users: split.num_users(),
                expected_items,
                actual_items: split.num_items(),
            });
        }

        let server = ServerState::from_json(doc.get("server")?, split.num_items(), &cfg, strategy)?;
        let users_json = doc.get("users")?.as_arr()?;
        if users_json.len() != split.num_users() {
            return Err(SessionError::Checkpoint(format!(
                "{} user states for {} users",
                users_json.len(),
                split.num_users()
            )));
        }
        let mut users = Vec::with_capacity(users_json.len());
        for (u, v) in users_json.iter().enumerate() {
            let state = UserState::from_json(v)?;
            let expected_dim = cfg.dims.dim(model_groups.tier(u));
            if state.emb.len() != expected_dim {
                return Err(SessionError::Checkpoint(format!(
                    "user {u} embedding has width {}, expected {expected_dim}",
                    state.emb.len()
                )));
            }
            users.push(state);
        }

        let mut pending = VecDeque::new();
        for cohort in doc.get("pending")?.as_arr()? {
            let cohort = cohort.as_usize_vec()?;
            if cohort.iter().any(|&u| u >= split.num_users()) {
                return Err(SessionError::Checkpoint(
                    "pending cohort references unknown client".into(),
                ));
            }
            pending.push_back(cohort);
        }

        let finished = match doc.get("finished")? {
            v if v.is_null() => None,
            v => Some(StopReason::from_json(v)?),
        };
        let best = doc.get("best_ndcg")?;
        let best_ndcg = if best.is_null() {
            None
        } else {
            Some(best.as_f64()?)
        };

        // v2 additions — absent from v1 documents, whose defaults (tick
        // 0, fresh engine) reproduce the pre-event-engine state exactly.
        let clock = match doc.opt("clock") {
            Some(v) => v.as_u64()?,
            None => 0,
        };
        let async_state = if cfg.mode == Mode::Async {
            let mut st = match doc.opt("event_scheduler") {
                Some(v) if !v.is_null() => EventScheduler::from_json(
                    v,
                    split.num_users(),
                    cfg.async_cfg.concurrency,
                    cfg.latency.clone(),
                    cfg.seed,
                )?,
                _ => EventScheduler::new(
                    split.num_users(),
                    cfg.async_cfg.concurrency,
                    cfg.latency.clone(),
                    cfg.seed,
                ),
            };
            // Tier tags are pure functions of the (restored) groups, so
            // they are rebuilt rather than checkpointed.
            st.set_tiers(model_groups.tier_indices());
            Some(st)
        } else {
            None
        };
        // v3 addition — rebuilt fresh when the document predates it (or
        // was written with secure aggregation off and the config was
        // since flipped on by hand).
        let secagg = if cfg.secagg.enabled {
            Some(match doc.opt("secagg") {
                Some(v) if !v.is_null() => {
                    super::secagg::SecAggState::from_json(v, split.num_users())?
                }
                _ => super::secagg::SecAggState::new(&cfg),
            })
        } else {
            None
        };
        // v4 addition — absent means the stream never ran: the whole
        // population is the baseline and resume replays zero events.
        let (baseline_users, ingested_events) = match doc.opt("ingest") {
            Some(v) => (
                v.get("baseline_users")?.as_usize()?,
                v.get("events")?.as_u64()?,
            ),
            None => (split.num_users(), 0),
        };

        Ok(Session {
            scheduler: RoundScheduler::from_json(doc.get("scheduler")?)?,
            faults: FaultInjector::from_json(doc.get("faults")?)?,
            ledger: CommLedger::from_json(doc.get("ledger")?)?,
            round_counter: doc.get("round_counter")?.as_u64()?,
            history: History::from_json(doc.get("history")?)?,
            epoch: doc.get("epoch")?.as_usize()?,
            in_epoch: doc.get("in_epoch")?.as_bool()?,
            pending,
            rounds_in_epoch: doc.get("rounds_in_epoch")?.as_usize()?,
            round_in_epoch: doc.get("round_in_epoch")?.as_usize()?,
            epoch_loss_sum: doc.get("epoch_loss_sum")?.as_f64()?,
            epoch_sample_sum: doc.get("epoch_sample_sum")?.as_usize()?,
            finished,
            stop_requested: doc.get("stop_requested")?.as_bool()?,
            best_ndcg,
            evals_since_improvement: doc.get("evals_since_improvement")?.as_usize()?,
            clock,
            async_state,
            secagg,
            baseline_users,
            ingested_events,
            cfg,
            strategy,
            split,
            server,
            users,
            model_groups,
            data_groups,
            eval_every: 1,
            early_stop: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        })
    }
}
