//! Round execution: the compute core shared by both orchestration modes.
//!
//! [`Session::execute_cohort`] is the single path that trains a set of
//! clients, accounts traffic, filters accepted updates, and aggregates
//! them with per-update weights. The synchronous policy feeds it lockstep
//! cohorts with all-ones weights (bit-identical to the historical
//! unweighted path); the asynchronous policy feeds it event-queue arrival
//! batches with staleness-discounted weights `1/(1+s)^β`.

use super::reports::{AsyncRoundStats, RoundReport};
use super::Session;
use crate::client::{train_client, ClientCtx, ClientOutcome};
use hf_dataset::Tier;
use hf_fedsim::comm::RoundCost;
use hf_fedsim::parallel::parallel_map;
use hf_fedsim::transport::ClientUpdate;
use hf_models::Ffn;
use hf_secagg::PreparedGroup;
use std::collections::HashMap;

impl Session {
    /// Executes one synchronous round over the given lockstep cohort,
    /// returning the report plus the raw loss sum (kept separate so the
    /// epoch mean accumulates exactly the per-sample sums, in round
    /// order). Clients the churn model reports offline at the current
    /// tick sit the round out entirely (no download, no training); the
    /// round then advances the logical clock by the slowest available
    /// client's latency draw.
    pub(super) fn run_round(&mut self, cohort: &[usize]) -> (RoundReport, f64) {
        let clock = self.clock;
        // Secure-aggregation groups commit at setup against the full
        // scheduled cohort; members churn takes offline become dropouts
        // whose masks the survivors recover.
        let groups = self.secagg_groups_for_round(cohort);
        let available: Vec<usize> = cohort
            .iter()
            .copied()
            .filter(|&uid| !self.faults.offline(clock, uid))
            .collect();
        let weights = vec![1.0f32; available.len()];
        let result = self.execute_cohort(&available, &weights, groups);
        // Pipeline the next cohort's key exchange and escrow so the
        // shares exist before that round starts (and are checkpointed).
        self.secagg_prepare_next();
        let duration = available
            .iter()
            .map(|&uid| {
                self.cfg.latency.draw(
                    self.cfg.seed,
                    uid,
                    self.round_counter,
                    self.model_groups.tier(uid).index(),
                )
            })
            .max()
            // An all-offline cohort still ticks, so churn windows advance.
            .unwrap_or(1);
        self.clock += duration;
        result
    }

    /// Executes one asynchronous round: pops the next aggregation buffer
    /// of arrivals (advancing the engine clock), trains them, aggregates
    /// with staleness weights `1/(1+s)^β`, then re-dispatches up to the
    /// concurrency cap. Only called when the engine is not idle, so the
    /// batch is never empty.
    pub(super) fn run_async_round(&mut self) -> (RoundReport, f64) {
        let buffer = self.cfg.async_cfg.buffer;
        let beta = self.cfg.async_cfg.staleness_beta;
        let arrivals = self
            .async_state
            .as_mut()
            .expect("async engine present in async mode")
            .pop_batch(buffer);
        let cohort: Vec<usize> = arrivals.iter().map(|a| a.client).collect();
        // `round_counter - 1` rounds were complete when this round's
        // parameters were current, so an update dispatched then has
        // staleness 0.
        let round = self.round_counter;
        let stalenesses: Vec<u64> = arrivals
            .iter()
            .map(|a| (round - 1).saturating_sub(a.dispatched_round))
            .collect();
        // Adaptive β scales the discount exponent by the batch's mean
        // staleness so long-staleness batches shrink smoothly; the off
        // path keeps the exact fixed-β computation (bit-identical).
        let effective_beta = if self.cfg.async_cfg.adaptive_beta && !stalenesses.is_empty() {
            let mean = stalenesses.iter().sum::<u64>() as f32 / stalenesses.len() as f32;
            beta * (1.0 + mean)
        } else {
            beta
        };
        let weights: Vec<f32> = stalenesses
            .iter()
            .map(|&s| 1.0 / (1.0 + s as f32).powf(effective_beta))
            .collect();

        // Asynchronous groups form at collection time over the arrival
        // batch (clients churned offline never dispatched, so the only
        // dropouts here are injected upload losses).
        let groups = self.secagg_groups_for_batch(&cohort);
        let (mut report, loss_sum) = self.execute_cohort(&cohort, &weights, groups);
        self.async_fill();

        let st = self.async_state.as_ref().expect("async engine");
        let max_staleness = stalenesses.iter().copied().max().unwrap_or(0);
        let mut staleness_hist = vec![0usize; max_staleness as usize + 1];
        for &s in &stalenesses {
            staleness_hist[s as usize] += 1;
        }
        let mean_staleness = if stalenesses.is_empty() {
            0.0
        } else {
            stalenesses.iter().sum::<u64>() as f64 / stalenesses.len() as f64
        };
        report.asynchrony = Some(AsyncRoundStats {
            clock: st.clock(),
            in_flight: st.in_flight(),
            staleness_hist,
            max_staleness,
            mean_staleness,
        });
        (report, loss_sum)
    }

    /// Tops the event engine back up to the concurrency cap, consulting
    /// the churn model at the engine's current tick. Returns the number
    /// of offline clients skipped (they miss the rest of the epoch).
    pub(super) fn async_fill(&mut self) -> usize {
        let faults = &self.faults;
        let round = self.round_counter;
        let st = self
            .async_state
            .as_mut()
            .expect("async engine present in async mode");
        let clock = st.clock();
        st.fill(round, |c| faults.offline(clock, c))
    }

    /// Trains `cohort` in parallel, accounts downloads/uploads, filters
    /// accepted updates, and applies them with the given per-client
    /// aggregation weights (aligned with `cohort`; only the weights of
    /// accepted updates reach the server). All-ones weights reproduce the
    /// unweighted aggregation bit-for-bit.
    ///
    /// With `secagg_groups` present the round aggregates through the
    /// masked ring path instead: eligibility was fixed at group setup,
    /// survivors upload dense quantized payloads, and injected drops
    /// become dropouts whose orphaned masks get recovered from escrow.
    fn execute_cohort(
        &mut self,
        cohort: &[usize],
        weights: &[f32],
        secagg_groups: Option<Vec<PreparedGroup>>,
    ) -> (RoundReport, f64) {
        debug_assert_eq!(cohort.len(), weights.len());
        let udl = self.strategy.ablation().udl;
        // Per-tier download bundles, cloned once per round.
        let tier_thetas: [Vec<Ffn>; 3] = [
            self.server.thetas_for(Tier::Small, udl),
            self.server.thetas_for(Tier::Medium, udl),
            self.server.thetas_for(Tier::Large, udl),
        ];
        let tier_tags: [Vec<Tier>; 3] = [
            theta_tiers(Tier::Small, udl),
            theta_tiers(Tier::Medium, udl),
            theta_tiers(Tier::Large, udl),
        ];

        let cfg = &self.cfg;
        let strategy = self.strategy;
        let split = &self.split;
        let server = &self.server;
        let users = &self.users;
        let model_groups = &self.model_groups;
        let round_key = self.round_counter;

        let outcomes: Vec<ClientOutcome> = parallel_map(cohort, cfg.threads, |&uid| {
            let tier = model_groups.tier(uid);
            let ctx = ClientCtx {
                cfg,
                strategy,
                split,
                user_id: uid,
                model_tier: tier,
                table: server.table(tier),
                thetas: &tier_thetas[tier.index()],
                theta_tiers: &tier_tags[tier.index()],
                round_key,
            };
            train_client(&ctx, &users[uid])
        });

        let masked = secagg_groups.is_some();
        let mut accepted: Vec<(Tier, ClientUpdate)> = Vec::new();
        let mut accepted_weights: Vec<f32> = Vec::new();
        // Masked path: surviving uploads keyed by uid (group membership
        // and eligibility were fixed at setup; a committed member absent
        // from this map is a dropout).
        let mut survivor_uploads: HashMap<u64, (ClientUpdate, f32)> = HashMap::new();
        let mut loss_sum = 0.0;
        let mut sample_sum = 0usize;
        let mut round_download = 0u64;
        let mut round_upload = 0u64;
        for ((&uid, outcome), &weight) in cohort.iter().zip(outcomes).zip(weights) {
            let model_tier = self.model_groups.tier(uid);
            let data_tier = self.data_groups.tier(uid);
            // Download accounting: tier table + every downloaded predictor.
            let theta_sizes: Vec<usize> = tier_thetas[model_tier.index()]
                .iter()
                .map(Ffn::num_params)
                .collect();
            let download = RoundCost::dense(
                self.split.num_items(),
                self.cfg.dims.dim(model_tier),
                &theta_sizes,
            );
            self.ledger.record_download(download.bytes());
            round_download += download.bytes() as u64;

            loss_sum += outcome.loss;
            sample_sum += outcome.samples;
            self.users[uid] = outcome.state;

            if masked {
                if !self.faults.drops(self.round_counter, uid) {
                    survivor_uploads.insert(uid as u64, (outcome.update, weight));
                }
            } else if self.strategy.accepts_update(data_tier)
                && !self.faults.drops(self.round_counter, uid)
                && !(outcome.update.items.is_empty() && outcome.update.thetas.is_empty())
            {
                let bytes = outcome.update.encoded_len();
                self.ledger.record_upload(bytes);
                round_upload += bytes as u64;
                accepted.push((model_tier, outcome.update));
                accepted_weights.push(weight);
            }
        }

        let mut accepted_count = accepted.len();
        let mut secagg_stats = None;
        if let Some(groups) = secagg_groups {
            let (stats, secagg_accepted, masked_bytes) =
                self.secagg_aggregate(&groups, &survivor_uploads);
            accepted_count = secagg_accepted;
            round_upload += masked_bytes;
            secagg_stats = Some(stats);
        } else {
            self.server
                .apply_round_weighted(&accepted, &accepted_weights);
        }
        if self.strategy.ablation().reskd {
            self.server.distill(&self.cfg.kd, self.cfg.threads);
        }
        let report = RoundReport {
            round: self.round_counter,
            epoch: self.epoch,
            round_in_epoch: self.round_in_epoch,
            rounds_in_epoch: self.rounds_in_epoch,
            cohort: cohort.len(),
            loss: if sample_sum == 0 {
                0.0
            } else {
                loss_sum / sample_sum as f64
            },
            samples: sample_sum,
            accepted: accepted_count,
            download_bytes: round_download,
            upload_bytes: round_upload,
            asynchrony: None,
            secagg: secagg_stats,
        };
        (report, loss_sum)
    }
}

/// Tier tags for the predictors a client of `tier` holds.
pub(crate) fn theta_tiers(tier: Tier, udl: bool) -> Vec<Tier> {
    if udl {
        Tier::ALL[..=tier.index()].to_vec()
    } else {
        vec![tier]
    }
}
