//! Session-driven federation API.
//!
//! The original `Trainer::train()` loop was closed: callers could not
//! observe rounds, stop early, change evaluation cadence, or resume an
//! interrupted run. This module exposes the orchestration layer as a
//! resumable stepper, with the round-execution engine, typed reports, and
//! checkpoint schema split into submodules:
//!
//! * [`SessionBuilder`] — fluent construction with up-front configuration
//!   validation that returns [`SessionError`] instead of panicking deep
//!   inside the run.
//! * [`Session`] — the federation loop exposed as a *stepper* of typed
//!   events: every [`Session::step`] (or iteration of
//!   [`Session::events`]) yields a [`RoundReport`] or an [`EpochReport`],
//!   with observer hooks, configurable eval cadence, and built-in early
//!   stopping on an NDCG plateau.
//! * Orchestration modes — [`Mode::Sync`](crate::config::Mode) runs the
//!   paper's lockstep rounds; [`Mode::Async`](crate::config::Mode) runs
//!   the event-driven engine (`engine` submodule): clients are dispatched
//!   up to a concurrency cap, arrive after deterministic per-client
//!   latency draws, and are aggregated in buffered batches weighted
//!   `1/(1+staleness)^β`. Both modes share the same per-epoch traversal
//!   shuffle and the same cohort-execution core, and both are
//!   bit-identical across thread counts and checkpoint/resume.
//! * Checkpoint/resume (`checkpoint` submodule) — [`Session::checkpoint`]
//!   writes a versioned JSON snapshot of *all* mutable state (server
//!   tables and predictors, optimiser moments, every client's private
//!   state, scheduler queue and RNG, fault injector, event engine,
//!   communication ledger, round counter, mid-epoch cohort queue,
//!   history) via `hf_tensor::ser`; restoring it resumes the run
//!   **bit-identically** — a checkpointed-and-resumed run produces
//!   exactly the same `EvalOutput` as an uninterrupted one. v1 (pre
//!   event-engine) documents still restore, as synchronous runs.
//!
//! Observer hooks and eval/early-stop *settings* live on the builder and
//! are not part of a checkpoint (closures cannot be serialised); re-apply
//! them when resuming.

mod checkpoint;
mod engine;
mod reports;
mod secagg;
#[cfg(test)]
mod tests;

pub use reports::{
    AsyncRoundStats, EpochRecord, EpochReport, History, RoundReport, SecAggRoundStats,
    SessionEvent, StopReason,
};

use checkpoint::{CHECKPOINT_FORMAT, CHECKPOINT_VERSION, MIN_CHECKPOINT_VERSION};

use crate::client::UserState;
use crate::config::{ConfigError, Mode, TrainConfig};
use crate::eval::{evaluate, EvalOutput};
use crate::server::ServerState;
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset, Tier};
use hf_fedsim::comm::CommLedger;
use hf_fedsim::events::{EventScheduler, TraversalPolicy};
use hf_fedsim::faults::{ChurnProfile, FaultInjector};
use hf_fedsim::scheduler::RoundScheduler;
use hf_tensor::ser::{parse_json, JsonError};
use std::collections::VecDeque;

/// Why a [`SessionBuilder`] refused to produce a session, or a checkpoint
/// refused to restore.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// A configuration field failed validation.
    Config(ConfigError),
    /// The split dataset has no clients to schedule.
    EmptyPopulation,
    /// An early-stopping patience of zero would stop after the first
    /// evaluation regardless of its value.
    ZeroPatience,
    /// The checkpoint document is malformed, the wrong format/version, or
    /// inconsistent with the configuration it carries.
    Checkpoint(String),
    /// The checkpoint was taken against a differently-shaped dataset.
    DatasetMismatch {
        /// Users recorded in the checkpoint.
        expected_users: usize,
        /// Users in the provided split.
        actual_users: usize,
        /// Items recorded in the checkpoint.
        expected_items: usize,
        /// Items in the provided split.
        actual_items: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "{e}"),
            SessionError::EmptyPopulation => write!(f, "split dataset has no clients"),
            SessionError::ZeroPatience => {
                write!(f, "early-stopping patience must be at least 1")
            }
            SessionError::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
            SessionError::DatasetMismatch {
                expected_users,
                actual_users,
                expected_items,
                actual_items,
            } => write!(
                f,
                "checkpoint was taken on {expected_users} users / {expected_items} items, \
                 but the provided split has {actual_users} users / {actual_items} items"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

impl From<JsonError> for SessionError {
    fn from(e: JsonError) -> Self {
        SessionError::Checkpoint(e.to_string())
    }
}

#[derive(Clone, Copy, Debug)]
struct EarlyStopConfig {
    patience: usize,
    min_delta: f64,
}

type RoundHook = Box<dyn FnMut(&RoundReport)>;
type EpochHook = Box<dyn FnMut(&EpochReport)>;

/// Fluent constructor for a [`Session`].
///
/// ```
/// use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
/// use hf_dataset::{SplitDataset, SyntheticConfig};
/// use hf_models::ModelKind;
///
/// let data = SyntheticConfig::tiny().generate(7);
/// let split = SplitDataset::paper_split(&data, 7);
/// let cfg = TrainConfig::test_default(ModelKind::Ncf);
/// let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
///     .eval_every(1)
///     .build()
///     .expect("valid configuration");
/// let history = session.run();
/// assert_eq!(history.epochs.len(), session.cfg().epochs);
/// ```
pub struct SessionBuilder {
    source: Source,
    split: SplitDataset,
    eval_every: usize,
    early_stop: Option<EarlyStopConfig>,
    threads_override: Option<usize>,
    mode_override: Option<Mode>,
    round_hooks: Vec<RoundHook>,
    epoch_hooks: Vec<EpochHook>,
}

/// Where the session's configuration and state come from.
enum Source {
    /// Fresh run: caller-supplied configuration, state initialised from
    /// the seed.
    Fresh {
        cfg: TrainConfig,
        strategy: Strategy,
    },
    /// Resume: the raw checkpoint text, parsed exactly once in
    /// [`SessionBuilder::build`] (the parsed tree borrows its number
    /// tokens from this text, so the builder keeps it owned and the
    /// whole restore costs a single parse).
    Checkpoint { json: String },
}

impl SessionBuilder {
    /// Starts a builder for a fresh run.
    pub fn new(cfg: TrainConfig, strategy: Strategy, split: SplitDataset) -> Self {
        Self {
            source: Source::Fresh { cfg, strategy },
            split,
            eval_every: 1,
            early_stop: None,
            threads_override: None,
            mode_override: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        }
    }

    /// Starts a builder that will *resume* from a [`Session::checkpoint`]
    /// document. Configuration and strategy come from the checkpoint; the
    /// caller supplies the (identically generated) split dataset plus any
    /// observers, cadence, or early-stopping settings, then calls
    /// [`SessionBuilder::build`]. The document is parsed (and any
    /// malformed-checkpoint error surfaces) at build time, so a restore
    /// pays exactly one parse.
    pub fn from_checkpoint(json: &str, split: SplitDataset) -> Result<Self, SessionError> {
        Ok(Self::from_checkpoint_owned(json.to_string(), split))
    }

    /// [`SessionBuilder::from_checkpoint`] reading the document from a
    /// file.
    pub fn from_checkpoint_file(
        path: impl AsRef<std::path::Path>,
        split: SplitDataset,
    ) -> Result<Self, SessionError> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| SessionError::Checkpoint(format!("cannot read checkpoint: {e}")))?;
        Ok(Self::from_checkpoint_owned(json, split))
    }

    fn from_checkpoint_owned(json: String, split: SplitDataset) -> Self {
        Self {
            source: Source::Checkpoint { json },
            split,
            eval_every: 1,
            early_stop: None,
            threads_override: None,
            mode_override: None,
            round_hooks: Vec::new(),
            epoch_hooks: Vec::new(),
        }
    }

    /// Evaluate every `n` epochs (default 1). The final configured epoch
    /// is always evaluated so a completed run has a final eval; `0`
    /// disables automatic evaluation entirely (callers can still call
    /// [`Session::evaluate`]).
    pub fn eval_every(mut self, n: usize) -> Self {
        self.eval_every = n;
        self
    }

    /// Stop after `patience` consecutive evaluations without an NDCG
    /// improvement greater than `min_delta` over the best seen so far.
    /// Requires `patience >= 1` (checked at build).
    pub fn early_stopping(mut self, patience: usize, min_delta: f64) -> Self {
        self.early_stop = Some(EarlyStopConfig {
            patience,
            min_delta,
        });
        self
    }

    /// Registers a per-round observer, called after every completed round.
    pub fn on_round(mut self, hook: impl FnMut(&RoundReport) + 'static) -> Self {
        self.round_hooks.push(Box::new(hook));
        self
    }

    /// Registers a per-epoch observer, called at every epoch boundary.
    pub fn on_epoch(mut self, hook: impl FnMut(&EpochReport) + 'static) -> Self {
        self.epoch_hooks.push(Box::new(hook));
        self
    }

    /// Overrides the worker-thread count (results are bit-identical for
    /// every thread count, so this is always safe — including when
    /// resuming a checkpoint taken under a different setting).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads_override = Some(threads);
        self
    }

    /// Overrides the orchestration mode from the configuration (or, when
    /// resuming, from the checkpoint). Unlike [`SessionBuilder::threads`]
    /// this changes what the run computes; switching modes on a mid-epoch
    /// checkpoint additionally abandons the interrupted epoch's remaining
    /// work, so prefer epoch-boundary checkpoints when flipping it.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode_override = Some(mode);
        self
    }

    /// Validates the configuration and produces a [`Session`] — fresh, or
    /// restored when the builder came from a checkpoint.
    pub fn build(self) -> Result<Session, SessionError> {
        if self.split.num_users() == 0 {
            return Err(SessionError::EmptyPopulation);
        }
        if let Some(es) = &self.early_stop {
            if es.patience == 0 {
                return Err(SessionError::ZeroPatience);
            }
        }
        let Self {
            source,
            split,
            eval_every,
            early_stop,
            threads_override,
            mode_override,
            round_hooks,
            epoch_hooks,
        } = self;

        let mut session = match source {
            Source::Fresh { mut cfg, strategy } => {
                if let Some(threads) = threads_override {
                    cfg.threads = threads;
                }
                if let Some(mode) = mode_override {
                    cfg.mode = mode;
                }
                cfg.validate()?;
                let model_groups = strategy.assign_tiers(&split, cfg.ratio);
                let data_groups = ClientGroups::divide(&split, cfg.ratio);
                let server = ServerState::new(split.num_items(), &cfg, strategy);
                let users = (0..split.num_users())
                    .map(|u| {
                        let tier = model_groups.tier(u);
                        let standalone_theta = matches!(strategy, Strategy::Standalone)
                            .then(|| server.theta(tier).clone());
                        UserState::init(u, cfg.dims.dim(tier), &cfg, standalone_theta)
                    })
                    .collect();
                let scheduler =
                    RoundScheduler::new(split.num_users(), cfg.clients_per_round, cfg.seed);
                let faults = if cfg.drop_prob > 0.0 || cfg.churn != ChurnProfile::None {
                    FaultInjector::with_churn(cfg.seed, cfg.drop_prob, cfg.churn)
                } else {
                    FaultInjector::disabled()
                };
                let async_state = (cfg.mode == Mode::Async).then(|| {
                    let mut st = EventScheduler::new(
                        split.num_users(),
                        cfg.async_cfg.concurrency,
                        cfg.latency.clone(),
                        cfg.seed,
                    );
                    st.set_tiers(model_groups.tier_indices());
                    st
                });
                let secagg = cfg.secagg.enabled.then(|| secagg::SecAggState::new(&cfg));
                let baseline_users = split.num_users();
                Session {
                    cfg,
                    strategy,
                    split,
                    server,
                    users,
                    model_groups,
                    data_groups,
                    scheduler,
                    faults,
                    ledger: CommLedger::default(),
                    round_counter: 0,
                    history: History::default(),
                    epoch: 0,
                    in_epoch: false,
                    pending: VecDeque::new(),
                    rounds_in_epoch: 0,
                    round_in_epoch: 0,
                    epoch_loss_sum: 0.0,
                    epoch_sample_sum: 0,
                    finished: None,
                    stop_requested: false,
                    best_ndcg: None,
                    evals_since_improvement: 0,
                    clock: 0,
                    async_state,
                    secagg,
                    baseline_users,
                    ingested_events: 0,
                    eval_every: 1,
                    early_stop: None,
                    round_hooks: Vec::new(),
                    epoch_hooks: Vec::new(),
                }
            }
            Source::Checkpoint { json } => {
                // The one and only parse of the checkpoint text; the tree
                // borrows its number tokens from `json`.
                let doc = parse_json(&json)?;
                let format = doc.get("format")?.as_str()?;
                if format != CHECKPOINT_FORMAT {
                    return Err(SessionError::Checkpoint(format!(
                        "unknown format `{format}`"
                    )));
                }
                let version = doc.get("version")?.as_u64()?;
                if !(MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&version) {
                    return Err(SessionError::Checkpoint(format!(
                        "unsupported version {version} (this build reads \
                         {MIN_CHECKPOINT_VERSION}..={CHECKPOINT_VERSION})"
                    )));
                }
                let mut cfg = TrainConfig::from_json(doc.get("cfg")?)?;
                let strategy = Strategy::from_json(doc.get("strategy")?)?;
                if let Some(threads) = threads_override {
                    cfg.threads = threads;
                }
                if let Some(mode) = mode_override {
                    cfg.mode = mode;
                }
                cfg.validate()?;
                // Ingest-bearing (v4) documents carry their frozen tier
                // assignments: streamed interactions changed train counts
                // after division, so recomputing groups from the split
                // would re-tier users and invalidate their embeddings.
                let (model_groups, data_groups) =
                    Session::restore_groups(&doc, &cfg, strategy, &split)?;
                Session::restore_parts(&doc, cfg, strategy, split, model_groups, data_groups)?
            }
        };
        session.eval_every = eval_every;
        session.early_stop = early_stop;
        session.round_hooks = round_hooks;
        session.epoch_hooks = epoch_hooks;
        Ok(session)
    }
}

/// A resumable federated training run.
///
/// Construct via [`SessionBuilder`]; drive it with [`Session::step`] /
/// [`Session::events`] for event-by-event control, [`Session::run_epoch`]
/// for epoch-at-a-time control, or [`Session::run`] to completion.
pub struct Session {
    cfg: TrainConfig,
    strategy: Strategy,
    split: SplitDataset,
    server: ServerState,
    users: Vec<UserState>,
    /// Tier each client's *model* has (strategy-dependent).
    model_groups: ClientGroups,
    /// Tier each client's *data volume* implies (always the ratio
    /// division; drives Fig. 6 reporting and exclusive filtering).
    data_groups: ClientGroups,
    scheduler: RoundScheduler,
    faults: FaultInjector,
    ledger: CommLedger,
    round_counter: u64,
    history: History,
    // --- stepper state (checkpointed) ---
    /// 1-based epoch currently in progress (0 before the first step).
    epoch: usize,
    in_epoch: bool,
    pending: VecDeque<Vec<usize>>,
    rounds_in_epoch: usize,
    round_in_epoch: usize,
    epoch_loss_sum: f64,
    epoch_sample_sum: usize,
    finished: Option<StopReason>,
    stop_requested: bool,
    best_ndcg: Option<f64>,
    evals_since_improvement: usize,
    /// Synchronous-mode logical clock: each round costs the slowest
    /// available client's latency draw. (The async engine keeps its own
    /// clock; [`Session::clock`] reads whichever is active.)
    clock: u64,
    /// The event-driven engine — `Some` exactly when `cfg.mode` is
    /// [`Mode::Async`].
    async_state: Option<EventScheduler>,
    /// Secure-aggregation state (key-agreement RNG plus any pipelined
    /// group setup) — `Some` exactly when `cfg.secagg.enabled`.
    secagg: Option<secagg::SecAggState>,
    /// Population size at construction, before any streamed ingest.
    baseline_users: usize,
    /// Streamed interactions applied via [`Session::ingest`] (duplicates
    /// included). Resume replays exactly this many events from the same
    /// stream before restoring, so the split matches the checkpoint.
    ingested_events: u64,
    // --- observers (builder-side; not checkpointed) ---
    eval_every: usize,
    early_stop: Option<EarlyStopConfig>,
    round_hooks: Vec<RoundHook>,
    epoch_hooks: Vec<EpochHook>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hooks are opaque closures; summarise the run state instead.
        f.debug_struct("Session")
            .field("strategy", &self.strategy.name())
            .field("mode", &self.cfg.mode.tag())
            .field("epoch", &self.epoch)
            .field("round_counter", &self.round_counter)
            .field("clock", &self.clock())
            .field("in_epoch", &self.in_epoch)
            .field("finished", &self.finished)
            .field("users", &self.users.len())
            .field("history_epochs", &self.history.epochs.len())
            .finish_non_exhaustive()
    }
}

impl Session {
    // -- accessors ----------------------------------------------------------

    /// The active configuration.
    pub fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Server state (public parameters).
    pub fn server(&self) -> &ServerState {
        &self.server
    }

    /// The split dataset this run trains on.
    pub fn split(&self) -> &SplitDataset {
        &self.split
    }

    /// Every client's private state.
    pub fn users(&self) -> &[UserState] {
        &self.users
    }

    /// One client's private state (user embedding and, in standalone
    /// mode, its local model) — the serving path reads this.
    pub fn user_state(&self, user: usize) -> &UserState {
        &self.users[user]
    }

    /// The model-tier assignment.
    pub fn model_groups(&self) -> &ClientGroups {
        &self.model_groups
    }

    /// The data-size division (Fig. 6 buckets).
    pub fn data_groups(&self) -> &ClientGroups {
        &self.data_groups
    }

    /// Communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// History of evaluated epochs.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Global rounds executed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round_counter
    }

    /// Simulated wall-clock in logical ticks: how long the run has taken
    /// under the configured latency profile. With the default unit
    /// profile in synchronous mode, one round costs one tick.
    pub fn clock(&self) -> u64 {
        self.async_state
            .as_ref()
            .map_or(self.clock, |st| st.clock())
    }

    /// Epochs fully completed so far.
    pub fn epochs_completed(&self) -> usize {
        if self.in_epoch {
            self.epoch.saturating_sub(1)
        } else {
            self.epoch
        }
    }

    /// Why the session stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.finished
    }

    /// `true` once the event stream is exhausted.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The last evaluation recorded in the history, if any.
    pub fn final_eval(&self) -> Option<&EvalOutput> {
        self.history.final_eval()
    }

    // -- driving ------------------------------------------------------------

    /// Executes the next unit of work and reports it: the next round
    /// (a lockstep cohort in synchronous mode, an arrival batch in
    /// asynchronous mode), or — when the epoch's work is exhausted — the
    /// epoch boundary (evaluation per cadence, history append, early-stop
    /// bookkeeping). Returns `None` once the session has finished.
    pub fn step(&mut self) -> Option<SessionEvent> {
        if self.finished.is_some() {
            return None;
        }
        if !self.in_epoch {
            self.start_epoch();
        }
        let round_ready = match self.cfg.mode {
            Mode::Sync => !self.pending.is_empty(),
            Mode::Async => self.async_state.as_ref().is_some_and(|st| !st.idle()),
        };
        if round_ready {
            self.round_counter += 1;
            self.round_in_epoch += 1;
            let (report, loss_sum) = match self.cfg.mode {
                Mode::Sync => {
                    let cohort = self.pending.pop_front().expect("pending cohort");
                    self.run_round(&cohort)
                }
                Mode::Async => self.run_async_round(),
            };
            self.epoch_loss_sum += loss_sum;
            self.epoch_sample_sum += report.samples;
            for hook in &mut self.round_hooks {
                hook(&report);
            }
            return Some(SessionEvent::Round(report));
        }
        Some(SessionEvent::Epoch(self.finish_epoch()))
    }

    /// Iterator view over [`Session::step`] — `for event in session.events()`.
    pub fn events(&mut self) -> Events<'_> {
        Events { session: self }
    }

    /// Drives the session to completion (configured epochs, early stop,
    /// or a requested stop) and returns the accumulated history.
    pub fn run(&mut self) -> &History {
        while self.step().is_some() {}
        &self.history
    }

    /// Runs exactly one epoch and returns its mean training loss.
    ///
    /// Manual epoch driving deliberately ignores the `cfg.epochs` horizon
    /// (and any previous stop): each call forces one more full epoch, so
    /// exploratory callers can keep training past the configured end.
    pub fn run_epoch(&mut self) -> f64 {
        self.finished = None;
        loop {
            match self.step() {
                Some(SessionEvent::Epoch(report)) => return report.train_loss,
                Some(SessionEvent::Round(_)) => {}
                // `finished` was just cleared and step() only yields None
                // when it is set; the epoch report above returns first.
                None => unreachable!("step() must produce an epoch report"),
            }
        }
    }

    /// Asks the session to stop at the next epoch boundary. The stepper
    /// then reports [`StopReason::Requested`] and yields `None`.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Changes the evaluation cadence mid-run (see
    /// [`SessionBuilder::eval_every`]). Lets long runs cheapen
    /// intermediate epochs once the curve is understood.
    pub fn set_eval_every(&mut self, n: usize) {
        self.eval_every = n;
    }

    /// Evaluates the current model state (does not advance the run).
    pub fn evaluate(&self) -> EvalOutput {
        evaluate(
            &self.cfg,
            self.strategy,
            &self.split,
            &self.server,
            &self.users,
            &self.model_groups,
            &self.data_groups,
        )
    }

    // -- streaming ingest ---------------------------------------------------

    /// Population size at construction, before any streamed admissions.
    pub fn baseline_users(&self) -> usize {
        self.baseline_users
    }

    /// Streamed interactions applied so far (duplicates included).
    pub fn ingested_events(&self) -> u64 {
        self.ingested_events
    }

    /// Applies a batch of streamed `(user, item)` interactions between
    /// rounds: new training positives are appended to existing users'
    /// histories, and `user == split.num_users()` admits a brand-new
    /// client into every subsystem (split, tier groups, private state,
    /// round scheduler, and — in async mode — the event engine).
    ///
    /// Existing users are **never re-tiered**: their embedding width is
    /// fixed at their tier's dimension, so tiers freeze at division time
    /// and new users are placed by the frozen thresholds. Every event —
    /// including duplicates, which leave the split unchanged — counts
    /// toward [`Session::ingested_events`], so resuming a checkpoint
    /// replays exactly that many events from the same stream.
    ///
    /// # Panics
    /// Panics when an item is outside the item universe or a user id
    /// would leave a gap (same contract as `SplitDataset::ingest`).
    pub fn ingest(&mut self, interactions: &[(usize, u32)]) -> IngestReport {
        let mut report = IngestReport::default();
        for &(user, item) in interactions {
            if user == self.split.num_users() {
                self.admit_user(item);
                report.admitted += 1;
            } else if self.split.ingest(user, item) {
                report.appended += 1;
            } else {
                report.duplicates += 1;
            }
            self.ingested_events += 1;
        }
        report
    }

    /// Admits one new client holding `item` as its only interaction.
    fn admit_user(&mut self, item: u32) {
        let user = self.split.num_users();
        self.split.ingest(user, item);
        // Mirror Strategy::assign_tiers for a single-interaction user:
        // uniform strategies pin the tier, everything else places by the
        // frozen division thresholds.
        let model_tier = match self.strategy {
            Strategy::AllSmall => Tier::Small,
            Strategy::AllLarge => Tier::Large,
            _ => self.model_groups.tier_for_count(1),
        };
        let data_tier = self.data_groups.tier_for_count(1);
        self.model_groups.admit(model_tier);
        self.data_groups.admit(data_tier);
        let standalone_theta = matches!(self.strategy, Strategy::Standalone)
            .then(|| self.server.theta(model_tier).clone());
        self.users.push(UserState::init(
            user,
            self.cfg.dims.dim(model_tier),
            &self.cfg,
            standalone_theta,
        ));
        self.scheduler.admit();
        if let Some(st) = self.async_state.as_mut() {
            st.admit(model_tier.index() as u8);
        }
    }

    // -- internals ----------------------------------------------------------

    fn start_epoch(&mut self) {
        self.epoch += 1;
        match self.cfg.mode {
            Mode::Sync => {
                let rounds = self.scheduler.next_epoch();
                self.rounds_in_epoch = rounds.len();
                self.pending = rounds.into();
            }
            Mode::Async => {
                // Same shuffle stream as the synchronous cohorts, fed
                // through the event engine instead of chunked.
                let traversal = self.scheduler.next_traversal();
                let st = self
                    .async_state
                    .as_mut()
                    .expect("async engine present in async mode");
                st.begin_epoch(traversal);
                // Each round absorbs min(buffer, concurrency) arrivals
                // until the tail, so this is the exact round count when
                // no client is skipped and an upper bound otherwise.
                let per_round = self
                    .cfg
                    .async_cfg
                    .buffer
                    .min(self.cfg.async_cfg.concurrency);
                self.rounds_in_epoch = self.split.num_users().div_ceil(per_round);
                self.async_fill();
            }
        }
        self.round_in_epoch = 0;
        self.epoch_loss_sum = 0.0;
        self.epoch_sample_sum = 0;
        self.in_epoch = true;
    }

    fn should_eval(&self) -> bool {
        if self.eval_every == 0 {
            return false;
        }
        // The final *configured* epoch always evaluates; epochs driven
        // past the horizon via run_epoch follow the cadence alone.
        self.epoch % self.eval_every == 0 || self.epoch == self.cfg.epochs
    }

    fn finish_epoch(&mut self) -> EpochReport {
        let train_loss = if self.epoch_sample_sum == 0 {
            0.0
        } else {
            self.epoch_loss_sum / self.epoch_sample_sum as f64
        };
        let eval = self.should_eval().then(|| self.evaluate());
        if let Some(e) = &eval {
            self.history.epochs.push(EpochRecord {
                epoch: self.epoch,
                train_loss,
                eval: e.clone(),
            });
            self.note_eval(e.overall.ndcg);
        }
        self.in_epoch = false;

        let plateaued = self
            .early_stop
            .is_some_and(|es| eval.is_some() && self.evals_since_improvement >= es.patience);
        if self.stop_requested {
            self.finished = Some(StopReason::Requested { epoch: self.epoch });
        } else if plateaued {
            self.finished = Some(StopReason::EarlyStopped { epoch: self.epoch });
        } else if self.epoch >= self.cfg.epochs {
            self.finished = Some(StopReason::Completed);
        }

        let report = EpochReport {
            epoch: self.epoch,
            train_loss,
            eval,
        };
        for hook in &mut self.epoch_hooks {
            hook(&report);
        }
        report
    }

    fn note_eval(&mut self, ndcg: f64) {
        let min_delta = self.early_stop.map(|es| es.min_delta).unwrap_or(0.0);
        // A NaN eval (diverged run) never counts as an improvement, and a
        // NaN never becomes the best — otherwise `ndcg > NaN + δ` is false
        // forever and one transient divergence would poison the plateau
        // detector (and `Some(NaN)` would round-trip through a checkpoint
        // as `None`, breaking resume bit-identity of the early-stop state).
        let improved = !ndcg.is_nan()
            && match self.best_ndcg {
                None => true,
                Some(best) => best.is_nan() || ndcg > best + min_delta,
            };
        if improved {
            self.best_ndcg = Some(ndcg);
            self.evals_since_improvement = 0;
        } else {
            self.evals_since_improvement += 1;
        }
    }
}

/// What a [`Session::ingest`] batch did to the population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Interactions appended to existing users' training histories.
    pub appended: usize,
    /// Brand-new users admitted into the population.
    pub admitted: usize,
    /// Events already present in the split (no-ops).
    pub duplicates: usize,
}

/// Iterator adaptor over [`Session::step`].
pub struct Events<'a> {
    session: &'a mut Session,
}

impl Iterator for Events<'_> {
    type Item = SessionEvent;

    fn next(&mut self) -> Option<SessionEvent> {
        self.session.step()
    }
}
