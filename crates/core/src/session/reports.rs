//! Typed events and metric history yielded by the session stepper.

use crate::eval::EvalOutput;
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};

/// One completed federation round (a cohort trained, aggregated, and —
/// under full HeteFedRec — distilled).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Global 1-based round counter (monotone across epochs and resumes).
    pub round: u64,
    /// 1-based epoch this round belongs to.
    pub epoch: usize,
    /// 1-based position within the epoch.
    pub round_in_epoch: usize,
    /// Total rounds this epoch will run. Exact under the synchronous mode;
    /// an upper bound under the asynchronous mode (churn can shrink an
    /// epoch's arrival count).
    pub rounds_in_epoch: usize,
    /// Clients selected this round.
    pub cohort: usize,
    /// Mean local training loss per sample this round (0 when no samples).
    pub loss: f64,
    /// (item, label) samples processed this round.
    pub samples: usize,
    /// Uploads accepted into aggregation (cohort minus strategy-filtered,
    /// dropped, and empty updates).
    pub accepted: usize,
    /// Bytes downloaded by this round's cohort.
    pub download_bytes: u64,
    /// Bytes uploaded by this round's accepted clients.
    pub upload_bytes: u64,
    /// Asynchronous-mode extensions — `None` under the synchronous mode.
    pub asynchrony: Option<AsyncRoundStats>,
    /// Secure-aggregation telemetry — `Some` exactly when the round ran
    /// the masked upload path.
    pub secagg: Option<SecAggRoundStats>,
}

impl ToJson for RoundReport {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("round", &self.round)
                .field("epoch", &self.epoch)
                .field("round_in_epoch", &self.round_in_epoch)
                .field("rounds_in_epoch", &self.rounds_in_epoch)
                .field("cohort", &self.cohort)
                .field("loss", &self.loss)
                .field("samples", &self.samples)
                .field("accepted", &self.accepted)
                .field("download_bytes", &self.download_bytes)
                .field("upload_bytes", &self.upload_bytes)
                .field("asynchrony", &self.asynchrony)
                .field("secagg", &self.secagg);
        });
    }
}

/// Telemetry for one round of the masked (secure-aggregation) upload
/// path: who committed at setup, who survived, and whether the unmasked
/// ring aggregate matched the plaintext quantized reference bit-for-bit.
#[derive(Clone, Debug)]
pub struct SecAggRoundStats {
    /// Masking groups this round (1 for padded aggregation; up to 3 —
    /// one per tier — under clustered aggregation).
    pub groups: usize,
    /// Clients that committed to the protocol at setup (exchanged keys
    /// and escrowed their seed shares).
    pub participants: usize,
    /// Committed clients whose masked upload arrived.
    pub survivors: usize,
    /// Committed clients that dropped after setup (churn, injected
    /// drops, or an unencodable update).
    pub dropped: usize,
    /// Dropped clients whose orphaned masks were reconstructed from
    /// escrowed shares and stripped from the aggregate.
    pub recovered: usize,
    /// Wire bytes of this round's masked uploads.
    pub masked_bytes: u64,
    /// Wire bytes of this round's setup traffic (keys + share bundles).
    pub setup_bytes: u64,
    /// `true` when every group's unmasked aggregate equalled the
    /// plaintext quantized ring sum of its survivors exactly. `false`
    /// only when a group lost too many members to recover.
    pub verified: bool,
}

impl ToJson for SecAggRoundStats {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("groups", &self.groups)
                .field("participants", &self.participants)
                .field("survivors", &self.survivors)
                .field("dropped", &self.dropped)
                .field("recovered", &self.recovered)
                .field("masked_bytes", &self.masked_bytes)
                .field("setup_bytes", &self.setup_bytes)
                .field("verified", &self.verified);
        });
    }
}

/// Staleness and in-flight telemetry for one asynchronous round.
#[derive(Clone, Debug)]
pub struct AsyncRoundStats {
    /// Logical clock (ticks) after this round's arrivals were absorbed.
    pub clock: u64,
    /// Clients in flight after this round's re-dispatch.
    pub in_flight: usize,
    /// `staleness_hist[s]` counts this round's updates that were `s`
    /// aggregation rounds stale when applied.
    pub staleness_hist: Vec<usize>,
    /// Largest staleness aggregated this round.
    pub max_staleness: u64,
    /// Mean staleness across this round's updates.
    pub mean_staleness: f64,
}

impl ToJson for AsyncRoundStats {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("clock", &self.clock)
                .field("in_flight", &self.in_flight)
                .field("staleness_hist", &self.staleness_hist)
                .field("max_staleness", &self.max_staleness)
                .field("mean_staleness", &self.mean_staleness);
        });
    }
}

/// One completed epoch (a full traversal of the client queue).
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean local training loss across the epoch's client selections.
    pub train_loss: f64,
    /// Post-epoch evaluation — `Some` when the eval cadence hit this
    /// epoch (always on the final configured epoch unless cadence is 0).
    pub eval: Option<EvalOutput>,
}

impl ToJson for EpochReport {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("epoch", &self.epoch)
                .field("train_loss", &self.train_loss)
                .field("eval", &self.eval);
        });
    }
}

/// A typed event yielded by the session stepper.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A federation round completed.
    Round(RoundReport),
    /// An epoch boundary was crossed.
    Epoch(EpochReport),
}

/// Why a session stopped stepping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// All configured epochs ran.
    Completed,
    /// The NDCG plateau detector fired after `epoch`.
    EarlyStopped {
        /// Epoch after which training stopped.
        epoch: usize,
    },
    /// [`Session::request_stop`](super::Session::request_stop) was
    /// honoured after `epoch`.
    Requested {
        /// Epoch after which training stopped.
        epoch: usize,
    },
}

impl ToJson for StopReason {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            match self {
                StopReason::Completed => o.field("reason", &"completed"),
                StopReason::EarlyStopped { epoch } => {
                    o.field("reason", &"early_stopped").field("epoch", epoch)
                }
                StopReason::Requested { epoch } => {
                    o.field("reason", &"requested").field("epoch", epoch)
                }
            };
        });
    }
}

impl StopReason {
    pub(super) fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        match v.get("reason")?.as_str()? {
            "completed" => Ok(StopReason::Completed),
            "early_stopped" => Ok(StopReason::EarlyStopped {
                epoch: v.get("epoch")?.as_usize()?,
            }),
            "requested" => Ok(StopReason::Requested {
                epoch: v.get("epoch")?.as_usize()?,
            }),
            other => Err(JsonError::msg(format!("unknown stop reason `{other}`"))),
        }
    }
}

/// Per-epoch record for convergence curves (Fig. 7).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean local training loss across all client selections.
    pub train_loss: f64,
    /// Post-epoch evaluation.
    pub eval: EvalOutput,
}

impl ToJson for EpochRecord {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("epoch", &self.epoch)
                .field("train_loss", &self.train_loss)
                .field("eval", &self.eval);
        });
    }
}

impl EpochRecord {
    fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            epoch: v.get("epoch")?.as_usize()?,
            train_loss: v.get("train_loss")?.as_f64()?,
            eval: EvalOutput::from_json(v.get("eval")?)?,
        })
    }
}

/// Metric history across a training run (one record per *evaluated*
/// epoch; with the default cadence of 1 that is every epoch).
#[derive(Clone, Debug, Default)]
pub struct History {
    /// One record per evaluated epoch.
    pub epochs: Vec<EpochRecord>,
}

impl ToJson for History {
    fn write_json(&self, out: &mut String) {
        self.epochs.write_json(out);
    }
}

impl History {
    /// The best NDCG reached and the epoch it occurred in. NaN entries
    /// (diverged runs) rank lowest instead of aborting, so diagnostics
    /// survive divergence; the result is NaN only when *every* epoch
    /// diverged.
    pub fn best_ndcg(&self) -> Option<(usize, f64)> {
        self.epochs
            .iter()
            .map(|e| (e.epoch, e.eval.overall.ndcg))
            .max_by(|a, b| {
                // total_cmp ranks NaN above +inf; push it below -inf
                // instead so a diverged epoch never wins.
                match (a.1.is_nan(), b.1.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => a.1.total_cmp(&b.1),
                }
            })
    }

    /// The final evaluated epoch's evaluation.
    pub fn final_eval(&self) -> Option<&EvalOutput> {
        self.epochs.last().map(|e| &e.eval)
    }

    /// Restores a checkpointed history.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let epochs = v
            .as_arr()?
            .iter()
            .map(EpochRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { epochs })
    }
}
