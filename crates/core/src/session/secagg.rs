//! Secure-aggregation glue: group scheduling, the masked upload path,
//! and dropout recovery (DESIGN.md §10).
//!
//! When [`TrainConfig::secagg`](crate::config::SecAggConfig) is enabled,
//! every accepted upload travels as a **dense quantized u64 ring vector**
//! blinded by pairwise masks, and the server only ever sees the group
//! sum. The orchestration here has three parts:
//!
//! * **Setup scheduling.** Synchronous rounds pipeline: at the end of
//!   round `r` the session prepares the key exchange and Shamir escrow
//!   for the *next* cohort in the epoch queue, so a mid-epoch checkpoint
//!   carries in-flight escrowed shares (the checkpoint v3 state) and a
//!   resumed run replays them byte-identically. Asynchronous rounds form
//!   their group at collection time (arrival batches are not known in
//!   advance; overlapping setup with training is a recorded follow-up).
//! * **The masked path.** Survivors quantize their (staleness-weighted)
//!   deltas into the group layout, apply their pairwise masks (in
//!   parallel — masking is per-client), and the session folds the masked
//!   payloads serially into a wrapping ring aggregate, which is exact
//!   and order-independent.
//! * **Recovery + self-check.** Members that committed at setup but
//!   never delivered (churn, injected drops, or an unencodable update)
//!   leave orphaned masks; survivors reveal the dropped member's
//!   escrowed shares and the session strips those masks. The engine then
//!   asserts the unmasked aggregate equals the plaintext quantized ring
//!   sum of the survivors **bit-for-bit** — the proof obligation the
//!   integration tests and the `secure_aggregation` example surface.

use super::reports::SecAggRoundStats;
use super::Session;
use crate::config::TrainConfig;
use hf_dataset::Tier;
use hf_fedsim::parallel::parallel_map;
use hf_fedsim::transport::ClientUpdate;
use hf_models::RowGradBuffer;
use hf_secagg::{PayloadLayout, PreparedGroup, Quantizer};
use hf_tensor::rng::{stream, SeedStream, StdRng};
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};
use std::collections::HashMap;
use std::time::Instant;

/// Session-owned secure-aggregation state. Present exactly when the
/// configuration enables the masked path.
pub(super) struct SecAggState {
    /// Key-agreement RNG (its own purpose stream, advanced only by group
    /// setup, so enabling secure aggregation never perturbs scheduling,
    /// training, or fault draws).
    pub(super) rng: StdRng,
    /// Pipelined setup for the next synchronous cohort, if one has been
    /// prepared. Checkpointed: this is the in-flight round state that
    /// makes mid-epoch resume byte-identical.
    pub(super) pending: Option<PendingSetup>,
    /// Wall-clock nanoseconds spent deriving and applying masks. Not
    /// serialized (timing is an observation, not state).
    pub(super) mask_nanos: u64,
    /// Wall-clock nanoseconds spent reconstructing dropped members'
    /// secrets and stripping orphaned masks. Not serialized.
    pub(super) recovery_nanos: u64,
}

/// A prepared (but not yet consumed) group setup for one future round.
pub(super) struct PendingSetup {
    /// The round the setup was prepared for.
    pub(super) round: u64,
    /// The scheduled cohort it was prepared against.
    pub(super) cohort: Vec<usize>,
    /// One prepared group per masking partition.
    pub(super) groups: Vec<PreparedGroup>,
}

impl SecAggState {
    /// Fresh state from the run seed.
    pub(super) fn new(cfg: &TrainConfig) -> Self {
        Self {
            rng: stream(cfg.seed, SeedStream::SecAggSecret),
            pending: None,
            mask_nanos: 0,
            recovery_nanos: 0,
        }
    }

    /// Restores checkpointed state, validating uids against the
    /// population size.
    pub(super) fn from_json(v: &JsonValue<'_>, num_users: usize) -> Result<Self, JsonError> {
        let pending = match v.get("pending")? {
            p if p.is_null() => None,
            p => {
                let cohort = p.get("cohort")?.as_usize_vec()?;
                if cohort.iter().any(|&u| u >= num_users) {
                    return Err(JsonError::msg(
                        "pending secagg cohort references unknown client",
                    ));
                }
                let mut groups = Vec::new();
                for g in p.get("groups")?.as_arr()? {
                    let g = PreparedGroup::from_json(g)?;
                    if g.members.iter().any(|&m| m as usize >= num_users) {
                        return Err(JsonError::msg(
                            "pending secagg group references unknown client",
                        ));
                    }
                    groups.push(g);
                }
                Some(PendingSetup {
                    round: p.get("round")?.as_u64()?,
                    cohort,
                    groups,
                })
            }
        };
        Ok(Self {
            rng: StdRng::from_json(v.get("rng")?)?,
            pending,
            mask_nanos: 0,
            recovery_nanos: 0,
        })
    }
}

impl ToJson for SecAggState {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("rng", &self.rng).field("pending", &self.pending);
        });
    }
}

impl ToJson for PendingSetup {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("round", &self.round)
                .field("cohort", &self.cohort)
                .field("groups", &self.groups);
        });
    }
}

impl Session {
    /// Wall-clock nanoseconds spent in (mask derivation, dropout
    /// recovery) since construction — `None` when secure aggregation is
    /// off. The secagg bench reads this to report protocol overhead.
    pub fn secagg_timing(&self) -> Option<(u64, u64)> {
        self.secagg
            .as_ref()
            .map(|st| (st.mask_nanos, st.recovery_nanos))
    }

    /// Partitions a scheduled cohort into masking groups: the eligible
    /// members (those whose uploads the strategy accepts) form one
    /// Nl-wide group under padded aggregation, or one group per model
    /// tier under clustered aggregation. Empty partitions are dropped.
    fn secagg_partition(&self, cohort: &[usize]) -> Vec<Vec<u64>> {
        let mut eligible: Vec<usize> = cohort
            .iter()
            .copied()
            .filter(|&uid| self.strategy.accepts_update(self.data_groups.tier(uid)))
            .collect();
        eligible.sort_unstable();
        let parts: Vec<Vec<u64>> = if self.strategy.aggregates_across_tiers() {
            vec![eligible.iter().map(|&u| u as u64).collect()]
        } else {
            Tier::ALL
                .iter()
                .map(|&t| {
                    eligible
                        .iter()
                        .filter(|&&u| self.model_groups.tier(u) == t)
                        .map(|&u| u as u64)
                        .collect()
                })
                .collect()
        };
        parts.into_iter().filter(|m| !m.is_empty()).collect()
    }

    /// Runs the setup phase (key agreement + escrow) for one cohort.
    fn secagg_setup(&mut self, round: u64, cohort: &[usize]) -> Vec<PreparedGroup> {
        let parts = self.secagg_partition(cohort);
        let st = self.secagg.as_mut().expect("secagg state present");
        parts
            .iter()
            .map(|members| PreparedGroup::setup(round, members, &mut st.rng))
            .collect()
    }

    /// Obtains the group setups for the synchronous round about to run:
    /// consumes the pipelined setup when it matches this round and
    /// cohort, otherwise (first round of an epoch, or a resume whose
    /// pending state was for different work) draws a fresh one.
    pub(super) fn secagg_groups_for_round(
        &mut self,
        cohort: &[usize],
    ) -> Option<Vec<PreparedGroup>> {
        self.secagg.as_ref()?;
        let round = self.round_counter;
        let st = self.secagg.as_mut().expect("checked above");
        if let Some(pending) = st.pending.take() {
            if pending.round == round && pending.cohort == cohort {
                return Some(pending.groups);
            }
            // Stale (mode flip or abandoned epoch): discard and redraw.
        }
        Some(self.secagg_setup(round, cohort))
    }

    /// Group setup for an asynchronous arrival batch, formed at
    /// collection time.
    pub(super) fn secagg_groups_for_batch(
        &mut self,
        cohort: &[usize],
    ) -> Option<Vec<PreparedGroup>> {
        self.secagg.as_ref()?;
        Some(self.secagg_setup(self.round_counter, cohort))
    }

    /// Pipelines the setup for the next cohort in the synchronous epoch
    /// queue, so its escrowed shares exist before the round starts (and
    /// land in any checkpoint taken between the rounds).
    pub(super) fn secagg_prepare_next(&mut self) {
        if self.secagg.is_none() {
            return;
        }
        let Some(next) = self.pending.front().cloned() else {
            return;
        };
        let round = self.round_counter + 1;
        let groups = self.secagg_setup(round, &next);
        let st = self.secagg.as_mut().expect("secagg state present");
        st.pending = Some(PendingSetup {
            round,
            cohort: next,
            groups,
        });
    }

    /// The dense ring layout shared by one group: full item table at the
    /// group width plus every predictor the group's members may upload.
    fn secagg_layout(&self, tier: Option<Tier>) -> PayloadLayout {
        match tier {
            // Padded aggregation: deltas land at their natural prefix of
            // an Nl-wide row, and any member may carry any predictor.
            None => PayloadLayout {
                num_items: self.split.num_items(),
                width: self.cfg.dims.largest(),
                theta_lens: [
                    self.server.theta(Tier::Small).num_params(),
                    self.server.theta(Tier::Medium).num_params(),
                    self.server.theta(Tier::Large).num_params(),
                ],
            },
            // Clustered: each tier masks among itself at its own width.
            Some(t) => {
                let mut theta_lens = [0usize; 3];
                theta_lens[t.index()] = self.server.theta(t).num_params();
                PayloadLayout {
                    num_items: self.split.num_items(),
                    width: self.cfg.dims.dim(t),
                    theta_lens,
                }
            }
        }
    }

    /// Executes the masked aggregation for one round: builds each
    /// survivor's quantized payload, masks and ring-folds them, recovers
    /// dropped members' masks from escrow, verifies the unmasked sum
    /// against the plaintext quantized reference, and applies the
    /// decoded aggregate through the same server seams the plaintext
    /// path uses. Returns the round stats plus the accepted-upload count
    /// (survivors with a non-empty update) and masked wire bytes.
    pub(super) fn secagg_aggregate(
        &mut self,
        groups: &[PreparedGroup],
        uploads: &HashMap<u64, (ClientUpdate, f32)>,
    ) -> (SecAggRoundStats, usize, u64) {
        let quant = Quantizer::new(self.cfg.secagg.scale_bits)
            .expect("scale_bits validated at session build");
        let clustered = !self.strategy.aggregates_across_tiers();
        let mut stats = SecAggRoundStats {
            groups: groups.len(),
            participants: 0,
            survivors: 0,
            dropped: 0,
            recovered: 0,
            masked_bytes: 0,
            setup_bytes: groups.iter().map(PreparedGroup::setup_bytes).sum(),
            verified: true,
        };
        let mut accepted = 0usize;

        for group in groups {
            stats.participants += group.member_count();
            let tier = clustered.then(|| self.model_groups.tier(group.members[0] as usize));
            let layout = self.secagg_layout(tier);

            // A committed member survives when its (weighted) update both
            // arrived and quantized; anything else orphans its masks.
            let mut survivors: Vec<u64> = Vec::new();
            let mut dropped: Vec<u64> = Vec::new();
            let mut payloads: Vec<(u64, Vec<u64>)> = Vec::new();
            for &m in &group.members {
                let built = uploads
                    .get(&m)
                    .and_then(|(update, w)| build_payload(&layout, quant, update, *w));
                match built {
                    Some(payload) => {
                        let (update, _) = &uploads[&m];
                        if !(update.items.is_empty() && update.thetas.is_empty()) {
                            accepted += 1;
                        }
                        survivors.push(m);
                        payloads.push((m, payload));
                    }
                    None => dropped.push(m),
                }
            }
            stats.survivors += survivors.len();
            stats.dropped += dropped.len();
            if survivors.is_empty() {
                continue;
            }

            // Mask in parallel (per-client work), fold serially (ring
            // addition is exact, so order and thread count are moot —
            // the serial fold just keeps the loop simple).
            let mask_start = Instant::now();
            let masked: Vec<Vec<u64>> = parallel_map(&payloads, self.cfg.threads, |(m, p)| {
                let mut words = p.clone();
                group.mask_payload(*m, &mut words);
                words
            });
            let mut aggregate = vec![0u64; layout.len()];
            for words in &masked {
                ring_add(&mut aggregate, words);
            }
            self.secagg.as_mut().expect("secagg state").mask_nanos +=
                mask_start.elapsed().as_nanos() as u64;

            for (_, words) in &payloads {
                // Wire cost of one MaskedUpload: tag + round + uid +
                // count + 8 bytes per ring word.
                let bytes = 1 + 8 + 8 + 4 + 8 * words.len();
                self.ledger.record_secagg_upload(bytes);
                stats.masked_bytes += bytes as u64;
            }

            if !dropped.is_empty() {
                let recovery_start = Instant::now();
                let recovered = group.unmask_dropped(&mut aggregate, &dropped, &survivors);
                self.secagg.as_mut().expect("secagg state").recovery_nanos +=
                    recovery_start.elapsed().as_nanos() as u64;
                match recovered {
                    Ok(n) => stats.recovered += n,
                    Err(_) => {
                        // Below the escrow threshold: the aggregate is
                        // unrecoverable, so the group's round is lost.
                        stats.verified = false;
                        continue;
                    }
                }
            }

            // The proof obligation: after recovery, the masked aggregate
            // must equal the plaintext quantized ring sum bit-for-bit.
            let mut reference = vec![0u64; layout.len()];
            for (_, p) in &payloads {
                ring_add(&mut reference, p);
            }
            assert_eq!(
                aggregate, reference,
                "secure-aggregation self-check failed: unmasked sum diverged \
                 from the plaintext quantized reference"
            );

            self.secagg_apply(&layout, quant, tier, &aggregate);
        }

        if !groups.is_empty() {
            self.ledger.record_secagg_setup(stats.setup_bytes);
        }
        let masked_bytes = stats.masked_bytes;
        (stats, accepted, masked_bytes)
    }

    /// Decodes an unmasked ring aggregate and applies it through
    /// [`ServerState::apply_item_aggregate`](crate::server::ServerState::apply_item_aggregate)
    /// / [`apply_theta_aggregate`](crate::server::ServerState::apply_theta_aggregate)
    /// — the same seams the plaintext path reduces to.
    fn secagg_apply(
        &mut self,
        layout: &PayloadLayout,
        quant: Quantizer,
        tier: Option<Tier>,
        aggregate: &[u64],
    ) {
        let mut acc = RowGradBuffer::new(layout.width);
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for row in 0..layout.num_items {
            let count = aggregate[layout.item_count_offset() + row];
            if count == 0 {
                continue;
            }
            let base = row * layout.width;
            let delta: Vec<f32> = aggregate[base..base + layout.width]
                .iter()
                .map(|&w| quant.decode(w))
                .collect();
            acc.accumulate(row as u32, 1.0, &delta);
            counts.insert(row as u32, count.min(u32::MAX as u64) as u32);
        }
        if !acc.is_empty() {
            let tiers: Vec<Tier> = match tier {
                Some(t) => vec![t],
                None => Tier::ALL.to_vec(),
            };
            self.server.apply_item_aggregate(&mut acc, &counts, &tiers);
        }
        for (t, &len) in Tier::ALL.iter().zip(&layout.theta_lens) {
            if len == 0 {
                continue;
            }
            let count = aggregate[layout.theta_count_offset(t.index())] as usize;
            let weight_sum = quant.decode(aggregate[layout.theta_weight_offset(t.index())]);
            let off = layout.theta_offset(t.index());
            let sum: Vec<f32> = aggregate[off..off + len]
                .iter()
                .map(|&w| quant.decode(w))
                .collect();
            self.server
                .apply_theta_aggregate(*t, sum, count, weight_sum);
        }
    }
}

/// Quantizes one survivor's weighted update into the group's dense ring
/// layout. The aggregation weight scales deltas client-side (before
/// quantization); contributor counts stay unweighted, and each uploaded
/// predictor carries its quantized weight so the server can form the
/// weighted average from the sum alone. Returns `None` when any delta is
/// non-finite — such a client cannot participate and is treated as
/// dropped (its masks get recovered like any other dropout).
fn build_payload(
    layout: &PayloadLayout,
    quant: Quantizer,
    update: &ClientUpdate,
    weight: f32,
) -> Option<Vec<u64>> {
    let mut payload = vec![0u64; layout.len()];
    for (row, delta) in &update.items.rows {
        let row = *row as usize;
        debug_assert!(delta.len() <= layout.width, "delta wider than group slot");
        let base = row * layout.width;
        for (d, &x) in delta.iter().enumerate() {
            payload[base + d] = quant.encode(weight * x).ok()?;
        }
        payload[layout.item_count_offset() + row] = 1;
    }
    for (tier, flat) in &update.thetas {
        let t = *tier as usize;
        debug_assert_eq!(flat.len(), layout.theta_lens[t], "theta slot mismatch");
        let off = layout.theta_offset(t);
        for (i, &x) in flat.iter().enumerate() {
            payload[off + i] = quant.encode(weight * x).ok()?;
        }
        payload[layout.theta_weight_offset(t)] = quant.encode(weight).ok()?;
        payload[layout.theta_count_offset(t)] = 1;
    }
    Some(payload)
}

/// Wrapping element-wise ring addition.
fn ring_add(acc: &mut [u64], words: &[u64]) {
    debug_assert_eq!(acc.len(), words.len());
    for (a, &w) in acc.iter_mut().zip(words) {
        *a = a.wrapping_add(w);
    }
}
