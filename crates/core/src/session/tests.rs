use super::*;
use crate::strategy::Ablation;
use hf_dataset::{SyntheticConfig, Tier};
use hf_fedsim::LatencyProfile;
use hf_models::ModelKind;

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn session(strategy: Strategy, model: ModelKind) -> Session {
    let cfg = TrainConfig::test_default(model);
    SessionBuilder::new(cfg, strategy, tiny_split(9))
        .build()
        .expect("valid config")
}

/// An asynchronous configuration small enough that the tiny split's
/// epochs span several aggregation rounds with real staleness spread.
fn async_cfg(model: ModelKind) -> TrainConfig {
    let mut cfg = TrainConfig::test_default(model);
    cfg.mode = Mode::Async;
    cfg.async_cfg.buffer = 4;
    cfg.async_cfg.concurrency = 8;
    cfg.latency = LatencyProfile::Uniform { min: 1, max: 7 };
    cfg
}

#[test]
fn one_epoch_trains_and_returns_finite_loss() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    let loss = s.run_epoch();
    assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
}

#[test]
fn training_improves_over_random_init() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    let before = s.evaluate();
    for _ in 0..4 {
        s.run_epoch();
    }
    let after = s.evaluate();
    assert!(
        after.overall.ndcg > before.overall.ndcg,
        "before {:.5}, after {:.5}",
        before.overall.ndcg,
        after.overall.ndcg
    );
}

#[test]
fn run_records_history_for_every_epoch() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    s.run();
    assert_eq!(s.history().epochs.len(), s.cfg().epochs);
    assert_eq!(s.stop_reason(), Some(StopReason::Completed));
    assert!(s.history().best_ndcg().is_some());
    assert!(s.final_eval().is_some());
}

#[test]
fn event_stream_has_the_expected_shape() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    let epochs = s.cfg().epochs;
    let mut rounds = 0usize;
    let mut epoch_reports = Vec::new();
    let mut last_round_global = 0u64;
    for event in s.events() {
        match event {
            SessionEvent::Round(r) => {
                rounds += 1;
                assert!(r.round > last_round_global, "rounds must be monotone");
                last_round_global = r.round;
                assert!(r.round_in_epoch >= 1 && r.round_in_epoch <= r.rounds_in_epoch);
                assert!(r.cohort > 0);
                assert!(r.download_bytes > 0);
                assert!(r.asynchrony.is_none(), "sync rounds carry no async stats");
            }
            SessionEvent::Epoch(e) => epoch_reports.push(e),
        }
    }
    assert_eq!(epoch_reports.len(), epochs);
    assert!(rounds >= epochs, "at least one round per epoch");
    assert!(epoch_reports.iter().all(|e| e.eval.is_some()));
    // The stream is exhausted; further steps yield nothing.
    assert!(s.step().is_none());
}

#[test]
fn sync_rounds_advance_the_logical_clock() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    assert_eq!(s.clock(), 0);
    s.run_epoch();
    // The default unit latency profile costs one tick per round.
    assert_eq!(s.clock(), s.rounds_completed());
}

#[test]
fn async_event_stream_covers_every_client_with_stats() {
    let cfg = async_cfg(ModelKind::Ncf);
    let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .build()
        .unwrap();
    let population = s.split().num_users();
    let mut first_epoch_clients = 0usize;
    let mut last_clock = 0u64;
    let mut rounds = 0usize;
    while let Some(event) = s.step() {
        match event {
            SessionEvent::Round(r) => {
                rounds += 1;
                let a = r.asynchrony.as_ref().expect("async rounds carry stats");
                assert!(a.clock >= last_clock, "clock is monotone");
                last_clock = a.clock;
                assert_eq!(
                    a.staleness_hist.iter().sum::<usize>(),
                    r.cohort,
                    "histogram covers the batch"
                );
                assert_eq!(
                    a.staleness_hist.len() as u64,
                    a.max_staleness + 1,
                    "histogram is exactly as long as needed"
                );
                assert!(r.round_in_epoch <= r.rounds_in_epoch);
                if r.epoch == 1 {
                    first_epoch_clients += r.cohort;
                }
            }
            SessionEvent::Epoch(_) => {}
        }
    }
    assert!(rounds > 0);
    // Without churn, the drained epoch barrier aggregates every client
    // exactly once per epoch — same total work as the synchronous mode.
    assert_eq!(first_epoch_clients, population);
    assert_eq!(s.clock(), last_clock);
}

#[test]
fn async_training_is_deterministic_across_thread_counts() {
    let cfg = async_cfg(ModelKind::Ncf);
    let mut a = SessionBuilder::new(
        cfg.clone(),
        Strategy::HeteFedRec(Ablation::FULL),
        tiny_split(9),
    )
    .threads(1)
    .build()
    .unwrap();
    let mut b = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .threads(8)
        .build()
        .unwrap();
    a.run_epoch();
    b.run_epoch();
    assert_eq!(a.clock(), b.clock());
    let ea = a.evaluate();
    let eb = b.evaluate();
    assert_eq!(ea.overall.ndcg.to_bits(), eb.overall.ndcg.to_bits());
    assert_eq!(ea.overall.recall.to_bits(), eb.overall.recall.to_bits());
}

#[test]
fn builder_mode_override_switches_orchestration() {
    let mut cfg = async_cfg(ModelKind::Ncf);
    cfg.mode = Mode::Sync;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .mode(Mode::Async)
        .build()
        .unwrap();
    assert_eq!(s.cfg().mode, Mode::Async);
    let mut saw_async_stats = false;
    while let Some(event) = s.step() {
        if let SessionEvent::Round(r) = event {
            saw_async_stats |= r.asynchrony.is_some();
        }
        if s.epochs_completed() >= 1 {
            break;
        }
    }
    assert!(saw_async_stats);
}

#[test]
fn eval_cadence_skips_intermediate_epochs() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = 5;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .eval_every(2)
        .build()
        .unwrap();
    let mut evaluated = Vec::new();
    for event in s.events() {
        if let SessionEvent::Epoch(e) = event {
            if e.eval.is_some() {
                evaluated.push(e.epoch);
            }
        }
    }
    // Epochs 2 and 4 by cadence, 5 because it is final.
    assert_eq!(evaluated, vec![2, 4, 5]);
    assert_eq!(s.history().epochs.len(), 3);
}

#[test]
fn eval_cadence_zero_never_evaluates() {
    let mut s = SessionBuilder::new(
        TrainConfig::test_default(ModelKind::Ncf),
        Strategy::AllSmall,
        tiny_split(9),
    )
    .eval_every(0)
    .build()
    .unwrap();
    s.run();
    assert!(s.history().epochs.is_empty());
    assert_eq!(s.stop_reason(), Some(StopReason::Completed));
}

#[test]
fn observer_hooks_fire_for_rounds_and_epochs() {
    use std::cell::Cell;
    use std::rc::Rc;
    let rounds = Rc::new(Cell::new(0usize));
    let epochs = Rc::new(Cell::new(0usize));
    let (r2, e2) = (rounds.clone(), epochs.clone());
    let mut s = SessionBuilder::new(
        TrainConfig::test_default(ModelKind::Ncf),
        Strategy::AllSmall,
        tiny_split(9),
    )
    .on_round(move |_| r2.set(r2.get() + 1))
    .on_epoch(move |_| e2.set(e2.get() + 1))
    .build()
    .unwrap();
    s.run();
    assert_eq!(epochs.get(), s.cfg().epochs);
    assert_eq!(rounds.get() as u64, s.rounds_completed());
}

#[test]
fn nan_evals_do_not_poison_the_plateau_detector() {
    let mut s = SessionBuilder::new(
        TrainConfig::test_default(ModelKind::Ncf),
        Strategy::AllSmall,
        tiny_split(9),
    )
    .early_stopping(2, 0.0)
    .build()
    .unwrap();
    // A diverged eval is a non-improvement but never becomes "best".
    s.note_eval(f64::NAN);
    assert_eq!(s.best_ndcg, None);
    assert_eq!(s.evals_since_improvement, 1);
    // Recovery registers as an improvement and resets the counter.
    s.note_eval(0.5);
    assert_eq!(s.best_ndcg, Some(0.5));
    assert_eq!(s.evals_since_improvement, 0);
    // And best_ndcg being NaN-free means the checkpointed early-stop
    // state round-trips without the null/NaN ambiguity.
    s.note_eval(f64::NAN);
    assert_eq!(s.best_ndcg, Some(0.5));
}

#[test]
fn eval_cadence_can_change_mid_run() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = 4;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .unwrap();
    s.run_epoch();
    assert_eq!(s.history().epochs.len(), 1);
    s.set_eval_every(0);
    s.run_epoch();
    assert_eq!(s.history().epochs.len(), 1, "cadence 0 skips evaluation");
}

#[test]
fn early_stopping_fires_on_a_plateau() {
    // An impossible min_delta means no eval ever "improves" after the
    // first, so the plateau detector must fire after `patience`
    // further evals.
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = 50;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .early_stopping(2, f64::MAX)
        .build()
        .unwrap();
    s.run();
    assert_eq!(s.stop_reason(), Some(StopReason::EarlyStopped { epoch: 3 }));
    assert_eq!(s.history().epochs.len(), 3);
}

#[test]
fn request_stop_halts_at_the_epoch_boundary() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = 50;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .unwrap();
    while let Some(event) = s.step() {
        if let SessionEvent::Epoch(e) = event {
            if e.epoch == 2 {
                s.request_stop();
            }
        }
    }
    assert_eq!(s.stop_reason(), Some(StopReason::Requested { epoch: 3 }));
}

#[test]
fn builder_rejects_invalid_configs_without_panicking() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.local_lr = f32::NAN;
    let err = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .expect_err("NaN learning rate must be rejected");
    assert!(
        matches!(err, SessionError::Config(ref c) if c.field == "local_lr"),
        "{err}"
    );

    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.drop_prob = 1.5;
    assert!(SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .is_err());

    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.async_cfg.buffer = 0;
    let err = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .expect_err("zero aggregation buffer");
    assert!(
        matches!(err, SessionError::Config(ref c) if c.field == "async.buffer"),
        "{err}"
    );

    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.latency = LatencyProfile::Uniform { min: 3, max: 1 };
    assert!(SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .is_err());

    let cfg = TrainConfig::test_default(ModelKind::Ncf);
    let err = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .early_stopping(0, 0.0)
        .build()
        .expect_err("zero patience");
    assert!(matches!(err, SessionError::ZeroPatience));
}

#[test]
fn eq10_holds_through_training_without_reskd() {
    let mut s = session(Strategy::HeteFedRec(Ablation::NO_RESKD), ModelKind::Ncf);
    s.run_epoch();
    s.run_epoch();
    assert!(
        s.server().eq10_violation() < 1e-4,
        "violation {}",
        s.server().eq10_violation()
    );
}

#[test]
fn standalone_never_changes_server_tables() {
    let mut s = session(Strategy::Standalone, ModelKind::Ncf);
    let before = s.server().table(Tier::Small).clone();
    s.run_epoch();
    assert_eq!(*s.server().table(Tier::Small), before);
    // But private state advanced.
    assert!(s.users().iter().any(|u| u
        .standalone
        .as_ref()
        .map(|s| !s.rows.is_empty())
        .unwrap_or(false)));
}

#[test]
fn ledger_accumulates_traffic() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    s.run_epoch();
    let ledger = s.ledger();
    assert!(ledger.downloads as usize >= s.split().num_users());
    assert!(ledger.uploads > 0);
    assert!(ledger.upload_bytes > 0);
}

#[test]
fn round_reports_account_for_the_whole_ledger() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    let mut up = 0u64;
    let mut down = 0u64;
    let mut accepted = 0u64;
    for event in s.events() {
        if let SessionEvent::Round(r) = event {
            up += r.upload_bytes;
            down += r.download_bytes;
            accepted += r.accepted as u64;
        }
    }
    assert_eq!(up, s.ledger().upload_bytes);
    assert_eq!(down, s.ledger().download_bytes);
    assert_eq!(accepted, s.ledger().uploads);
}

#[test]
fn async_round_reports_account_for_the_whole_ledger() {
    let cfg = async_cfg(ModelKind::Ncf);
    let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .build()
        .unwrap();
    let mut up = 0u64;
    let mut down = 0u64;
    for event in s.events() {
        if let SessionEvent::Round(r) = event {
            up += r.upload_bytes;
            down += r.download_bytes;
        }
    }
    assert_eq!(up, s.ledger().upload_bytes);
    assert_eq!(down, s.ledger().download_bytes);
}

#[test]
fn exclusive_strategy_filters_small_data_clients() {
    let mut s = session(Strategy::AllLargeExclusive, ModelKind::Ncf);
    s.run_epoch();
    // Uploads recorded only for Um ∪ Ul clients.
    let expected = s.data_groups().sizes()[1] + s.data_groups().sizes()[2];
    assert_eq!(s.ledger().uploads as usize, expected);
}

#[test]
fn fault_injection_drops_roughly_the_configured_fraction() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.drop_prob = 0.5;
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .unwrap();
    s.run_epoch();
    let uploads = s.ledger().uploads as f64;
    let population = s.split().num_users() as f64;
    let rate = uploads / population;
    assert!((0.2..0.8).contains(&rate), "upload rate {rate}");
}

#[test]
fn churn_keeps_clients_out_of_sync_cohorts() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.churn = ChurnProfile::Independent { offline_prob: 0.4 };
    let mut s = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(9))
        .build()
        .unwrap();
    let population = s.split().num_users();
    let mut trained = 0usize;
    while let Some(event) = s.step() {
        if let SessionEvent::Round(r) = event {
            trained += r.cohort;
        }
        if s.epochs_completed() >= 1 {
            break;
        }
    }
    assert!(
        trained < population,
        "offline clients must sit rounds out ({trained}/{population})"
    );
    assert!(trained > 0, "some clients stay online");
    // Offline clients never downloaded, so the ledger agrees.
    assert_eq!(s.ledger().downloads as usize, trained);
}

#[test]
fn training_is_deterministic_across_thread_counts() {
    let cfg = TrainConfig::test_default(ModelKind::Ncf);
    let mut a = SessionBuilder::new(
        cfg.clone(),
        Strategy::HeteFedRec(Ablation::FULL),
        tiny_split(9),
    )
    .threads(1)
    .build()
    .unwrap();
    let mut b = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .threads(4)
        .build()
        .unwrap();
    a.run_epoch();
    b.run_epoch();
    let ea = a.evaluate();
    let eb = b.evaluate();
    assert_eq!(ea.overall.ndcg, eb.overall.ndcg);
    assert_eq!(ea.overall.recall, eb.overall.recall);
}

#[test]
fn lightgcn_trains_end_to_end() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn);
    let loss = s.run_epoch();
    assert!(loss.is_finite() && loss > 0.0);
    let eval = s.evaluate();
    assert!(eval.overall.users > 0);
}

#[test]
fn best_ndcg_survives_nan_entries() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    s.run();
    let mut history = s.history().clone();
    let mut poisoned = history.epochs[0].clone();
    poisoned.eval.overall.ndcg = f64::NAN;
    history.epochs.push(poisoned);
    // Must not panic, and must not pick the NaN entry.
    let (_, best) = history.best_ndcg().expect("non-empty");
    assert!(best.is_finite());
}

// --- checkpoint / resume ---------------------------------------------

/// Drives `steps` stepper events under `cfg`, checkpoints, restores on a
/// freshly generated split, and asserts the resumed session finishes
/// with an EvalOutput bit-identical to the uninterrupted reference.
fn checkpoint_roundtrip_cfg(
    cfg: TrainConfig,
    strategy: Strategy,
    steps: usize,
    restore_threads: usize,
) {
    let mut reference = SessionBuilder::new(cfg.clone(), strategy, tiny_split(9))
        .build()
        .unwrap();
    reference.run();

    let mut interrupted = SessionBuilder::new(cfg, strategy, tiny_split(9))
        .build()
        .unwrap();
    for _ in 0..steps {
        interrupted.step();
    }
    let json = interrupted.checkpoint();
    drop(interrupted);

    let mut resumed = SessionBuilder::from_checkpoint(&json, tiny_split(9))
        .unwrap()
        .threads(restore_threads)
        .build()
        .unwrap();
    resumed.run();

    let a = reference.history().final_eval().expect("reference eval");
    let b = resumed.history().final_eval().expect("resumed eval");
    assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
    assert_eq!(a.overall.recall.to_bits(), b.overall.recall.to_bits());
    assert_eq!(a.overall.mrr.to_bits(), b.overall.mrr.to_bits());
    for (ga, gb) in a.per_group.iter().zip(&b.per_group) {
        assert_eq!(ga.ndcg.to_bits(), gb.ndcg.to_bits());
        assert_eq!(ga.users, gb.users);
    }
    assert_eq!(
        reference.history().epochs.len(),
        resumed.history().epochs.len()
    );
    for (ea, eb) in reference
        .history()
        .epochs
        .iter()
        .zip(&resumed.history().epochs)
    {
        assert_eq!(ea.train_loss.to_bits(), eb.train_loss.to_bits());
    }
    assert_eq!(
        reference.ledger().upload_bytes,
        resumed.ledger().upload_bytes
    );
    assert_eq!(reference.rounds_completed(), resumed.rounds_completed());
    assert_eq!(reference.clock(), resumed.clock());
    // Server parameters themselves must agree bit-for-bit.
    for tier in Tier::ALL {
        assert_eq!(
            reference.server().table(tier).as_slice(),
            resumed.server().table(tier).as_slice()
        );
    }
}

fn checkpoint_roundtrip(strategy: Strategy, steps: usize, restore_threads: usize) {
    checkpoint_roundtrip_cfg(
        TrainConfig::test_default(ModelKind::Ncf),
        strategy,
        steps,
        restore_threads,
    );
}

#[test]
fn mid_epoch_checkpoint_resumes_bit_identically() {
    // 2 steps: one full round plus part of the first epoch — lands
    // mid-epoch, exercising the pending-cohort queue.
    checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::FULL), 2, 1);
}

#[test]
fn epoch_boundary_checkpoint_resumes_bit_identically() {
    // Enough steps to cross the first epoch boundary (the tiny split
    // schedules a handful of rounds per epoch, then the epoch event).
    checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::NO_RESKD), 6, 1);
}

#[test]
fn checkpoint_resume_is_thread_invariant() {
    checkpoint_roundtrip(Strategy::HeteFedRec(Ablation::FULL), 3, 4);
}

#[test]
fn standalone_state_checkpoints() {
    checkpoint_roundtrip(Strategy::Standalone, 2, 1);
}

#[test]
fn async_mid_stream_checkpoint_resumes_bit_identically() {
    // 2 steps land mid-epoch with arrivals still in flight, exercising
    // the serialized event queue and dispatch versions.
    checkpoint_roundtrip_cfg(
        async_cfg(ModelKind::Ncf),
        Strategy::HeteFedRec(Ablation::FULL),
        2,
        1,
    );
}

#[test]
fn async_checkpoint_resume_is_thread_invariant() {
    checkpoint_roundtrip_cfg(
        async_cfg(ModelKind::Ncf),
        Strategy::HeteFedRec(Ablation::FULL),
        3,
        8,
    );
}

#[test]
fn async_with_heavy_tail_and_churn_checkpoints() {
    let mut cfg = async_cfg(ModelKind::Ncf);
    cfg.latency = LatencyProfile::LogNormal {
        median: 3.0,
        sigma: 0.8,
    };
    cfg.churn = ChurnProfile::Flappy {
        offline_prob: 0.3,
        period: 5,
    };
    checkpoint_roundtrip_cfg(cfg, Strategy::HeteFedRec(Ablation::NO_RESKD), 4, 2);
}

#[test]
fn sync_with_churn_checkpoints() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.churn = ChurnProfile::Independent { offline_prob: 0.3 };
    checkpoint_roundtrip_cfg(cfg, Strategy::AllSmall, 2, 1);
}

#[test]
fn adam_server_state_checkpoints() {
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.server_opt = crate::config::ServerOpt::Adam;
    cfg.server_lr = 0.01;
    let mut reference = SessionBuilder::new(
        cfg.clone(),
        Strategy::HeteFedRec(Ablation::FULL),
        tiny_split(9),
    )
    .build()
    .unwrap();
    reference.run();
    let mut interrupted =
        SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
            .build()
            .unwrap();
    interrupted.step();
    interrupted.step();
    let mut resumed = Session::restore(&interrupted.checkpoint(), tiny_split(9)).unwrap();
    resumed.run();
    assert_eq!(
        reference.final_eval().unwrap().overall.ndcg.to_bits(),
        resumed.final_eval().unwrap().overall.ndcg.to_bits()
    );
}

#[test]
fn finished_sessions_checkpoint_and_stay_finished() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    s.run();
    let mut resumed = Session::restore(&s.checkpoint(), tiny_split(9)).unwrap();
    assert_eq!(resumed.stop_reason(), Some(StopReason::Completed));
    assert!(resumed.step().is_none());
    assert_eq!(resumed.history().epochs.len(), s.history().epochs.len());
}

#[test]
fn v1_checkpoint_documents_still_restore() {
    let mut reference = session(Strategy::AllSmall, ModelKind::Ncf);
    reference.run();

    let mut interrupted = session(Strategy::AllSmall, ModelKind::Ncf);
    interrupted.step();
    interrupted.step();
    let mut json = interrupted.checkpoint();
    // Reconstruct the exact v1 document: strip the orchestration fields
    // the v2 config gained, drop the two v2 top-level sections, rewind
    // the version tag.
    let start = json.find(",\"mode\":").expect("cfg mode field");
    let end = json.find(",\"strategy\"").expect("strategy field");
    json.replace_range(start..end, "}");
    let start = json.find(",\"clock\":").expect("clock field");
    let end = json.find(",\"ledger\"").expect("ledger field");
    json.replace_range(start..end, "");
    let json = json.replacen("\"version\":2", "\"version\":1", 1);

    let mut resumed = Session::restore(&json, tiny_split(9)).expect("v1 document restores");
    assert_eq!(resumed.cfg().mode, Mode::Sync);
    assert_eq!(resumed.clock(), 0);
    resumed.run();
    assert_eq!(
        reference.final_eval().unwrap().overall.ndcg.to_bits(),
        resumed.final_eval().unwrap().overall.ndcg.to_bits()
    );
}

#[test]
fn restore_rejects_mismatched_datasets_and_garbage() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    s.step();
    let json = s.checkpoint();
    let tiny = hf_dataset::ImplicitDataset::new(10, vec![vec![0, 1, 2], vec![1, 2, 3]]);
    let other = SplitDataset::paper_split(&tiny, 1);
    let err = Session::restore(&json, other).expect_err("different dataset");
    assert!(matches!(err, SessionError::DatasetMismatch { .. }), "{err}");

    assert!(Session::restore("not json", tiny_split(9)).is_err());
    assert!(Session::restore("{}", tiny_split(9)).is_err());
    let wrong_version = json.replacen("\"version\":2", "\"version\":999", 1);
    assert!(Session::restore(&wrong_version, tiny_split(9)).is_err());
}

// --- streaming ingest -------------------------------------------------

/// Applies the same stream events a live session ingested to a freshly
/// rebuilt split — the resume protocol for v4 checkpoints.
fn replay(split: &mut SplitDataset, events: &[(usize, u32)]) {
    for &(u, i) in events {
        split.ingest(u, i);
    }
}

#[test]
fn ingest_appends_admits_and_freezes_tiers() {
    let mut s = session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
    let n = s.split().num_users();
    let tiers_before = s.model_groups().tier_indices();

    let events = [(0usize, 3u32), (n, 7), (n, 2), (0, 3), (0, 3)];
    let report = s.ingest(&events);
    assert_eq!(report.admitted, 1, "exactly one brand-new user");
    assert_eq!(
        report.appended + report.admitted + report.duplicates,
        events.len()
    );
    assert_eq!(s.ingested_events(), events.len() as u64);
    assert_eq!(s.baseline_users(), n);
    assert_eq!(s.split().num_users(), n + 1);
    assert_eq!(s.users().len(), n + 1);

    // Existing users keep their division-time tiers even though their
    // train counts changed; the newcomer lands in the smallest bucket.
    assert_eq!(&s.model_groups().tier_indices()[..n], &tiers_before[..]);
    assert_eq!(s.model_groups().tier(n), Tier::Small);
    assert_eq!(
        s.user_state(n).emb.len(),
        s.cfg().dims.dim(Tier::Small),
        "admitted embedding sized for its tier"
    );

    // The grown population trains and evaluates without panicking (the
    // newcomer has no held-out data, so evaluation skips it).
    let loss = s.run_epoch();
    assert!(loss.is_finite());
    let eval = s.evaluate();
    assert!(eval.overall.users > 0);
}

#[test]
fn ingest_then_train_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
            .threads(threads)
            .build()
            .unwrap();
        let n = s.split().num_users();
        s.run_epoch();
        s.ingest(&[(0, 3), (n, 7), (1, 9)]);
        s.run_epoch();
        s.evaluate()
    };
    let a = run(1);
    for threads in [2, 8] {
        let b = run(threads);
        assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
        assert_eq!(a.overall.recall.to_bits(), b.overall.recall.to_bits());
    }
}

#[test]
fn ingest_checkpoint_stamps_v4_and_resumes_bit_identically() {
    let cfg = TrainConfig::test_default(ModelKind::Ncf);
    let strategy = Strategy::HeteFedRec(Ablation::FULL);
    let n = tiny_split(9).num_users();
    let events = [(0usize, 3u32), (1, 5), (n, 7), (n, 2), (0, 3)];

    let mut reference = SessionBuilder::new(cfg.clone(), strategy, tiny_split(9))
        .build()
        .unwrap();
    reference.step();
    reference.ingest(&events);
    reference.run();

    let mut interrupted = SessionBuilder::new(cfg, strategy, tiny_split(9))
        .build()
        .unwrap();
    interrupted.step();
    interrupted.ingest(&events);
    let json = interrupted.checkpoint();
    assert!(json.contains("\"version\":4"), "ingest promotes to v4");
    assert!(json.contains("\"ingest\":"), "ingest section present");

    let mut split = tiny_split(9);
    replay(&mut split, &events);
    let mut resumed = Session::restore(&json, split).unwrap();
    assert_eq!(resumed.ingested_events(), events.len() as u64);
    assert_eq!(resumed.baseline_users(), n);
    assert_eq!(resumed.split().num_users(), n + 1);
    resumed.run();

    let a = reference.final_eval().unwrap();
    let b = resumed.final_eval().unwrap();
    assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
    assert_eq!(a.overall.recall.to_bits(), b.overall.recall.to_bits());
    for tier in Tier::ALL {
        assert_eq!(
            reference.server().table(tier).as_slice(),
            resumed.server().table(tier).as_slice()
        );
    }
}

#[test]
fn ingest_free_sessions_still_stamp_v2() {
    let mut s = session(Strategy::AllSmall, ModelKind::Ncf);
    s.step();
    let json = s.checkpoint();
    assert!(json.contains("\"version\":2"));
    assert!(!json.contains("\"ingest\""));
}

#[test]
fn async_ingest_admits_into_the_event_engine() {
    let cfg = async_cfg(ModelKind::Ncf);
    let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .build()
        .unwrap();
    let n = s.split().num_users();
    s.run_epoch();
    let report = s.ingest(&[(n, 4), (n + 1, 8)]);
    assert_eq!(report.admitted, 2);
    let loss = s.run_epoch();
    assert!(loss.is_finite());
    assert_eq!(s.users().len(), n + 2);
}

#[test]
fn adaptive_beta_checkpoints_resume_bit_identically() {
    let mut cfg = async_cfg(ModelKind::Ncf);
    cfg.async_cfg.adaptive_beta = true;
    checkpoint_roundtrip_cfg(cfg, Strategy::HeteFedRec(Ablation::FULL), 3, 2);
}

#[test]
fn per_tier_latency_trains_and_checkpoints() {
    let per_tier = LatencyProfile::PerTier(Box::new([
        LatencyProfile::Fixed(2),
        LatencyProfile::Uniform { min: 3, max: 9 },
        LatencyProfile::LogNormal {
            median: 12.0,
            sigma: 0.4,
        },
    ]));
    // Synchronous: rounds cost the slowest tier draw.
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.latency = per_tier.clone();
    let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9))
        .build()
        .unwrap();
    let loss = s.run_epoch();
    assert!(loss.is_finite());
    assert!(s.clock() > 0);
    // Asynchronous: tier tags steer the event engine's draws, and the
    // whole thing survives checkpoint/resume.
    let mut cfg = async_cfg(ModelKind::Ncf);
    cfg.latency = per_tier;
    checkpoint_roundtrip_cfg(cfg, Strategy::HeteFedRec(Ablation::FULL), 3, 2);
}
