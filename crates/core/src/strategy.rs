//! Training strategies: HeteFedRec, its ablations, and the six baselines
//! of §V-C.

use hf_dataset::{ClientGroups, DivisionRatio, SplitDataset, Tier};

/// Ablation switches over HeteFedRec's three components (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Unified dual-task learning (Eq. 11).
    pub udl: bool,
    /// Dimensional decorrelation regularization (Eq. 13–14).
    pub ddr: bool,
    /// Relation-based ensemble self-distillation (Eq. 16–17).
    pub reskd: bool,
}

impl Ablation {
    /// Full HeteFedRec.
    pub const FULL: Ablation = Ablation {
        udl: true,
        ddr: true,
        reskd: true,
    };
    /// Table IV row "- RESKD".
    pub const NO_RESKD: Ablation = Ablation {
        udl: true,
        ddr: true,
        reskd: false,
    };
    /// Table IV row "- RESKD, DDR".
    pub const NO_RESKD_DDR: Ablation = Ablation {
        udl: true,
        ddr: false,
        reskd: false,
    };
    /// Table IV row "- RESKD, DDR, UDL" (equivalent to Directly Aggregate).
    pub const NONE: Ablation = Ablation {
        udl: false,
        ddr: false,
        reskd: false,
    };
}

/// A training strategy: HeteFedRec or one of the paper's baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's method, with ablation switches (full = all on).
    HeteFedRec(Ablation),
    /// Homogeneous: every client trains the small model.
    AllSmall,
    /// Homogeneous: every client trains the large model.
    AllLarge,
    /// Homogeneous large, but only `Um ∪ Ul` clients' updates aggregate.
    AllLargeExclusive,
    /// Heterogeneous sizes, no collaboration at all.
    Standalone,
    /// Heterogeneous sizes, aggregation only within each tier
    /// (clustered federated learning applied to FedRecs).
    ClusteredFedRec,
    /// Heterogeneous sizes, naive padded aggregation without UDL/DDR/RESKD.
    DirectlyAggregate,
}

impl Strategy {
    /// Every strategy in the paper's Table II order.
    pub const ALL: [Strategy; 7] = [
        Strategy::AllSmall,
        Strategy::AllLarge,
        Strategy::AllLargeExclusive,
        Strategy::Standalone,
        Strategy::ClusteredFedRec,
        Strategy::DirectlyAggregate,
        Strategy::HeteFedRec(Ablation::FULL),
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::HeteFedRec(Ablation::FULL) => "HeteFedRec(Ours)",
            Strategy::HeteFedRec(_) => "HeteFedRec(ablated)",
            Strategy::AllSmall => "All Small",
            Strategy::AllLarge => "All Large",
            Strategy::AllLargeExclusive => "All Large/Exclusive",
            Strategy::Standalone => "Standalone",
            Strategy::ClusteredFedRec => "Clustered FedRec",
            Strategy::DirectlyAggregate => "Directly Aggregate",
        }
    }

    /// Whether the paper classifies this as a heterogeneous method.
    pub fn is_heterogeneous(self) -> bool {
        !matches!(
            self,
            Strategy::AllSmall | Strategy::AllLarge | Strategy::AllLargeExclusive
        )
    }

    /// The effective ablation switches (baselines run everything off).
    pub fn ablation(self) -> Ablation {
        match self {
            Strategy::HeteFedRec(a) => a,
            _ => Ablation::NONE,
        }
    }

    /// Assigns every client its model tier.
    ///
    /// Homogeneous strategies pin one tier for everyone (the paper calls
    /// these the `10:0:0` / `0:0:10` divisions); heterogeneous strategies
    /// divide by training-data size under `ratio`. `AllLargeExclusive`
    /// models everyone as Large but still *divides* internally — the
    /// division defines whose updates are accepted.
    pub fn assign_tiers(self, split: &SplitDataset, ratio: DivisionRatio) -> ClientGroups {
        match self {
            Strategy::AllSmall => ClientGroups::uniform(split.num_users(), Tier::Small),
            Strategy::AllLarge => ClientGroups::uniform(split.num_users(), Tier::Large),
            _ => ClientGroups::divide(split, ratio),
        }
    }

    /// Whether `client_tier`'s upload participates in aggregation.
    pub fn accepts_update(self, data_tier: Tier) -> bool {
        match self {
            Strategy::AllLargeExclusive => data_tier != Tier::Small,
            Strategy::Standalone => false,
            _ => true,
        }
    }

    /// Whether item-embedding aggregation crosses tiers (padded sum) or
    /// stays within each tier.
    pub fn aggregates_across_tiers(self) -> bool {
        matches!(
            self,
            Strategy::HeteFedRec(_)
                | Strategy::DirectlyAggregate
                | Strategy::AllSmall
                | Strategy::AllLarge
                | Strategy::AllLargeExclusive
        )
    }
}

impl hf_tensor::ser::ToJson for Ablation {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("udl", &self.udl)
                .field("ddr", &self.ddr)
                .field("reskd", &self.reskd);
        });
    }
}

impl Ablation {
    /// Restores checkpointed ablation switches.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        Ok(Self {
            udl: v.get("udl")?.as_bool()?,
            ddr: v.get("ddr")?.as_bool()?,
            reskd: v.get("reskd")?.as_bool()?,
        })
    }
}

impl hf_tensor::ser::ToJson for Strategy {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            match self {
                Strategy::HeteFedRec(a) => o.field("kind", &"hetefedrec").field("ablation", a),
                Strategy::AllSmall => o.field("kind", &"all_small"),
                Strategy::AllLarge => o.field("kind", &"all_large"),
                Strategy::AllLargeExclusive => o.field("kind", &"all_large_exclusive"),
                Strategy::Standalone => o.field("kind", &"standalone"),
                Strategy::ClusteredFedRec => o.field("kind", &"clustered_fedrec"),
                Strategy::DirectlyAggregate => o.field("kind", &"directly_aggregate"),
            };
        });
    }
}

impl Strategy {
    /// Restores a checkpointed strategy.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let kind = v.get("kind")?.as_str()?;
        Ok(match kind {
            "hetefedrec" => Strategy::HeteFedRec(Ablation::from_json(v.get("ablation")?)?),
            "all_small" => Strategy::AllSmall,
            "all_large" => Strategy::AllLarge,
            "all_large_exclusive" => Strategy::AllLargeExclusive,
            "standalone" => Strategy::Standalone,
            "clustered_fedrec" => Strategy::ClusteredFedRec,
            "directly_aggregate" => Strategy::DirectlyAggregate,
            other => {
                return Err(hf_tensor::ser::JsonError::msg(format!(
                    "unknown strategy kind `{other}`"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_dataset::SyntheticConfig;

    fn split() -> SplitDataset {
        let d = SyntheticConfig::tiny().generate(1);
        SplitDataset::paper_split(&d, 1)
    }

    #[test]
    fn table_ii_ordering_and_names() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "All Small",
                "All Large",
                "All Large/Exclusive",
                "Standalone",
                "Clustered FedRec",
                "Directly Aggregate",
                "HeteFedRec(Ours)"
            ]
        );
    }

    #[test]
    fn homogeneous_vs_heterogeneous_classification() {
        assert!(!Strategy::AllSmall.is_heterogeneous());
        assert!(!Strategy::AllLargeExclusive.is_heterogeneous());
        assert!(Strategy::Standalone.is_heterogeneous());
        assert!(Strategy::HeteFedRec(Ablation::FULL).is_heterogeneous());
    }

    #[test]
    fn all_small_pins_small_tier() {
        let s = split();
        let g = Strategy::AllSmall.assign_tiers(&s, DivisionRatio::PAPER_DEFAULT);
        assert_eq!(g.sizes(), [s.num_users(), 0, 0]);
    }

    #[test]
    fn hetefedrec_divides_5_3_2() {
        let s = split();
        let g = Strategy::HeteFedRec(Ablation::FULL).assign_tiers(&s, DivisionRatio::PAPER_DEFAULT);
        let [small, medium, large] = g.sizes();
        let n = s.num_users();
        assert!(small > medium && medium > large, "{small} {medium} {large}");
        assert_eq!(small + medium + large, n);
    }

    #[test]
    fn exclusive_rejects_small_data_clients() {
        let st = Strategy::AllLargeExclusive;
        assert!(!st.accepts_update(Tier::Small));
        assert!(st.accepts_update(Tier::Medium));
        assert!(st.accepts_update(Tier::Large));
    }

    #[test]
    fn standalone_rejects_everything() {
        for t in Tier::ALL {
            assert!(!Strategy::Standalone.accepts_update(t));
        }
    }

    #[test]
    fn direct_aggregate_equals_fully_ablated_hetefedrec() {
        assert_eq!(Strategy::DirectlyAggregate.ablation(), Ablation::NONE);
        assert_eq!(
            Strategy::HeteFedRec(Ablation::NONE).ablation(),
            Ablation::NONE
        );
        assert!(Strategy::DirectlyAggregate.aggregates_across_tiers());
    }

    #[test]
    fn clustered_does_not_cross_tiers() {
        assert!(!Strategy::ClusteredFedRec.aggregates_across_tiers());
        assert!(Strategy::HeteFedRec(Ablation::FULL).aggregates_across_tiers());
    }

    #[test]
    fn strategies_roundtrip_through_json() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut all = Strategy::ALL.to_vec();
        all.push(Strategy::HeteFedRec(Ablation::NO_RESKD_DDR));
        for s in all {
            let back = Strategy::from_json(&parse_json(&s.to_json()).unwrap()).unwrap();
            assert_eq!(back, s);
        }
        assert!(Strategy::from_json(&parse_json(r#"{"kind":"bogus"}"#).unwrap()).is_err());
    }
}
