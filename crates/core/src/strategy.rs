//! Training strategies: HeteFedRec, its ablations, and the six baselines
//! of §V-C.

use hf_dataset::{ClientGroups, DivisionRatio, SplitDataset, Tier};

/// Ablation switches over HeteFedRec's three components (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Unified dual-task learning (Eq. 11).
    pub udl: bool,
    /// Dimensional decorrelation regularization (Eq. 13–14).
    pub ddr: bool,
    /// Relation-based ensemble self-distillation (Eq. 16–17).
    pub reskd: bool,
}

impl Ablation {
    /// Full HeteFedRec.
    pub const FULL: Ablation = Ablation {
        udl: true,
        ddr: true,
        reskd: true,
    };
    /// Table IV row "- RESKD".
    pub const NO_RESKD: Ablation = Ablation {
        udl: true,
        ddr: true,
        reskd: false,
    };
    /// Table IV row "- RESKD, DDR".
    pub const NO_RESKD_DDR: Ablation = Ablation {
        udl: true,
        ddr: false,
        reskd: false,
    };
    /// Table IV row "- RESKD, DDR, UDL" (equivalent to Directly Aggregate).
    pub const NONE: Ablation = Ablation {
        udl: false,
        ddr: false,
        reskd: false,
    };
}

/// A training strategy: HeteFedRec or one of the paper's baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's method, with ablation switches (full = all on).
    HeteFedRec(Ablation),
    /// Homogeneous: every client trains the small model.
    AllSmall,
    /// Homogeneous: every client trains the large model.
    AllLarge,
    /// Homogeneous large, but only `Um ∪ Ul` clients' updates aggregate.
    AllLargeExclusive,
    /// Heterogeneous sizes, no collaboration at all.
    Standalone,
    /// Heterogeneous sizes, aggregation only within each tier
    /// (clustered federated learning applied to FedRecs).
    ClusteredFedRec,
    /// Heterogeneous sizes, naive padded aggregation without UDL/DDR/RESKD.
    DirectlyAggregate,
}

impl Strategy {
    /// Every strategy in the paper's Table II order.
    pub const ALL: [Strategy; 7] = [
        Strategy::AllSmall,
        Strategy::AllLarge,
        Strategy::AllLargeExclusive,
        Strategy::Standalone,
        Strategy::ClusteredFedRec,
        Strategy::DirectlyAggregate,
        Strategy::HeteFedRec(Ablation::FULL),
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::HeteFedRec(Ablation::FULL) => "HeteFedRec(Ours)",
            Strategy::HeteFedRec(_) => "HeteFedRec(ablated)",
            Strategy::AllSmall => "All Small",
            Strategy::AllLarge => "All Large",
            Strategy::AllLargeExclusive => "All Large/Exclusive",
            Strategy::Standalone => "Standalone",
            Strategy::ClusteredFedRec => "Clustered FedRec",
            Strategy::DirectlyAggregate => "Directly Aggregate",
        }
    }

    /// Whether the paper classifies this as a heterogeneous method.
    pub fn is_heterogeneous(self) -> bool {
        !matches!(
            self,
            Strategy::AllSmall | Strategy::AllLarge | Strategy::AllLargeExclusive
        )
    }

    /// The effective ablation switches (baselines run everything off).
    pub fn ablation(self) -> Ablation {
        match self {
            Strategy::HeteFedRec(a) => a,
            _ => Ablation::NONE,
        }
    }

    /// Assigns every client its model tier.
    ///
    /// Homogeneous strategies pin one tier for everyone (the paper calls
    /// these the `10:0:0` / `0:0:10` divisions); heterogeneous strategies
    /// divide by training-data size under `ratio`. `AllLargeExclusive`
    /// models everyone as Large but still *divides* internally — the
    /// division defines whose updates are accepted.
    pub fn assign_tiers(self, split: &SplitDataset, ratio: DivisionRatio) -> ClientGroups {
        match self {
            Strategy::AllSmall => ClientGroups::uniform(split.num_users(), Tier::Small),
            Strategy::AllLarge => ClientGroups::uniform(split.num_users(), Tier::Large),
            _ => ClientGroups::divide(split, ratio),
        }
    }

    /// Whether `client_tier`'s upload participates in aggregation.
    pub fn accepts_update(self, data_tier: Tier) -> bool {
        match self {
            Strategy::AllLargeExclusive => data_tier != Tier::Small,
            Strategy::Standalone => false,
            _ => true,
        }
    }

    /// Whether item-embedding aggregation crosses tiers (padded sum) or
    /// stays within each tier.
    pub fn aggregates_across_tiers(self) -> bool {
        matches!(
            self,
            Strategy::HeteFedRec(_)
                | Strategy::DirectlyAggregate
                | Strategy::AllSmall
                | Strategy::AllLarge
                | Strategy::AllLargeExclusive
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_dataset::SyntheticConfig;

    fn split() -> SplitDataset {
        let d = SyntheticConfig::tiny().generate(1);
        SplitDataset::paper_split(&d, 1)
    }

    #[test]
    fn table_ii_ordering_and_names() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "All Small",
                "All Large",
                "All Large/Exclusive",
                "Standalone",
                "Clustered FedRec",
                "Directly Aggregate",
                "HeteFedRec(Ours)"
            ]
        );
    }

    #[test]
    fn homogeneous_vs_heterogeneous_classification() {
        assert!(!Strategy::AllSmall.is_heterogeneous());
        assert!(!Strategy::AllLargeExclusive.is_heterogeneous());
        assert!(Strategy::Standalone.is_heterogeneous());
        assert!(Strategy::HeteFedRec(Ablation::FULL).is_heterogeneous());
    }

    #[test]
    fn all_small_pins_small_tier() {
        let s = split();
        let g = Strategy::AllSmall.assign_tiers(&s, DivisionRatio::PAPER_DEFAULT);
        assert_eq!(g.sizes(), [s.num_users(), 0, 0]);
    }

    #[test]
    fn hetefedrec_divides_5_3_2() {
        let s = split();
        let g = Strategy::HeteFedRec(Ablation::FULL).assign_tiers(&s, DivisionRatio::PAPER_DEFAULT);
        let [small, medium, large] = g.sizes();
        let n = s.num_users();
        assert!(small > medium && medium > large, "{small} {medium} {large}");
        assert_eq!(small + medium + large, n);
    }

    #[test]
    fn exclusive_rejects_small_data_clients() {
        let st = Strategy::AllLargeExclusive;
        assert!(!st.accepts_update(Tier::Small));
        assert!(st.accepts_update(Tier::Medium));
        assert!(st.accepts_update(Tier::Large));
    }

    #[test]
    fn standalone_rejects_everything() {
        for t in Tier::ALL {
            assert!(!Strategy::Standalone.accepts_update(t));
        }
    }

    #[test]
    fn direct_aggregate_equals_fully_ablated_hetefedrec() {
        assert_eq!(Strategy::DirectlyAggregate.ablation(), Ablation::NONE);
        assert_eq!(
            Strategy::HeteFedRec(Ablation::NONE).ablation(),
            Ablation::NONE
        );
        assert!(Strategy::DirectlyAggregate.aggregates_across_tiers());
    }

    #[test]
    fn clustered_does_not_cross_tiers() {
        assert!(!Strategy::ClusteredFedRec.aggregates_across_tiers());
        assert!(Strategy::HeteFedRec(Ablation::FULL).aggregates_across_tiers());
    }
}
