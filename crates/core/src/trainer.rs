//! Legacy blocking training loop — a thin shim over [`crate::session`].
//!
//! [`Trainer`] predates the session API: it ran the federation loop as a
//! closed `train()` call with no round observability, no early stopping,
//! and no checkpoint/resume. It survives as a deprecated wrapper so
//! out-of-tree callers keep compiling; everything it did (and more) now
//! lives on [`Session`](crate::session::Session), built through
//! [`SessionBuilder`](crate::session::SessionBuilder).

pub use crate::session::{EpochRecord, History};

use crate::client::UserState;
use crate::config::TrainConfig;
use crate::eval::EvalOutput;
use crate::server::ServerState;
use crate::session::{Session, SessionBuilder};
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset};
use hf_fedsim::comm::CommLedger;

/// A full federated training run (deprecated shim over `Session`).
#[deprecated(
    since = "0.5.0",
    note = "use `SessionBuilder`/`Session`: typed round events, eval cadence, \
            early stopping, and checkpoint/resume"
)]
pub struct Trainer {
    session: Session,
}

#[allow(deprecated)]
impl Trainer {
    /// Builds a run: initialises public parameters, divides clients, and
    /// creates every client's private state.
    ///
    /// # Panics
    /// Panics on an invalid configuration — the historical behaviour.
    /// [`SessionBuilder::build`] returns the error instead.
    pub fn new(cfg: TrainConfig, strategy: Strategy, split: SplitDataset) -> Self {
        let session = SessionBuilder::new(cfg, strategy, split)
            .build()
            .unwrap_or_else(|e| panic!("invalid training configuration: {e}"));
        Self { session }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &TrainConfig {
        self.session.cfg()
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.session.strategy()
    }

    /// Server state (public parameters).
    pub fn server(&self) -> &ServerState {
        self.session.server()
    }

    /// The data-size division (Fig. 6 buckets).
    pub fn data_groups(&self) -> &ClientGroups {
        self.session.data_groups()
    }

    /// The model-tier assignment.
    pub fn model_groups(&self) -> &ClientGroups {
        self.session.model_groups()
    }

    /// Communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        self.session.ledger()
    }

    /// One client's private state.
    pub fn user_state(&self, user: usize) -> &UserState {
        self.session.user_state(user)
    }

    /// The split dataset this run trains on.
    pub fn split(&self) -> &SplitDataset {
        self.session.split()
    }

    /// History of completed epochs.
    pub fn history(&self) -> &History {
        self.session.history()
    }

    /// Runs one global epoch and returns the mean local training loss.
    ///
    /// Unlike the historical `Trainer`, the underlying session also
    /// evaluates at its cadence (default: every epoch) and records the
    /// history as it goes.
    pub fn run_epoch(&mut self) -> f64 {
        self.session.run_epoch()
    }

    /// Evaluates the current model state.
    pub fn evaluate(&self) -> EvalOutput {
        self.session.evaluate()
    }

    /// Runs `cfg.epochs` epochs, evaluating after each, and returns the
    /// accumulated history.
    pub fn train(&mut self) -> &History {
        self.session.run()
    }

    /// The underlying session, for incremental migration.
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Consumes the shim, yielding the session.
    pub fn into_session(self) -> Session {
        self.session
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_dataset::SyntheticConfig;
    use hf_models::ModelKind;

    fn tiny_split(seed: u64) -> SplitDataset {
        let data = SyntheticConfig::tiny().generate(seed);
        SplitDataset::paper_split(&data, seed)
    }

    #[test]
    fn shim_trains_like_the_session_it_wraps() {
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let mut t = Trainer::new(cfg.clone(), strategy, tiny_split(9));
        t.train();
        assert_eq!(t.history().epochs.len(), t.cfg().epochs);

        let mut s = SessionBuilder::new(cfg, strategy, tiny_split(9))
            .build()
            .unwrap();
        s.run();
        assert_eq!(
            t.history().final_eval().unwrap().overall.ndcg,
            s.final_eval().unwrap().overall.ndcg
        );
    }

    #[test]
    fn shim_supports_manual_epochs_and_accessors() {
        let mut t = Trainer::new(
            TrainConfig::test_default(ModelKind::Ncf),
            Strategy::AllSmall,
            tiny_split(9),
        );
        let loss = t.run_epoch();
        assert!(loss.is_finite() && loss > 0.0);
        assert!(t.ledger().uploads > 0);
        assert_eq!(t.model_groups().sizes()[0], t.split().num_users());
        let _ = t.user_state(0);
        assert!(t.evaluate().overall.users > 0);
        assert!(t.session().rounds_completed() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid training configuration")]
    fn shim_panics_on_bad_config_like_the_original() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = 0;
        let _ = Trainer::new(cfg, Strategy::AllSmall, tiny_split(9));
    }
}
