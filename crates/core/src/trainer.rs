//! The federated training loop (Algorithm 1).
//!
//! One [`Trainer`] owns everything a single experiment run needs: the
//! split dataset, the server's public parameters, every client's private
//! state, the round scheduler, and the communication ledger. Each *epoch*
//! shuffles the client queue and traverses it in rounds of
//! `clients_per_round` (§V-D); each *round* trains the selected clients in
//! parallel against a frozen snapshot of the public parameters, applies
//! the heterogeneous aggregation, and (for full HeteFedRec) runs one
//! server-side distillation step.

use crate::client::{train_client, ClientCtx, ClientOutcome, UserState};
use crate::config::TrainConfig;
use crate::eval::{evaluate, EvalOutput};
use crate::server::ServerState;
use crate::strategy::Strategy;
use hf_dataset::{ClientGroups, SplitDataset, Tier};
use hf_fedsim::comm::{CommLedger, RoundCost};
use hf_fedsim::faults::FaultInjector;
use hf_fedsim::parallel::parallel_map;
use hf_fedsim::scheduler::RoundScheduler;
use hf_fedsim::transport::ClientUpdate;
use hf_models::Ffn;

/// Per-epoch record for convergence curves (Fig. 7).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean local training loss across all client selections.
    pub train_loss: f64,
    /// Post-epoch evaluation.
    pub eval: EvalOutput,
}

impl hf_tensor::ser::ToJson for EpochRecord {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("epoch", &self.epoch)
                .field("train_loss", &self.train_loss)
                .field("eval", &self.eval);
        });
    }
}

/// Metric history across a training run.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// One record per completed epoch.
    pub epochs: Vec<EpochRecord>,
}

impl hf_tensor::ser::ToJson for History {
    fn write_json(&self, out: &mut String) {
        self.epochs.write_json(out);
    }
}

impl History {
    /// The best NDCG reached and the epoch it occurred in.
    pub fn best_ndcg(&self) -> Option<(usize, f64)> {
        self.epochs
            .iter()
            .map(|e| (e.epoch, e.eval.overall.ndcg))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("ndcg finite"))
    }

    /// The final epoch's evaluation.
    pub fn final_eval(&self) -> Option<&EvalOutput> {
        self.epochs.last().map(|e| &e.eval)
    }
}

/// A full federated training run.
pub struct Trainer {
    cfg: TrainConfig,
    strategy: Strategy,
    split: SplitDataset,
    server: ServerState,
    users: Vec<UserState>,
    /// Tier each client's *model* has (strategy-dependent).
    model_groups: ClientGroups,
    /// Tier each client's *data volume* implies (always the ratio
    /// division; drives Fig. 6 reporting and exclusive filtering).
    data_groups: ClientGroups,
    scheduler: RoundScheduler,
    faults: FaultInjector,
    ledger: CommLedger,
    round_counter: u64,
    history: History,
}

impl Trainer {
    /// Builds a run: initialises public parameters, divides clients, and
    /// creates every client's private state.
    pub fn new(cfg: TrainConfig, strategy: Strategy, split: SplitDataset) -> Self {
        let server = ServerState::new(split.num_items(), &cfg, strategy);
        let model_groups = strategy.assign_tiers(&split, cfg.ratio);
        let data_groups = ClientGroups::divide(&split, cfg.ratio);
        let users = (0..split.num_users())
            .map(|u| {
                let tier = model_groups.tier(u);
                let standalone_theta =
                    matches!(strategy, Strategy::Standalone).then(|| server.theta(tier).clone());
                UserState::init(u, cfg.dims.dim(tier), &cfg, standalone_theta)
            })
            .collect();
        let scheduler = RoundScheduler::new(split.num_users(), cfg.clients_per_round, cfg.seed);
        let faults = if cfg.drop_prob > 0.0 {
            FaultInjector::new(cfg.seed, cfg.drop_prob)
        } else {
            FaultInjector::disabled()
        };
        Self {
            cfg,
            strategy,
            split,
            server,
            users,
            model_groups,
            data_groups,
            scheduler,
            faults,
            ledger: CommLedger::default(),
            round_counter: 0,
            history: History::default(),
        }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Server state (public parameters).
    pub fn server(&self) -> &ServerState {
        &self.server
    }

    /// The data-size division (Fig. 6 buckets).
    pub fn data_groups(&self) -> &ClientGroups {
        &self.data_groups
    }

    /// The model-tier assignment.
    pub fn model_groups(&self) -> &ClientGroups {
        &self.model_groups
    }

    /// Communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// One client's private state (user embedding and, in standalone
    /// mode, its local model) — the serving path reads this.
    pub fn user_state(&self, user: usize) -> &UserState {
        &self.users[user]
    }

    /// The split dataset this run trains on.
    pub fn split(&self) -> &SplitDataset {
        &self.split
    }

    /// History of completed epochs.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Runs one global epoch (a full traversal of the client queue) and
    /// returns the mean local training loss.
    pub fn run_epoch(&mut self) -> f64 {
        let rounds = self.scheduler.next_epoch();
        let mut loss_sum = 0.0;
        let mut sample_sum = 0usize;
        for round in rounds {
            self.round_counter += 1;
            let (loss, samples) = self.run_round(&round);
            loss_sum += loss;
            sample_sum += samples;
        }
        if sample_sum == 0 {
            0.0
        } else {
            loss_sum / sample_sum as f64
        }
    }

    /// Executes one round over the given client cohort.
    fn run_round(&mut self, cohort: &[usize]) -> (f64, usize) {
        let udl = self.strategy.ablation().udl;
        // Per-tier download bundles, cloned once per round.
        let tier_thetas: [Vec<Ffn>; 3] = [
            self.server.thetas_for(Tier::Small, udl),
            self.server.thetas_for(Tier::Medium, udl),
            self.server.thetas_for(Tier::Large, udl),
        ];
        let tier_tags: [Vec<Tier>; 3] = [
            theta_tiers(Tier::Small, udl),
            theta_tiers(Tier::Medium, udl),
            theta_tiers(Tier::Large, udl),
        ];

        let cfg = &self.cfg;
        let strategy = self.strategy;
        let split = &self.split;
        let server = &self.server;
        let users = &self.users;
        let model_groups = &self.model_groups;
        let round_key = self.round_counter;

        let outcomes: Vec<ClientOutcome> = parallel_map(cohort, cfg.threads, |&uid| {
            let tier = model_groups.tier(uid);
            let ctx = ClientCtx {
                cfg,
                strategy,
                split,
                user_id: uid,
                model_tier: tier,
                table: server.table(tier),
                thetas: &tier_thetas[tier.index()],
                theta_tiers: &tier_tags[tier.index()],
                round_key,
            };
            train_client(&ctx, &users[uid])
        });

        let mut accepted: Vec<(Tier, ClientUpdate)> = Vec::new();
        let mut loss_sum = 0.0;
        let mut sample_sum = 0usize;
        for (&uid, outcome) in cohort.iter().zip(outcomes) {
            let model_tier = self.model_groups.tier(uid);
            let data_tier = self.data_groups.tier(uid);
            // Download accounting: tier table + every downloaded predictor.
            let theta_sizes: Vec<usize> = tier_thetas[model_tier.index()]
                .iter()
                .map(Ffn::num_params)
                .collect();
            let download = RoundCost::dense(
                self.split.num_items(),
                self.cfg.dims.dim(model_tier),
                &theta_sizes,
            );
            self.ledger.record_download(download.bytes());

            loss_sum += outcome.loss;
            sample_sum += outcome.samples;
            self.users[uid] = outcome.state;

            if self.strategy.accepts_update(data_tier)
                && !self.faults.drops(self.round_counter, uid)
                && !(outcome.update.items.is_empty() && outcome.update.thetas.is_empty())
            {
                self.ledger.record_upload(outcome.update.encoded_len());
                accepted.push((model_tier, outcome.update));
            }
        }

        self.server.apply_round(&accepted);
        if self.strategy.ablation().reskd {
            self.server.distill(&self.cfg.kd, self.cfg.threads);
        }
        (loss_sum, sample_sum)
    }

    /// Evaluates the current model state.
    pub fn evaluate(&self) -> EvalOutput {
        evaluate(
            &self.cfg,
            self.strategy,
            &self.split,
            &self.server,
            &self.users,
            &self.model_groups,
            &self.data_groups,
        )
    }

    /// Runs `cfg.epochs` epochs, evaluating after each, and returns the
    /// accumulated history.
    pub fn train(&mut self) -> &History {
        for epoch in 1..=self.cfg.epochs {
            let train_loss = self.run_epoch();
            let eval = self.evaluate();
            self.history.epochs.push(EpochRecord {
                epoch,
                train_loss,
                eval,
            });
        }
        &self.history
    }
}

/// Tier tags for the predictors a client of `tier` holds.
fn theta_tiers(tier: Tier, udl: bool) -> Vec<Tier> {
    if udl {
        Tier::ALL[..=tier.index()].to_vec()
    } else {
        vec![tier]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Ablation;
    use hf_dataset::SyntheticConfig;
    use hf_models::ModelKind;

    fn tiny_split(seed: u64) -> SplitDataset {
        let data = SyntheticConfig::tiny().generate(seed);
        SplitDataset::paper_split(&data, seed)
    }

    fn trainer(strategy: Strategy, model: ModelKind) -> Trainer {
        let cfg = TrainConfig::test_default(model);
        Trainer::new(cfg, strategy, tiny_split(9))
    }

    #[test]
    fn one_epoch_trains_and_returns_finite_loss() {
        let mut t = trainer(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let loss = t.run_epoch();
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
    }

    #[test]
    fn training_improves_over_random_init() {
        let mut t = trainer(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let before = t.evaluate();
        for _ in 0..4 {
            t.run_epoch();
        }
        let after = t.evaluate();
        assert!(
            after.overall.ndcg > before.overall.ndcg,
            "before {:.5}, after {:.5}",
            before.overall.ndcg,
            after.overall.ndcg
        );
    }

    #[test]
    fn history_records_every_epoch() {
        let mut t = trainer(Strategy::AllSmall, ModelKind::Ncf);
        t.train();
        assert_eq!(t.history().epochs.len(), t.cfg().epochs);
        assert!(t.history().best_ndcg().is_some());
        assert!(t.history().final_eval().is_some());
    }

    #[test]
    fn eq10_holds_through_training_without_reskd() {
        let mut t = trainer(Strategy::HeteFedRec(Ablation::NO_RESKD), ModelKind::Ncf);
        t.run_epoch();
        t.run_epoch();
        assert!(
            t.server().eq10_violation() < 1e-4,
            "violation {}",
            t.server().eq10_violation()
        );
    }

    #[test]
    fn standalone_never_changes_server_tables() {
        let mut t = trainer(Strategy::Standalone, ModelKind::Ncf);
        let before = t.server().table(Tier::Small).clone();
        t.run_epoch();
        assert_eq!(*t.server().table(Tier::Small), before);
        // But private state advanced.
        assert!(t.users.iter().any(|u| u
            .standalone
            .as_ref()
            .map(|s| !s.rows.is_empty())
            .unwrap_or(false)));
    }

    #[test]
    fn ledger_accumulates_traffic() {
        let mut t = trainer(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        t.run_epoch();
        let ledger = t.ledger();
        assert!(ledger.downloads as usize >= t.split.num_users());
        assert!(ledger.uploads > 0);
        assert!(ledger.upload_bytes > 0);
    }

    #[test]
    fn exclusive_strategy_filters_small_data_clients() {
        let mut t = trainer(Strategy::AllLargeExclusive, ModelKind::Ncf);
        t.run_epoch();
        // Uploads recorded only for Um ∪ Ul clients.
        let expected = t.data_groups().sizes()[1] + t.data_groups().sizes()[2];
        assert_eq!(t.ledger().uploads as usize, expected);
    }

    #[test]
    fn fault_injection_drops_roughly_the_configured_fraction() {
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.drop_prob = 0.5;
        let mut t = Trainer::new(cfg, Strategy::AllSmall, tiny_split(9));
        t.run_epoch();
        let uploads = t.ledger().uploads as f64;
        let population = t.split.num_users() as f64;
        let rate = uploads / population;
        assert!((0.2..0.8).contains(&rate), "upload rate {rate}");
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        let mut cfg1 = TrainConfig::test_default(ModelKind::Ncf);
        cfg1.threads = 1;
        let mut cfg2 = cfg1.clone();
        cfg2.threads = 4;
        let mut a = Trainer::new(cfg1, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9));
        let mut b = Trainer::new(cfg2, Strategy::HeteFedRec(Ablation::FULL), tiny_split(9));
        a.run_epoch();
        b.run_epoch();
        let ea = a.evaluate();
        let eb = b.evaluate();
        assert_eq!(ea.overall.ndcg, eb.overall.ndcg);
        assert_eq!(ea.overall.recall, eb.overall.recall);
    }

    #[test]
    fn lightgcn_trains_end_to_end() {
        let mut t = trainer(Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn);
        let loss = t.run_epoch();
        assert!(loss.is_finite() && loss > 0.0);
        let eval = t.evaluate();
        assert!(eval.overall.users > 0);
    }
}
