//! Million-scale synthetic serving profiles.
//!
//! The latent-factor generator in [`crate::synthetic`] buys statistical
//! fidelity with an `O(num_items)` Gumbel-top-k pass *per user* — fine
//! at paper scale, hopeless at a million users × a million items (10¹²
//! scores). Capacity work needs the opposite trade: a
//! [`SyntheticProfile`] whose per-user cost is `O(interactions)`, so
//! million-scale artifacts can be synthesized in seconds, while keeping
//! the two properties serving capacity actually exercises — a
//! **heavy-tailed per-user interaction count** (capped Pareto) and a
//! **Zipf-skewed item popularity** (inverse-CDF sampling; low item ids
//! are the head — the profile makes no attempt to decorrelate id order
//! from popularity, it is a load shape, not a learning benchmark).
//!
//! Determinism contract: [`SyntheticProfile::user`] is a pure function
//! of `(profile, seed, user id)` — each user draws from its own
//! [`substream`], in a fixed draw order — so a streaming artifact
//! builder that visits users once and an eager builder that materialises
//! all of them produce **identical** records, and any subset of users
//! can be regenerated without the rest.

use crate::grouping::Tier;
use crate::types::ItemId;
use hf_tensor::rng::{substream, Rng, SeedStream};

/// Purpose key for the capacity-profile RNG streams (distinct from every
/// other [`SeedStream::Custom`] user in the workspace).
const PROFILE_STREAM: u64 = 0x6361_7061; // "capa"

/// A deterministic million-scale serving-load profile.
#[derive(Clone, Debug)]
pub struct SyntheticProfile {
    /// Number of users.
    pub num_users: usize,
    /// Item-universe size.
    pub num_items: usize,
    /// Fraction of users per tier `[small, medium, large]`; must sum to
    /// ~1. Users draw their tier independently from this mix.
    pub tier_mix: [f64; 3],
    /// Mean of the per-user interaction count (before capping).
    pub mean_interactions: f64,
    /// Hard cap on per-user interactions (bounds record size).
    pub max_interactions: usize,
    /// Zipf exponent `s ∈ [0, 1)` of item popularity; higher
    /// concentrates interactions on the head (low ids).
    pub zipf_exponent: f64,
}

impl SyntheticProfile {
    /// A profile with the default shape (`tier mix 50/30/20`, mean 20
    /// interactions capped at 512, Zipf 0.7) at the given scale.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        Self {
            num_users,
            num_items,
            tier_mix: [0.5, 0.3, 0.2],
            mean_interactions: 20.0,
            max_interactions: 512,
            zipf_exponent: 0.7,
        }
    }

    /// Sanity-checks the profile shape (positive universe, usable tier
    /// mix, Zipf exponent below 1 so the inverse CDF is defined).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_users == 0 || self.num_items < 2 {
            return Err("profile needs at least 1 user and 2 items".into());
        }
        let total: f64 = self.tier_mix.iter().sum();
        if self.tier_mix.iter().any(|&p| p < 0.0) || (total - 1.0).abs() > 1e-6 {
            return Err(format!(
                "tier mix must be non-negative and sum to 1, got {total}"
            ));
        }
        if !(0.0..1.0).contains(&self.zipf_exponent) {
            return Err("zipf exponent must be in [0, 1)".into());
        }
        if self.mean_interactions < 1.0 || self.max_interactions == 0 {
            return Err("profile needs at least one interaction per user".into());
        }
        Ok(())
    }

    /// One user's load shape: serving tier and sorted, deduplicated
    /// interaction list. Pure in `(self, seed, user)` — `O(interactions)`
    /// work, independent of every other user.
    pub fn user(&self, seed: u64, user: usize) -> (Tier, Vec<ItemId>) {
        let mut rng = substream(seed, SeedStream::Custom(PROFILE_STREAM), user as u64 + 1);
        // Fixed draw order: tier, count, then items — so adding draws
        // later stays an explicit format change, not a silent one.
        let tier = self.draw_tier(&mut rng);
        let n = self.draw_count(&mut rng);
        let items = self.draw_items(n, &mut rng);
        (tier, items)
    }

    fn draw_tier(&self, rng: &mut impl Rng) -> Tier {
        let x: f64 = rng.gen::<f64>() * self.tier_mix.iter().sum::<f64>();
        if x < self.tier_mix[0] {
            Tier::Small
        } else if x < self.tier_mix[0] + self.tier_mix[1] {
            Tier::Medium
        } else {
            Tier::Large
        }
    }

    /// Capped Pareto count: shape `α = 2` with minimum `m = mean/2`, so
    /// `E[X] = α·m/(α-1) = mean` while the `1/x²` tail survives the cap
    /// nearly intact (truncation shaves `m²/cap` off the mean — under 1%
    /// at the defaults). Clamped to `[1, max_interactions]` and to half
    /// the catalogue (so distinct-item sampling stays cheap).
    fn draw_count(&self, rng: &mut impl Rng) -> usize {
        let m = self.mean_interactions / 2.0;
        let u: f64 = (1.0 - rng.gen::<f64>()).max(1e-12); // (0, 1]
        let x = m / u.sqrt(); // inverse CDF of Pareto(α = 2, m)
        let cap = self.max_interactions.min(self.num_items / 2).max(1);
        (x.round() as usize).clamp(1, cap)
    }

    /// `n` distinct items, Zipf-skewed toward low ids, sorted ascending.
    /// Inverse-CDF draw: for rank CDF `∝ r^(1-s)`,
    /// `r = N·U^(1/(1-s))`. Duplicates retry (bounded: `n` is at most
    /// half the catalogue, so each retry succeeds with probability ≥ ½).
    fn draw_items(&self, n: usize, rng: &mut impl Rng) -> Vec<ItemId> {
        let inv = 1.0 / (1.0 - self.zipf_exponent);
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < n {
            let u: f64 = rng.gen::<f64>();
            let r = (self.num_items as f64 * u.powf(inv)) as usize;
            picked.insert(r.min(self.num_items - 1) as ItemId);
        }
        picked.into_iter().collect()
    }

    /// Total interactions across a user range (used for progress and
    /// analytic size estimates without materialising records twice).
    pub fn interactions_in(&self, seed: u64, users: std::ops::Range<usize>) -> u64 {
        users.map(|u| self.user(seed, u).1.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_user_generation_is_pure_and_order_free() {
        let p = SyntheticProfile::new(500, 2_000);
        // Same (seed, user) twice → identical; and regenerating user 321
        // alone matches a full forward sweep (no cross-user state).
        let sweep: Vec<_> = (0..500).map(|u| p.user(99, u)).collect();
        for u in [0, 1, 321, 499] {
            assert_eq!(p.user(99, u), sweep[u], "user {u}");
        }
        assert_ne!(p.user(99, 3), p.user(100, 3), "seed must matter");
    }

    #[test]
    fn records_are_sorted_distinct_and_bounded() {
        let p = SyntheticProfile::new(300, 1_000);
        for u in 0..300 {
            let (_, items) = p.user(5, u);
            assert!(!items.is_empty() && items.len() <= p.max_interactions);
            assert!(
                items.windows(2).all(|w| w[0] < w[1]),
                "user {u} not sorted-distinct"
            );
            assert!(items.iter().all(|&i| (i as usize) < p.num_items));
        }
    }

    #[test]
    fn tier_mix_and_popularity_are_shaped() {
        let p = SyntheticProfile::new(4_000, 10_000);
        let mut tiers = [0usize; 3];
        let mut head = 0u64;
        let mut total = 0u64;
        for u in 0..p.num_users {
            let (tier, items) = p.user(7, u);
            tiers[tier.index()] += 1;
            total += items.len() as u64;
            head += items
                .iter()
                .filter(|&&i| (i as usize) < p.num_items / 10)
                .count() as u64;
        }
        for (t, &want) in p.tier_mix.iter().enumerate() {
            let got = tiers[t] as f64 / p.num_users as f64;
            assert!((got - want).abs() < 0.05, "tier {t}: {got} vs {want}");
        }
        // Zipf 0.7: top 10% of ids should hold well over 10% of mass.
        assert!(head as f64 > 0.3 * total as f64, "head {head} of {total}");
        // Pareto mean lands near the target despite the cap.
        let mean = total as f64 / p.num_users as f64;
        assert!((mean - p.mean_interactions).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn validate_rejects_degenerate_profiles() {
        assert!(SyntheticProfile::new(0, 100).validate().is_err());
        assert!(SyntheticProfile::new(10, 1).validate().is_err());
        let mut p = SyntheticProfile::new(10, 100);
        p.tier_mix = [0.9, 0.2, 0.2];
        assert!(p.validate().is_err());
        let mut p = SyntheticProfile::new(10, 100);
        p.zipf_exponent = 1.0;
        assert!(p.validate().is_err());
        assert!(SyntheticProfile::new(10, 100).validate().is_ok());
    }
}
