//! Client division into small / medium / large groups.
//!
//! Paper §IV-A: clients are categorised into `Us`, `Um`, `Ul` by the scale
//! of their user-item interactions; §V-D fixes the default proportion at
//! `5:3:2` (RQ4 also studies `1:1:1` and `2:3:5`). Division is by rank:
//! after sorting clients by training-interaction count ascending, the
//! first `x/(x+y+z)` fraction becomes `Us`, the next `y/(x+y+z)` becomes
//! `Um`, and the rest `Ul`.

use crate::split::SplitDataset;
use crate::types::UserId;

/// Model-size tier of a client (paper's `Us`/`Um`/`Ul`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Small clients (`Us`): fewest interactions, smallest model.
    Small,
    /// Medium clients (`Um`).
    Medium,
    /// Large clients (`Ul`): most interactions, largest model.
    Large,
}

impl Tier {
    /// All tiers, ascending.
    pub const ALL: [Tier; 3] = [Tier::Small, Tier::Medium, Tier::Large];

    /// Index into `[Ns, Nm, Nl]`-style arrays.
    pub fn index(self) -> usize {
        match self {
            Tier::Small => 0,
            Tier::Medium => 1,
            Tier::Large => 2,
        }
    }

    /// Paper-style group label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Small => "Us",
            Tier::Medium => "Um",
            Tier::Large => "Ul",
        }
    }
}

/// A division ratio `x:y:z` over (small, medium, large).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DivisionRatio {
    /// Small-group weight.
    pub small: u32,
    /// Medium-group weight.
    pub medium: u32,
    /// Large-group weight.
    pub large: u32,
}

impl DivisionRatio {
    /// The paper's default conservative division.
    pub const PAPER_DEFAULT: DivisionRatio = DivisionRatio {
        small: 5,
        medium: 3,
        large: 2,
    };
    /// The neutral division studied in RQ4.
    pub const NEUTRAL: DivisionRatio = DivisionRatio {
        small: 1,
        medium: 1,
        large: 1,
    };
    /// The optimistic division studied in RQ4.
    pub const OPTIMISTIC: DivisionRatio = DivisionRatio {
        small: 2,
        medium: 3,
        large: 5,
    };

    /// Creates a ratio; at least one weight must be positive.
    pub fn new(small: u32, medium: u32, large: u32) -> Self {
        assert!(small + medium + large > 0, "ratio weights sum to zero");
        Self {
            small,
            medium,
            large,
        }
    }

    /// Paper-style display, e.g. `5:3:2`.
    pub fn label(&self) -> String {
        format!("{}:{}:{}", self.small, self.medium, self.large)
    }

    /// Restores a checkpointed ratio.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let read = |key: &str| -> Result<u32, hf_tensor::ser::JsonError> {
            let x = v.get(key)?.as_u64()?;
            u32::try_from(x)
                .map_err(|_| hf_tensor::ser::JsonError::msg(format!("{key} overflows u32")))
        };
        let (small, medium, large) = (read("small")?, read("medium")?, read("large")?);
        if small + medium + large == 0 {
            return Err(hf_tensor::ser::JsonError::msg("ratio weights sum to zero"));
        }
        Ok(Self {
            small,
            medium,
            large,
        })
    }

    /// Cut points `(n_small, n_small + n_medium)` for `n` clients, using
    /// largest-remainder rounding so group sizes always sum to `n`.
    fn cuts(&self, n: usize) -> (usize, usize) {
        let total = (self.small + self.medium + self.large) as f64;
        let n_small = ((n as f64) * (self.small as f64) / total).round() as usize;
        let n_medium = ((n as f64) * (self.medium as f64) / total).round() as usize;
        let n_small = n_small.min(n);
        let n_medium = n_medium.min(n - n_small);
        (n_small, n_small + n_medium)
    }
}

impl hf_tensor::ser::ToJson for DivisionRatio {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("small", &self.small)
                .field("medium", &self.medium)
                .field("large", &self.large);
        });
    }
}

/// The result of dividing clients into tiers.
#[derive(Clone, Debug)]
pub struct ClientGroups {
    tiers: Vec<Tier>,
    /// Interaction-count thresholds `(p_small_max, p_medium_max)` implied
    /// by the division — reported alongside Table I's `<50%`/`<80%`.
    pub thresholds: (usize, usize),
}

impl ClientGroups {
    /// Divides clients by ascending training-interaction count under the
    /// given ratio.
    pub fn divide(split: &SplitDataset, ratio: DivisionRatio) -> Self {
        let counts = split.train_counts();
        Self::divide_by_counts(&counts, ratio)
    }

    /// Division from raw per-client counts (exposed for tests and tools).
    pub fn divide_by_counts(counts: &[usize], ratio: DivisionRatio) -> Self {
        let n = counts.len();
        let mut order: Vec<UserId> = (0..n).collect();
        // Stable tie-break on user id keeps the division deterministic.
        order.sort_by_key(|&u| (counts[u], u));

        let (cut1, cut2) = ratio.cuts(n);
        let mut tiers = vec![Tier::Small; n];
        for (rank, &u) in order.iter().enumerate() {
            tiers[u] = if rank < cut1 {
                Tier::Small
            } else if rank < cut2 {
                Tier::Medium
            } else {
                Tier::Large
            };
        }
        let t_small = if cut1 > 0 { counts[order[cut1 - 1]] } else { 0 };
        let t_medium = if cut2 > 0 { counts[order[cut2 - 1]] } else { 0 };
        Self {
            tiers,
            thresholds: (t_small, t_medium),
        }
    }

    /// Assigns every client to one tier (used by the `All Small` /
    /// `All Large` homogeneous baselines, which the paper describes as the
    /// `10:0:0` and `0:0:10` divisions).
    pub fn uniform(num_users: usize, tier: Tier) -> Self {
        Self {
            tiers: vec![tier; num_users],
            thresholds: (0, 0),
        }
    }

    /// Tier of one client.
    pub fn tier(&self, u: UserId) -> Tier {
        self.tiers[u]
    }

    /// Per-client tier indices (0/1/2) — the representation layers without
    /// a [`Tier`] type (simulators, checkpoints) consume.
    pub fn tier_indices(&self) -> Vec<u8> {
        self.tiers.iter().map(|t| t.index() as u8).collect()
    }

    /// Rebuilds a division from checkpointed [`ClientGroups::tier_indices`]
    /// plus its frozen thresholds.
    pub fn from_tier_indices(indices: &[u8], thresholds: (usize, usize)) -> Result<Self, String> {
        let tiers = indices
            .iter()
            .map(|&i| match i {
                0 => Ok(Tier::Small),
                1 => Ok(Tier::Medium),
                2 => Ok(Tier::Large),
                other => Err(format!("tier index {other} out of range")),
            })
            .collect::<Result<Vec<Tier>, String>>()?;
        Ok(Self { tiers, thresholds })
    }

    /// Tier a newly admitted client with `count` training interactions
    /// falls into under this division's frozen thresholds. Existing
    /// members are never re-ranked — admission extends the division, it
    /// does not recompute it.
    pub fn tier_for_count(&self, count: usize) -> Tier {
        let (t_small, t_medium) = self.thresholds;
        if count <= t_small {
            Tier::Small
        } else if count <= t_medium {
            Tier::Medium
        } else {
            Tier::Large
        }
    }

    /// Appends one newly admitted client with the given tier, returning
    /// its id.
    pub fn admit(&mut self, tier: Tier) -> UserId {
        self.tiers.push(tier);
        self.tiers.len() - 1
    }

    /// Number of clients.
    pub fn num_users(&self) -> usize {
        self.tiers.len()
    }

    /// All members of a tier, ascending user id.
    pub fn members(&self, tier: Tier) -> Vec<UserId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tier)
            .map(|(u, _)| u)
            .collect()
    }

    /// Group sizes `[|Us|, |Um|, |Ul|]`.
    pub fn sizes(&self) -> [usize; 3] {
        let mut s = [0usize; 3];
        for &t in &self.tiers {
            s[t.index()] += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratio_partitions_5_3_2() {
        let counts: Vec<usize> = (0..100).collect();
        let g = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        assert_eq!(g.sizes(), [50, 30, 20]);
    }

    #[test]
    fn smaller_counts_land_in_smaller_tiers() {
        let counts = vec![100, 1, 50, 2, 75, 3, 60, 4, 90, 5];
        let g = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        // The five smallest counts (1..=5) are at odd indices.
        for u in [1, 3, 5, 7, 9] {
            assert_eq!(g.tier(u), Tier::Small, "user {u}");
        }
        assert_eq!(g.tier(0), Tier::Large);
    }

    #[test]
    fn sizes_always_sum_to_n() {
        for n in [1usize, 2, 3, 7, 10, 99, 1000] {
            let counts: Vec<usize> = (0..n).map(|i| i * 3 % 17).collect();
            for ratio in [
                DivisionRatio::PAPER_DEFAULT,
                DivisionRatio::NEUTRAL,
                DivisionRatio::OPTIMISTIC,
            ] {
                let g = ClientGroups::divide_by_counts(&counts, ratio);
                assert_eq!(
                    g.sizes().iter().sum::<usize>(),
                    n,
                    "n={n} ratio={:?}",
                    ratio
                );
            }
        }
    }

    #[test]
    fn neutral_ratio_splits_evenly() {
        let counts: Vec<usize> = (0..99).collect();
        let g = ClientGroups::divide_by_counts(&counts, DivisionRatio::NEUTRAL);
        assert_eq!(g.sizes(), [33, 33, 33]);
    }

    #[test]
    fn thresholds_bound_the_groups() {
        let counts: Vec<usize> = (0..200).map(|i| i % 97).collect();
        let g = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        let (t_small, t_medium) = g.thresholds;
        for u in 0..counts.len() {
            match g.tier(u) {
                Tier::Small => assert!(counts[u] <= t_small),
                Tier::Medium => assert!(counts[u] <= t_medium),
                Tier::Large => assert!(counts[u] >= t_small),
            }
        }
    }

    #[test]
    fn uniform_assignment() {
        let g = ClientGroups::uniform(10, Tier::Large);
        assert_eq!(g.sizes(), [0, 0, 10]);
        assert_eq!(g.members(Tier::Large).len(), 10);
    }

    #[test]
    fn division_is_deterministic_under_ties() {
        let counts = vec![5usize; 30];
        let a = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        let b = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        for u in 0..30 {
            assert_eq!(a.tier(u), b.tier(u));
        }
    }

    #[test]
    fn tier_indices_roundtrip_and_admission_extends() {
        let counts = vec![1usize, 10, 100, 2, 50];
        let mut g = ClientGroups::divide_by_counts(&counts, DivisionRatio::PAPER_DEFAULT);
        let back = ClientGroups::from_tier_indices(&g.tier_indices(), g.thresholds).unwrap();
        for u in 0..counts.len() {
            assert_eq!(g.tier(u), back.tier(u));
        }
        assert!(ClientGroups::from_tier_indices(&[0, 3], (0, 0)).is_err());

        let before: Vec<Tier> = (0..counts.len()).map(|u| g.tier(u)).collect();
        let tier = g.tier_for_count(1);
        assert_eq!(tier, Tier::Small, "one interaction lands in Us");
        let id = g.admit(tier);
        assert_eq!(id, counts.len());
        assert_eq!(g.tier(id), Tier::Small);
        // Admission never re-ranks existing members.
        for (u, &t) in before.iter().enumerate() {
            assert_eq!(g.tier(u), t);
        }
        let (_, t_medium) = g.thresholds;
        assert_eq!(g.tier_for_count(t_medium + 1), Tier::Large);
    }

    #[test]
    fn tier_labels_match_paper() {
        assert_eq!(Tier::Small.label(), "Us");
        assert_eq!(Tier::Medium.label(), "Um");
        assert_eq!(Tier::Large.label(), "Ul");
        assert_eq!(DivisionRatio::PAPER_DEFAULT.label(), "5:3:2");
    }
}
