//! # hf-dataset
//!
//! Implicit-feedback recommendation datasets for the HeteFedRec
//! reproduction.
//!
//! The paper evaluates on MovieLens-1M, Anime, and Douban-Book. Those raw
//! dumps are not redistributable inside this offline build, so this crate
//! provides **statistically calibrated synthetic substitutes** (see
//! `DESIGN.md` §2): a latent-factor interaction generator whose
//! per-profile parameters reproduce Table I — user/item counts,
//! interaction totals, mean interaction counts, and the p50/p80 thresholds
//! the paper uses to split clients into small/medium/large groups — plus
//! the heavy-tailed per-user distribution shown in Fig. 1.
//!
//! Crucially the generator embeds a *ground-truth latent factor model*
//! (clustered users and items), so collaborative-filtering signal actually
//! exists: federated aggregation beats isolated training, and clients with
//! more data genuinely support larger models — the phenomena every
//! experiment in the paper depends on.
//!
//! Module map:
//! * [`types`] — [`ImplicitDataset`] and friends.
//! * [`synthetic`] — the latent-factor generator.
//! * [`capacity`] — `O(interactions)`-per-user million-scale profiles.
//! * [`profiles`] — ML / Anime / Douban calibrations (Table I).
//! * [`split`] — 80/20 train-test plus 10% validation (paper §V-A).
//! * [`negative`] — 1:4 negative sampling (paper §V-A).
//! * [`grouping`] — client division into `Us/Um/Ul` (paper §IV-A, RQ4).
//! * [`stats`] — Table I statistics and Fig. 1 histograms.

#![warn(missing_docs)]

pub mod capacity;
pub mod grouping;
pub mod negative;
pub mod profiles;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod types;

pub use capacity::SyntheticProfile;
pub use grouping::{ClientGroups, DivisionRatio, Tier};
pub use negative::NegativeSampler;
pub use profiles::DatasetProfile;
pub use split::SplitDataset;
pub use stats::DatasetStats;
pub use synthetic::SyntheticConfig;
pub use types::ImplicitDataset;
