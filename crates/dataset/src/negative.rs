//! Negative sampling for implicit feedback.
//!
//! Paper §V-A: "negative instances are sampled with a ratio of 1:4" —
//! for every observed positive, four items the user has not interacted
//! with are drawn as `r_ij = 0` samples. Sampling happens on-device during
//! local training (a client knows only its own positives), so the sampler
//! borrows a user's positive set and rejects collisions against it.

use crate::split::UserSplit;
use crate::types::ItemId;
use hf_tensor::rng::Rng;

/// Uniform negative sampler over the item universe with rejection against
/// a user's local positives.
#[derive(Clone, Copy, Debug)]
pub struct NegativeSampler {
    num_items: usize,
    /// Negatives drawn per positive (paper: 4).
    pub ratio: usize,
}

impl NegativeSampler {
    /// Creates a sampler for a universe of `num_items` items.
    ///
    /// # Panics
    /// Panics if the universe is empty or the ratio is zero.
    pub fn new(num_items: usize, ratio: usize) -> Self {
        assert!(
            num_items > 1,
            "cannot sample negatives from a universe of {num_items}"
        );
        assert!(ratio > 0, "ratio must be positive");
        Self { num_items, ratio }
    }

    /// Paper-default 1:4 sampler.
    pub fn paper_default(num_items: usize) -> Self {
        Self::new(num_items, 4)
    }

    /// Draws one negative for `user`: an item that is not among the user's
    /// train/validation positives.
    ///
    /// Rejection sampling is safe here: real users interact with a tiny
    /// fraction of the universe, and a 4096-attempt guard converts a
    /// pathological dense user into a clean panic instead of a hang.
    pub fn sample_one(&self, user: &UserSplit, rng: &mut impl Rng) -> ItemId {
        for _ in 0..4096 {
            let candidate = rng.gen_range(0..self.num_items) as ItemId;
            if !user.is_local_positive(candidate) {
                return candidate;
            }
        }
        panic!("user has interacted with nearly the whole universe; cannot sample a negative");
    }

    /// Draws `ratio` negatives for one positive, appending to `out`
    /// (allocation-free in the hot training loop).
    pub fn sample_for_positive(&self, user: &UserSplit, rng: &mut impl Rng, out: &mut Vec<ItemId>) {
        for _ in 0..self.ratio {
            out.push(self.sample_one(user, rng));
        }
    }

    /// Builds the full `(item, label)` training stream for one user's
    /// epoch: every train positive followed by `ratio` negatives.
    pub fn build_epoch(&self, user: &UserSplit, rng: &mut impl Rng) -> (Vec<ItemId>, Vec<f32>) {
        let n = user.train.len() * (1 + self.ratio);
        let mut items = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut negs = Vec::with_capacity(self.ratio);
        for &pos in &user.train {
            items.push(pos);
            labels.push(1.0);
            negs.clear();
            self.sample_for_positive(user, rng, &mut negs);
            for &neg in &negs {
                items.push(neg);
                labels.push(0.0);
            }
        }
        (items, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, SeedStream};

    fn user(train: Vec<ItemId>, valid: Vec<ItemId>) -> UserSplit {
        UserSplit {
            train,
            valid,
            test: vec![],
        }
    }

    #[test]
    fn negatives_avoid_local_positives() {
        let u = user(vec![0, 1, 2], vec![3]);
        let sampler = NegativeSampler::new(10, 4);
        let mut rng = stream(1, SeedStream::Negatives);
        for _ in 0..200 {
            let n = sampler.sample_one(&u, &mut rng);
            assert!(n >= 4, "sampled positive {n}");
        }
    }

    #[test]
    fn epoch_stream_has_paper_ratio() {
        let u = user(vec![0, 5, 9], vec![]);
        let sampler = NegativeSampler::paper_default(100);
        let mut rng = stream(2, SeedStream::Negatives);
        let (items, labels) = sampler.build_epoch(&u, &mut rng);
        assert_eq!(items.len(), 3 * 5);
        assert_eq!(labels.iter().filter(|&&l| l == 1.0).count(), 3);
        assert_eq!(labels.iter().filter(|&&l| l == 0.0).count(), 12);
        // Positives appear at stride 5.
        assert_eq!(items[0], 0);
        assert_eq!(items[5], 5);
        assert_eq!(items[10], 9);
    }

    #[test]
    fn epoch_is_deterministic_per_rng() {
        let u = user(vec![1, 2], vec![]);
        let sampler = NegativeSampler::paper_default(50);
        let a = sampler.build_epoch(&u, &mut stream(7, SeedStream::Negatives));
        let b = sampler.build_epoch(&u, &mut stream(7, SeedStream::Negatives));
        assert_eq!(a, b);
    }

    #[test]
    fn negatives_cover_the_universe() {
        let u = user(vec![0], vec![]);
        let sampler = NegativeSampler::new(5, 4);
        let mut rng = stream(3, SeedStream::Negatives);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[sampler.sample_one(&u, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn rejects_tiny_universe() {
        let _ = NegativeSampler::new(1, 4);
    }

    #[test]
    #[should_panic(expected = "whole universe")]
    fn dense_user_panics_cleanly() {
        let u = user((0..10).collect(), vec![]);
        let sampler = NegativeSampler::new(10, 1);
        let mut rng = stream(4, SeedStream::Negatives);
        let _ = sampler.sample_one(&u, &mut rng);
    }
}
