//! Dataset profiles calibrated to the paper's Table I.
//!
//! | Dataset | Users  | Items | Interactions | Avg. | <50% | <80% |
//! |---------|--------|-------|--------------|------|------|------|
//! | ML      | 6,040  | 3,706 | 1,000,209    | 165  | 77   | 203  |
//! | Anime   | 10,482 | 6,888 | 1,265,530    | 120  | 69   | 150  |
//! | Douban  | 1,833  | 7,397 | 330,268      | 180  | 115  | 244  |
//!
//! The synthetic generator is calibrated from the median (`<50%`) and mean
//! (`Avg.`) columns; the `<80%` percentile then falls out of the log-normal
//! shape (within ~10%, verified by tests and reported by
//! `table1_stats`). Each profile also provides *scaled* variants so that
//! the experiment harness can run quickly at reduced size while preserving
//! all distributional shape parameters.

use crate::synthetic::SyntheticConfig;

/// The three evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// MovieLens-1M: movie ratings.
    MovieLens,
    /// Anime (MyAnimeList watching records).
    Anime,
    /// Douban-Book subset.
    Douban,
}

impl DatasetProfile {
    /// All profiles, in the paper's column order.
    pub const ALL: [DatasetProfile; 3] = [
        DatasetProfile::MovieLens,
        DatasetProfile::Anime,
        DatasetProfile::Douban,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::MovieLens => "ML",
            DatasetProfile::Anime => "Anime",
            DatasetProfile::Douban => "Douban",
        }
    }

    /// Paper-reported user count (Table I).
    pub fn paper_users(self) -> usize {
        match self {
            DatasetProfile::MovieLens => 6_040,
            DatasetProfile::Anime => 10_482,
            DatasetProfile::Douban => 1_833,
        }
    }

    /// Paper-reported item count (Table I).
    pub fn paper_items(self) -> usize {
        match self {
            DatasetProfile::MovieLens => 3_706,
            DatasetProfile::Anime => 6_888,
            DatasetProfile::Douban => 7_397,
        }
    }

    /// Paper-reported interaction count (Table I).
    pub fn paper_interactions(self) -> usize {
        match self {
            DatasetProfile::MovieLens => 1_000_209,
            DatasetProfile::Anime => 1_265_530,
            DatasetProfile::Douban => 330_268,
        }
    }

    /// Paper-reported mean interactions per user (Table I "Avg.").
    pub fn paper_mean(self) -> f64 {
        match self {
            DatasetProfile::MovieLens => 165.0,
            DatasetProfile::Anime => 120.0,
            DatasetProfile::Douban => 180.0,
        }
    }

    /// Paper-reported median (Table I "<50%").
    pub fn paper_p50(self) -> f64 {
        match self {
            DatasetProfile::MovieLens => 77.0,
            DatasetProfile::Anime => 69.0,
            DatasetProfile::Douban => 115.0,
        }
    }

    /// Paper-reported 80th percentile (Table I "<80%").
    pub fn paper_p80(self) -> f64 {
        match self {
            DatasetProfile::MovieLens => 203.0,
            DatasetProfile::Anime => 150.0,
            DatasetProfile::Douban => 244.0,
        }
    }

    /// Paper's embedding dimensions `{Ns, Nm, Nl}` for this dataset
    /// (§V-D: ML/Anime use {8,16,32}; Douban uses {32,64,128}).
    pub fn paper_dims(self) -> [usize; 3] {
        match self {
            DatasetProfile::MovieLens | DatasetProfile::Anime => [8, 16, 32],
            DatasetProfile::Douban => [32, 64, 128],
        }
    }

    /// Full-scale synthetic configuration for this profile.
    pub fn config(self) -> SyntheticConfig {
        self.config_scaled(1.0)
    }

    /// Synthetic configuration scaled to `fraction` of the paper's user and
    /// item counts (distributional parameters unchanged). `fraction = 1.0`
    /// is the paper scale.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn config_scaled(self, fraction: f64) -> SyntheticConfig {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        // At reduced item-universe sizes, very large per-user counts would
        // exhaust the universe and be clamped, distorting the calibrated
        // mean. A mild fourth-root shrink keeps per-user counts close to
        // the paper's (so "small-data clients can't train large models"
        // still holds at reduced scale) while bounding tail clamping.
        let count_scale = fraction.powf(0.25);
        SyntheticConfig {
            num_users: ((self.paper_users() as f64) * fraction).round().max(30.0) as usize,
            num_items: ((self.paper_items() as f64) * fraction).round().max(60.0) as usize,
            median_interactions: (self.paper_p50() * count_scale).max(4.0),
            mean_interactions: (self.paper_mean() * count_scale).max(6.0),
            min_interactions: 5,
            latent_dim: 24,
            num_clusters: 16,
            cluster_spread: 0.45,
            zipf_exponent: 0.9,
            popularity_weight: 0.4,
            temperature: 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_are_consistent() {
        // Avg. ≈ interactions / users for every profile (Table I internal
        // consistency check).
        for p in DatasetProfile::ALL {
            let implied = p.paper_interactions() as f64 / p.paper_users() as f64;
            assert!(
                (implied - p.paper_mean()).abs() < 1.0,
                "{}: implied mean {implied} vs reported {}",
                p.name(),
                p.paper_mean()
            );
        }
    }

    #[test]
    fn full_scale_config_matches_paper_counts() {
        let cfg = DatasetProfile::MovieLens.config();
        assert_eq!(cfg.num_users, 6_040);
        assert_eq!(cfg.num_items, 3_706);
        assert_eq!(cfg.mean_interactions, 165.0);
        assert_eq!(cfg.median_interactions, 77.0);
    }

    #[test]
    fn scaled_config_shrinks_proportionally() {
        let cfg = DatasetProfile::Anime.config_scaled(0.1);
        assert_eq!(cfg.num_users, 1_048);
        assert_eq!(cfg.num_items, 689);
        assert!(cfg.mean_interactions < 120.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        let _ = DatasetProfile::Douban.config_scaled(0.0);
    }

    #[test]
    fn dims_follow_section_v_d() {
        assert_eq!(DatasetProfile::MovieLens.paper_dims(), [8, 16, 32]);
        assert_eq!(DatasetProfile::Anime.paper_dims(), [8, 16, 32]);
        assert_eq!(DatasetProfile::Douban.paper_dims(), [32, 64, 128]);
    }

    #[test]
    fn scaled_generation_hits_p80_shape() {
        // With the log-normal calibrated on (median, mean), the implied p80
        // should land near the paper's reported <80% column. Verify on the
        // analytic distribution: p80 = exp(mu + 0.8416 sigma).
        for p in DatasetProfile::ALL {
            let (mu, sigma) = p.config().lognormal_params();
            let p80 = (mu + 0.841_621 * sigma).exp();
            let rel = (p80 - p.paper_p80()).abs() / p.paper_p80();
            assert!(
                rel < 0.25,
                "{}: implied p80 {p80} vs paper {}",
                p.name(),
                p.paper_p80()
            );
        }
    }

    #[test]
    fn small_generation_smoke() {
        let d = DatasetProfile::MovieLens.config_scaled(0.02).generate(1);
        assert!(d.num_users() > 50);
        assert!(d.num_interactions() > d.num_users() * 4);
    }
}
