//! Train / validation / test splitting.
//!
//! Paper §V-A: "for each dataset, 80% of data and 20% of data are used as
//! training and test set. When a client is selected for training, 10% of
//! its training data will be used as the validation set to guide the local
//! training." Splits are per-user (the client owns all of its data) and
//! deterministic given the seed.

use crate::types::{ImplicitDataset, ItemId, UserId};
use hf_tensor::rng::{substream, SeedStream};

/// A user's split interaction data.
#[derive(Clone, Debug, Default)]
pub struct UserSplit {
    /// Training positives (sorted).
    pub train: Vec<ItemId>,
    /// Validation positives carved out of train (sorted).
    pub valid: Vec<ItemId>,
    /// Held-out test positives (sorted).
    pub test: Vec<ItemId>,
}

impl UserSplit {
    /// Training-set size (excluding validation).
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// `true` iff `item` is a train or validation positive (the set a
    /// client may not sample as a negative).
    pub fn is_local_positive(&self, item: ItemId) -> bool {
        self.train.binary_search(&item).is_ok() || self.valid.binary_search(&item).is_ok()
    }
}

/// Dataset with per-user train/valid/test splits.
#[derive(Clone, Debug)]
pub struct SplitDataset {
    num_items: usize,
    users: Vec<UserSplit>,
}

impl SplitDataset {
    /// Splits `dataset` with the paper's ratios: `test_frac` of each user's
    /// interactions held out for testing (paper: 0.2) and `valid_frac` of
    /// the remaining training data reserved for validation (paper: 0.1).
    ///
    /// Users with a single interaction keep it in train (an empty local
    /// training set would make the client untrainable); at least one train
    /// item is always retained.
    pub fn split(dataset: &ImplicitDataset, test_frac: f64, valid_frac: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&test_frac), "test_frac in [0,1)");
        assert!((0.0..1.0).contains(&valid_frac), "valid_frac in [0,1)");
        let users = dataset
            .iter_users()
            .map(|(u, ints)| {
                let mut items: Vec<ItemId> = ints.items().to_vec();
                let mut rng = substream(seed, SeedStream::Split, u as u64);
                hf_tensor::rng::shuffle(&mut items, &mut rng);

                let n = items.len();
                let n_test = ((n as f64) * test_frac).floor() as usize;
                let n_test = n_test.min(n.saturating_sub(1));
                let test: Vec<ItemId> = items.drain(..n_test).collect();

                let n_valid = ((items.len() as f64) * valid_frac).floor() as usize;
                let n_valid = n_valid.min(items.len().saturating_sub(1));
                let valid: Vec<ItemId> = items.drain(..n_valid).collect();

                let mut split = UserSplit {
                    train: items,
                    valid,
                    test,
                };
                split.train.sort_unstable();
                split.valid.sort_unstable();
                split.test.sort_unstable();
                split
            })
            .collect();
        Self {
            num_items: dataset.num_items(),
            users,
        }
    }

    /// Paper-default split: 80/20 train/test, 10% of train as validation.
    pub fn paper_split(dataset: &ImplicitDataset, seed: u64) -> Self {
        Self::split(dataset, 0.2, 0.1, seed)
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Item-universe size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// A user's split.
    pub fn user(&self, u: UserId) -> &UserSplit {
        &self.users[u]
    }

    /// Iterator over `(user id, split)`.
    pub fn iter_users(&self) -> impl Iterator<Item = (UserId, &UserSplit)> {
        self.users.iter().enumerate()
    }

    /// Per-user training-set sizes — the quantity client division is based
    /// on (paper groups clients by interaction amounts).
    pub fn train_counts(&self) -> Vec<usize> {
        self.users.iter().map(|u| u.train.len()).collect()
    }

    /// Ingests one streamed interaction as a training positive.
    ///
    /// `user == num_users()` admits a brand-new user whose split starts as
    /// `train = [item]` with empty validation and test sets (so evaluation
    /// skips it until held-out data exists). For existing users the item
    /// is inserted into the sorted training set; duplicates are ignored.
    /// Returns `true` iff the dataset changed.
    ///
    /// # Panics
    /// Panics when `item` is outside the item universe or `user` would
    /// leave a gap in the contiguous user-id space.
    pub fn ingest(&mut self, user: UserId, item: ItemId) -> bool {
        assert!(
            (item as usize) < self.num_items,
            "item {item} outside the {}-item universe",
            self.num_items
        );
        assert!(
            user <= self.users.len(),
            "user {user} would leave a gap (population is {})",
            self.users.len()
        );
        if user == self.users.len() {
            self.users.push(UserSplit {
                train: vec![item],
                valid: Vec::new(),
                test: Vec::new(),
            });
            return true;
        }
        let train = &mut self.users[user].train;
        match train.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                train.insert(pos, item);
                true
            }
        }
    }

    /// Total train/valid/test sizes.
    pub fn totals(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for u in &self.users {
            t.0 += u.train.len();
            t.1 += u.valid.len();
            t.2 += u.test.len();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn dataset() -> ImplicitDataset {
        SyntheticConfig::tiny().generate(11)
    }

    #[test]
    fn split_partitions_each_user() {
        let d = dataset();
        let s = SplitDataset::paper_split(&d, 5);
        for (u, split) in s.iter_users() {
            let mut all: Vec<ItemId> = split
                .train
                .iter()
                .chain(&split.valid)
                .chain(&split.test)
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(all, d.user(u).items(), "user {u} not partitioned");
        }
    }

    #[test]
    fn ratios_are_respected_in_aggregate() {
        let d = dataset();
        let s = SplitDataset::paper_split(&d, 5);
        let (train, valid, test) = s.totals();
        let total = (train + valid + test) as f64;
        let test_frac = test as f64 / total;
        let valid_frac = valid as f64 / (train + valid) as f64;
        assert!((test_frac - 0.2).abs() < 0.05, "test fraction {test_frac}");
        assert!(
            (valid_frac - 0.1).abs() < 0.05,
            "valid fraction {valid_frac}"
        );
    }

    #[test]
    fn every_user_keeps_a_train_item() {
        let d = ImplicitDataset::new(10, vec![vec![0], vec![1, 2], vec![3, 4, 5]]);
        let s = SplitDataset::split(&d, 0.5, 0.5, 1);
        for (u, split) in s.iter_users() {
            assert!(!split.train.is_empty(), "user {u} lost all train items");
        }
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset();
        let a = SplitDataset::paper_split(&d, 9);
        let b = SplitDataset::paper_split(&d, 9);
        for u in 0..d.num_users() {
            assert_eq!(a.user(u).train, b.user(u).train);
            assert_eq!(a.user(u).test, b.user(u).test);
        }
    }

    #[test]
    fn different_seeds_split_differently() {
        let d = dataset();
        let a = SplitDataset::paper_split(&d, 1);
        let b = SplitDataset::paper_split(&d, 2);
        let same = (0..d.num_users()).all(|u| a.user(u).test == b.user(u).test);
        assert!(!same);
    }

    #[test]
    fn local_positive_covers_train_and_valid_only() {
        let d = dataset();
        let s = SplitDataset::paper_split(&d, 5);
        let (u, split) = s.iter_users().find(|(_, s)| !s.test.is_empty()).unwrap();
        let _ = u;
        assert!(split.is_local_positive(split.train[0]));
        if let Some(&v) = split.valid.first() {
            assert!(split.is_local_positive(v));
        }
        assert!(!split.is_local_positive(split.test[0]));
    }

    #[test]
    fn ingest_appends_sorted_and_admits_new_users() {
        let d = ImplicitDataset::new(10, vec![vec![1, 5], vec![2, 7, 9]]);
        let mut s = SplitDataset::split(&d, 0.0, 0.0, 1);
        let before = s.user(0).train.clone();
        assert!(s.ingest(0, 3));
        assert!(!s.ingest(0, 3), "duplicate ingests are no-ops");
        let after = &s.user(0).train;
        assert!(after.windows(2).all(|w| w[0] < w[1]), "train stays sorted");
        assert_eq!(after.len(), before.len() + 1);

        assert!(s.ingest(2, 4), "user == num_users admits");
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.user(2).train, vec![4]);
        assert!(s.user(2).valid.is_empty() && s.user(2).test.is_empty());
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn ingest_rejects_non_contiguous_users() {
        let d = ImplicitDataset::new(10, vec![vec![1]]);
        let mut s = SplitDataset::split(&d, 0.0, 0.0, 1);
        let _ = s.ingest(5, 2);
    }

    #[test]
    #[should_panic(expected = "test_frac")]
    fn rejects_full_test_fraction() {
        let d = dataset();
        let _ = SplitDataset::split(&d, 1.0, 0.1, 0);
    }
}
