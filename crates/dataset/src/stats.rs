//! Dataset statistics: Table I rows and Fig. 1 histograms.

use crate::types::ImplicitDataset;

/// The statistics reported per dataset in the paper's Table I.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Total interactions.
    pub interactions: usize,
    /// Mean interactions per user ("Avg.").
    pub mean: f64,
    /// Median interactions per user ("<50%").
    pub p50: usize,
    /// 80th-percentile interactions per user ("<80%").
    pub p80: usize,
    /// Standard deviation of per-user counts (quoted in the introduction).
    pub std_dev: f64,
}

impl DatasetStats {
    /// Computes the Table I row for a dataset.
    pub fn compute(dataset: &ImplicitDataset) -> Self {
        let mut counts = dataset.interaction_counts();
        counts.sort_unstable();
        let n = counts.len();
        let interactions: usize = counts.iter().sum();
        let mean = if n > 0 {
            interactions as f64 / n as f64
        } else {
            0.0
        };
        let var = if n > 0 {
            counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64
        } else {
            0.0
        };
        Self {
            users: n,
            items: dataset.num_items(),
            interactions,
            mean,
            p50: percentile(&counts, 0.50),
            p80: percentile(&counts, 0.80),
            std_dev: var.sqrt(),
        }
    }

    /// Formats this row like Table I.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<8} {:>7} {:>7} {:>11} {:>6.0} {:>6} {:>6}",
            self.users, self.items, self.interactions, self.mean, self.p50, self.p80
        )
    }
}

impl hf_tensor::ser::ToJson for DatasetStats {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("users", &self.users)
                .field("items", &self.items)
                .field("interactions", &self.interactions)
                .field("mean", &self.mean)
                .field("p50", &self.p50)
                .field("p80", &self.p80)
                .field("std_dev", &self.std_dev);
        });
    }
}

/// Value at quantile `q` of an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Histogram of per-user interaction counts — the data behind Fig. 1.
#[derive(Clone, Debug)]
pub struct InteractionHistogram {
    /// Inclusive lower edge of each bin.
    pub bin_edges: Vec<usize>,
    /// Users per bin.
    pub counts: Vec<usize>,
    /// Bin width.
    pub bin_width: usize,
}

impl InteractionHistogram {
    /// Builds a fixed-width histogram with `num_bins` bins spanning
    /// `[0, max_count]`.
    pub fn compute(dataset: &ImplicitDataset, num_bins: usize) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        let counts = dataset.interaction_counts();
        let max = counts.iter().copied().max().unwrap_or(0);
        let bin_width = (max / num_bins).max(1);
        let n_bins = max / bin_width + 1;
        let mut bins = vec![0usize; n_bins];
        for c in counts {
            bins[c / bin_width] += 1;
        }
        Self {
            bin_edges: (0..n_bins).map(|b| b * bin_width).collect(),
            counts: bins,
            bin_width,
        }
    }

    /// Renders an ASCII bar chart (the reproduction's version of Fig. 1).
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (edge, &count) in self.bin_edges.iter().zip(&self.counts) {
            let bar = (count * max_width).div_ceil(peak);
            out.push_str(&format!(
                "{:>6}-{:<6} |{:<width$}| {count}\n",
                edge,
                edge + self.bin_width - 1,
                "#".repeat(bar),
                width = max_width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn stats_on_toy_dataset() {
        let d = ImplicitDataset::new(
            10,
            vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![6, 7, 8, 9]],
        );
        let s = DatasetStats::compute(&d);
        assert_eq!(s.users, 4);
        assert_eq!(s.items, 10);
        assert_eq!(s.interactions, 10);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.p50, 2);
        assert_eq!(s.p80, 4);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5);
        assert_eq!(percentile(&v, 0.8), 8);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn profile_generation_approximates_table1() {
        // Scaled-down generation should still land near the scaled targets.
        let cfg = DatasetProfile::MovieLens.config_scaled(0.05);
        let d = cfg.generate(17);
        let s = DatasetStats::compute(&d);
        let rel_mean = (s.mean - cfg.mean_interactions).abs() / cfg.mean_interactions;
        assert!(
            rel_mean < 0.25,
            "mean {} vs target {}",
            s.mean,
            cfg.mean_interactions
        );
        let rel_p50 = (s.p50 as f64 - cfg.median_interactions).abs() / cfg.median_interactions;
        assert!(
            rel_p50 < 0.3,
            "p50 {} vs target {}",
            s.p50,
            cfg.median_interactions
        );
    }

    #[test]
    fn histogram_partitions_users() {
        let d = SyntheticConfig::tiny().generate(2);
        let h = InteractionHistogram::compute(&d, 10);
        assert_eq!(h.counts.iter().sum::<usize>(), d.num_users());
    }

    #[test]
    fn histogram_is_skewed_for_lognormal_counts() {
        let mut cfg = SyntheticConfig::tiny();
        cfg.num_users = 500;
        cfg.num_items = 800;
        cfg.mean_interactions = 40.0;
        cfg.median_interactions = 22.0;
        let d = cfg.generate(3);
        let h = InteractionHistogram::compute(&d, 20);
        // The mode should be in the lower third of bins (Fig. 1 shape).
        let peak_bin = h
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            peak_bin < h.counts.len() / 3,
            "peak bin {peak_bin} of {}",
            h.counts.len()
        );
    }

    #[test]
    fn render_produces_one_line_per_bin() {
        let d = SyntheticConfig::tiny().generate(4);
        let h = InteractionHistogram::compute(&d, 8);
        let txt = h.render(30);
        assert_eq!(txt.lines().count(), h.counts.len());
    }

    #[test]
    fn table_row_formats() {
        let d = SyntheticConfig::tiny().generate(5);
        let s = DatasetStats::compute(&d);
        let row = s.table_row("Tiny");
        assert!(row.contains("Tiny"));
    }
}
