//! Latent-factor synthetic interaction generator.
//!
//! Substitutes for the paper's three real datasets (DESIGN.md §2). The
//! generator has three properties the experiments require:
//!
//! 1. **Heavy-tailed per-user interaction counts** (Fig. 1): counts are
//!    drawn from a log-normal whose median and mean are calibrated to the
//!    target profile, reproducing the p50/p80 thresholds of Table I.
//! 2. **Learnable collaborative structure**: users and items carry
//!    ground-truth latent vectors drawn around shared cluster centroids;
//!    a user interacts preferentially with items whose latent vectors
//!    align with theirs. Matrix-factorisation-style models can therefore
//!    genuinely learn from aggregated signal.
//! 3. **Skewed item popularity**: a Zipf popularity boost concentrates
//!    interactions on head items, as in every real recommendation dataset.
//!
//! Selection uses Gumbel-top-k: `score + Gumbel noise`, take the top
//! `n_u`, which is equivalent to sampling `n_u` items without replacement
//! from the softmax of the scores (Plackett–Luce), in one `O(|V|)` pass
//! per user.

use crate::types::{ImplicitDataset, ItemId};
use hf_tensor::rng::Rng;
use hf_tensor::rng::{stream, substream, SeedStream};

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of users (federated clients).
    pub num_users: usize,
    /// Item-universe size.
    pub num_items: usize,
    /// Median of the per-user interaction count distribution (Table I "<50%").
    pub median_interactions: f64,
    /// Mean of the per-user interaction count distribution (Table I "Avg.").
    pub mean_interactions: f64,
    /// Lower clamp on per-user counts (every client must train something).
    pub min_interactions: usize,
    /// Ground-truth latent dimensionality.
    pub latent_dim: usize,
    /// Number of user/item clusters ("genres").
    pub num_clusters: usize,
    /// Std of latent vectors around their cluster centroid; smaller means
    /// crisper collaborative structure.
    pub cluster_spread: f32,
    /// Zipf exponent for item popularity (0 disables the popularity boost).
    pub zipf_exponent: f32,
    /// Weight of the popularity boost relative to latent affinity.
    pub popularity_weight: f32,
    /// Softmax temperature on affinity scores; lower is more deterministic.
    pub temperature: f32,
}

impl SyntheticConfig {
    /// A small, fast configuration for tests and examples.
    pub fn tiny() -> Self {
        Self {
            num_users: 60,
            num_items: 120,
            median_interactions: 12.0,
            mean_interactions: 20.0,
            min_interactions: 4,
            latent_dim: 8,
            num_clusters: 4,
            cluster_spread: 0.35,
            zipf_exponent: 0.8,
            popularity_weight: 0.5,
            temperature: 0.4,
        }
    }

    /// Log-normal parameters `(mu, sigma)` matching the configured median
    /// and mean: `median = exp(mu)`, `mean = exp(mu + sigma²/2)`.
    pub fn lognormal_params(&self) -> (f64, f64) {
        assert!(
            self.mean_interactions >= self.median_interactions,
            "a log-normal requires mean >= median"
        );
        let mu = self.median_interactions.ln();
        let sigma = (2.0 * (self.mean_interactions / self.median_interactions).ln()).sqrt();
        (mu, sigma)
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ImplicitDataset {
        assert!(
            self.num_users > 0 && self.num_items > 1,
            "degenerate universe"
        );
        assert!(self.num_clusters > 0, "need at least one cluster");
        let mut rng = stream(seed, SeedStream::Dataset);

        // Ground-truth cluster centroids, shared between users and items so
        // that affinity has signal.
        let centroids: Vec<Vec<f32>> = (0..self.num_clusters)
            .map(|_| sample_unit_vector(self.latent_dim, &mut rng))
            .collect();

        let item_latents: Vec<Vec<f32>> = (0..self.num_items)
            .map(|_| {
                let c = rng.gen_range(0..self.num_clusters);
                perturb(&centroids[c], self.cluster_spread, &mut rng)
            })
            .collect();

        // Zipf popularity over a random item permutation so that item id
        // order carries no information.
        let mut pop_rank: Vec<usize> = (0..self.num_items).collect();
        hf_tensor::rng::shuffle(&mut pop_rank, &mut rng);
        let log_pop: Vec<f32> = {
            let mut lp = vec![0.0_f32; self.num_items];
            for (rank, &item) in pop_rank.iter().enumerate() {
                lp[item] = -self.zipf_exponent * ((rank + 1) as f32).ln();
            }
            lp
        };

        let (mu, sigma) = self.lognormal_params();
        let max_count = self.num_items.saturating_sub(1).max(self.min_interactions);

        let per_user: Vec<Vec<ItemId>> = (0..self.num_users)
            .map(|u| {
                // Per-user substream: independent of user iteration order.
                let mut urng = substream(seed, SeedStream::Dataset, u as u64 + 1);
                let c = urng.gen_range(0..self.num_clusters);
                let latent = perturb(&centroids[c], self.cluster_spread, &mut urng);
                let n = sample_lognormal_count(mu, sigma, &mut urng)
                    .clamp(self.min_interactions, max_count);
                self.select_items(&latent, &item_latents, &log_pop, n, &mut urng)
            })
            .collect();

        ImplicitDataset::new(self.num_items, per_user)
    }

    /// Gumbel-top-k selection of `n` items for one user.
    fn select_items(
        &self,
        user_latent: &[f32],
        item_latents: &[Vec<f32>],
        log_pop: &[f32],
        n: usize,
        rng: &mut impl Rng,
    ) -> Vec<ItemId> {
        let inv_temp = 1.0 / self.temperature.max(1e-3);
        let mut keys: Vec<(f32, ItemId)> = item_latents
            .iter()
            .enumerate()
            .map(|(i, latent)| {
                let affinity = hf_tensor::ops::dot(user_latent, latent);
                let score =
                    inv_temp * (affinity + self.popularity_weight * log_pop[i]) + gumbel(rng);
                (score, i as ItemId)
            })
            .collect();
        let n = n.min(keys.len());
        keys.select_nth_unstable_by(n.saturating_sub(1), |a, b| {
            b.0.partial_cmp(&a.0).expect("scores are finite")
        });
        keys.truncate(n);
        keys.into_iter().map(|(_, i)| i).collect()
    }
}

/// Uniformly random unit vector.
fn sample_unit_vector(dim: usize, rng: &mut impl Rng) -> Vec<f32> {
    let v = hf_tensor::init::normal_vec(dim, 1.0, rng);
    let norm = hf_tensor::ops::l2_norm(&v).max(1e-6);
    v.into_iter().map(|x| x / norm).collect()
}

/// Centroid plus isotropic Gaussian noise.
fn perturb(center: &[f32], spread: f32, rng: &mut impl Rng) -> Vec<f32> {
    let noise = hf_tensor::init::normal_vec(center.len(), spread, rng);
    center.iter().zip(noise).map(|(c, n)| c + n).collect()
}

/// One log-normal draw, rounded to a count.
fn sample_lognormal_count(mu: f64, sigma: f64, rng: &mut impl Rng) -> usize {
    let z = standard_normal(rng);
    (mu + sigma * z).exp().round().max(0.0) as usize
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    rng.standard_normal()
}

/// Standard Gumbel(0,1) draw.
fn gumbel(rng: &mut impl Rng) -> f32 {
    rng.gumbel01()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::tiny();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a.interaction_counts(), b.interaction_counts());
        for u in 0..a.num_users() {
            assert_eq!(a.user(u).items(), b.user(u).items());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::tiny();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        let same = (0..a.num_users()).all(|u| a.user(u).items() == b.user(u).items());
        assert!(!same);
    }

    #[test]
    fn respects_minimum_interactions() {
        let cfg = SyntheticConfig::tiny();
        let d = cfg.generate(7);
        assert!(d
            .interaction_counts()
            .iter()
            .all(|&c| c >= cfg.min_interactions));
    }

    #[test]
    fn mean_count_is_roughly_calibrated() {
        let mut cfg = SyntheticConfig::tiny();
        cfg.num_users = 800;
        cfg.num_items = 600;
        cfg.mean_interactions = 40.0;
        cfg.median_interactions = 25.0;
        let d = cfg.generate(3);
        let mean = d.num_interactions() as f64 / d.num_users() as f64;
        // Log-normal sampling + clamping: allow 20% tolerance.
        assert!((mean - 40.0).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn median_count_is_roughly_calibrated() {
        let mut cfg = SyntheticConfig::tiny();
        cfg.num_users = 800;
        cfg.num_items = 600;
        cfg.mean_interactions = 40.0;
        cfg.median_interactions = 25.0;
        let d = cfg.generate(4);
        let mut counts = d.interaction_counts();
        counts.sort_unstable();
        let median = counts[counts.len() / 2] as f64;
        assert!((median - 25.0).abs() < 6.0, "median {median}");
    }

    #[test]
    fn counts_are_heavy_tailed() {
        let mut cfg = SyntheticConfig::tiny();
        cfg.num_users = 800;
        cfg.num_items = 600;
        cfg.mean_interactions = 40.0;
        cfg.median_interactions = 25.0;
        let d = cfg.generate(5);
        let counts = d.interaction_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}: tail too light");
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = SyntheticConfig::tiny();
        let d = cfg.generate(6);
        let mut item_counts = vec![0usize; d.num_items()];
        for (_, ints) in d.iter_users() {
            for &i in ints.items() {
                item_counts[i as usize] += 1;
            }
        }
        item_counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = item_counts[..d.num_items() / 10].iter().sum();
        let total: usize = item_counts.iter().sum();
        // Top 10% of items should hold well over 10% of interactions.
        assert!(head as f64 > 0.2 * total as f64, "head {head} of {total}");
    }

    #[test]
    fn collaborative_structure_exists() {
        // Users in the same cluster should overlap more than random item
        // selection predicts. Compare the mean pairwise Jaccard overlap
        // against the analytic random baseline for the same set sizes:
        // E[|A∩B|] = |A||B|/M for uniform selections from M items.
        let mut cfg = SyntheticConfig::tiny();
        cfg.num_users = 60;
        cfg.num_items = 400;
        cfg.mean_interactions = 30.0;
        cfg.median_interactions = 25.0;
        cfg.popularity_weight = 0.0; // isolate the latent affinity signal
        cfg.temperature = 0.35;
        let d = cfg.generate(8);
        let m = d.num_items() as f64;
        let (mut observed, mut baseline, mut pairs) = (0.0, 0.0, 0.0);
        for a in 0..40 {
            for b in (a + 1)..40 {
                let ia = d.user(a).items();
                let na = ia.len() as f64;
                let nb = d.user(b).len() as f64;
                let inter = ia.iter().filter(|&&x| d.user(b).contains(x)).count() as f64;
                let union = na + nb - inter;
                let exp_inter = na * nb / m;
                if union > 0.0 {
                    observed += inter / union;
                    baseline += exp_inter / (na + nb - exp_inter);
                    pairs += 1.0;
                }
            }
        }
        let (observed, baseline) = (observed / pairs, baseline / pairs);
        assert!(
            observed > 1.4 * baseline,
            "mean Jaccard {observed} vs random baseline {baseline}: no structure"
        );
    }

    #[test]
    fn lognormal_params_roundtrip() {
        let cfg = SyntheticConfig::tiny();
        let (mu, sigma) = cfg.lognormal_params();
        let median = mu.exp();
        let mean = (mu + sigma * sigma / 2.0).exp();
        assert!((median - cfg.median_interactions).abs() < 1e-9);
        assert!((mean - cfg.mean_interactions).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mean >= median")]
    fn rejects_impossible_calibration() {
        let mut cfg = SyntheticConfig::tiny();
        cfg.mean_interactions = 5.0;
        cfg.median_interactions = 10.0;
        let _ = cfg.lognormal_params();
    }
}
