//! Core implicit-feedback dataset types.
//!
//! Following the paper's setting (§III-A): each user `u_i` is one federated
//! client holding a private local dataset `D_i` of `(u_i, v_j, r_ij)`
//! triples with binary implicit feedback — `r_ij = 1` iff the user
//! interacted with item `v_j`. Per-user item lists are the natural storage:
//! clients never see each other's data, so there is no benefit to a global
//! interaction log.

/// Index of a user (== federated client id).
pub type UserId = usize;
/// Index of an item.
pub type ItemId = u32;

/// A user's local interaction list. Item ids are kept sorted so membership
/// checks are `O(log n)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserInteractions {
    items: Vec<ItemId>,
}

impl UserInteractions {
    /// Builds from an arbitrary item list; sorts and deduplicates.
    pub fn new(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// Sorted interacted item ids.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the user has no interactions.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership check.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }
}

/// An implicit-feedback dataset: one interaction list per user over a fixed
/// item universe.
#[derive(Clone, Debug)]
pub struct ImplicitDataset {
    num_items: usize,
    users: Vec<UserInteractions>,
}

impl ImplicitDataset {
    /// Builds a dataset from per-user item lists.
    ///
    /// # Panics
    /// Panics if any item id is out of range.
    pub fn new(num_items: usize, per_user_items: Vec<Vec<ItemId>>) -> Self {
        for (u, items) in per_user_items.iter().enumerate() {
            for &it in items {
                assert!(
                    (it as usize) < num_items,
                    "user {u} references item {it} outside universe of {num_items}"
                );
            }
        }
        let users = per_user_items
            .into_iter()
            .map(UserInteractions::new)
            .collect();
        Self { num_items, users }
    }

    /// Number of users (= federated clients).
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Size of the item universe.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// A user's interactions.
    pub fn user(&self, u: UserId) -> &UserInteractions {
        &self.users[u]
    }

    /// Iterator over `(user id, interactions)` pairs.
    pub fn iter_users(&self) -> impl Iterator<Item = (UserId, &UserInteractions)> {
        self.users.iter().enumerate()
    }

    /// Total number of interactions across all users.
    pub fn num_interactions(&self) -> usize {
        self.users.iter().map(|u| u.len()).sum()
    }

    /// Per-user interaction counts.
    pub fn interaction_counts(&self) -> Vec<usize> {
        self.users.iter().map(|u| u.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ImplicitDataset {
        ImplicitDataset::new(5, vec![vec![0, 2, 4], vec![1], vec![]])
    }

    #[test]
    fn counts_and_sizes() {
        let d = toy();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 5);
        assert_eq!(d.num_interactions(), 4);
        assert_eq!(d.interaction_counts(), vec![3, 1, 0]);
    }

    #[test]
    fn interactions_are_sorted_and_deduped() {
        let u = UserInteractions::new(vec![4, 1, 4, 2]);
        assert_eq!(u.items(), &[1, 2, 4]);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn membership() {
        let d = toy();
        assert!(d.user(0).contains(2));
        assert!(!d.user(0).contains(3));
        assert!(d.user(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_range_items() {
        let _ = ImplicitDataset::new(3, vec![vec![3]]);
    }

    #[test]
    fn iter_users_yields_all() {
        let d = toy();
        let ids: Vec<usize> = d.iter_users().map(|(u, _)| u).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
