//! Communication-cost accounting (Table III).
//!
//! Table III reports the one-time transmission cost per client type as
//! parameter counts: homogeneous baselines move `size(V) + size(Θ)` of
//! their single tier, while HeteFedRec moves the client's own tier table
//! plus the predictors of every tier at or below it (a `Um` client also
//! receives `Θs` for the unified dual-task loss; `Ul` receives all three).
//!
//! [`RoundCost`] captures one transmission analytically; [`CommLedger`]
//! accumulates actual measured bytes over a training run so experiments
//! can report both views.

/// Parameters moved by one client↔server transmission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundCost {
    /// Item-embedding parameters (`|V| × N` under dense accounting).
    pub item_params: usize,
    /// Predictor parameters across all transmitted tiers.
    pub theta_params: usize,
}

impl RoundCost {
    /// Total parameters.
    pub fn total(self) -> usize {
        self.item_params + self.theta_params
    }

    /// Total bytes at 4 bytes per `f32` parameter.
    pub fn bytes(self) -> usize {
        self.total() * 4
    }

    /// Cost of transmitting a dense `|V| x dim` table plus the given
    /// predictor sizes — the Table III formula `size(V_x) + size({Θ})`.
    pub fn dense(num_items: usize, dim: usize, theta_sizes: &[usize]) -> Self {
        Self {
            item_params: num_items * dim,
            theta_params: theta_sizes.iter().sum(),
        }
    }
}

impl hf_tensor::ser::ToJson for RoundCost {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("item_params", &self.item_params)
                .field("theta_params", &self.theta_params)
                .field("total", &self.total())
                .field("bytes", &self.bytes());
        });
    }
}

/// Accumulates measured communication over a run, split by direction.
#[derive(Clone, Debug, Default)]
pub struct CommLedger {
    /// Bytes uploaded by clients (sparse wire format).
    pub upload_bytes: u64,
    /// Bytes downloaded by clients (dense tier tables + predictors).
    pub download_bytes: u64,
    /// Upload transmissions recorded.
    pub uploads: u64,
    /// Download transmissions recorded.
    pub downloads: u64,
    /// Bytes of masked secure-aggregation uploads (subset of
    /// `upload_bytes`; dense ring payloads are bigger than the sparse
    /// plaintext format, and this tracks how much of the upload volume
    /// travelled masked).
    pub secagg_masked_bytes: u64,
    /// Secure-aggregation setup traffic: public-key exchange plus
    /// escrowed seed-share bundles (not part of `upload_bytes`).
    pub secagg_setup_bytes: u64,
    /// Rounds that ran the masked upload path.
    pub secagg_rounds: u64,
}

impl CommLedger {
    /// Records one client upload of `bytes`.
    pub fn record_upload(&mut self, bytes: usize) {
        self.upload_bytes += bytes as u64;
        self.uploads += 1;
    }

    /// Records one **masked** client upload of `bytes` (counted in the
    /// normal upload totals *and* in the secagg overhead view).
    pub fn record_secagg_upload(&mut self, bytes: usize) {
        self.record_upload(bytes);
        self.secagg_masked_bytes += bytes as u64;
    }

    /// Records secure-aggregation setup traffic for one round.
    pub fn record_secagg_setup(&mut self, bytes: u64) {
        self.secagg_setup_bytes += bytes;
        self.secagg_rounds += 1;
    }

    /// Records one client download of `bytes`.
    pub fn record_download(&mut self, bytes: usize) {
        self.download_bytes += bytes as u64;
        self.downloads += 1;
    }

    /// Merges another ledger (e.g. from a worker thread).
    pub fn merge(&mut self, other: &CommLedger) {
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
        self.uploads += other.uploads;
        self.downloads += other.downloads;
        self.secagg_masked_bytes += other.secagg_masked_bytes;
        self.secagg_setup_bytes += other.secagg_setup_bytes;
        self.secagg_rounds += other.secagg_rounds;
    }

    /// Mean upload size in bytes, 0 when nothing was recorded.
    pub fn mean_upload(&self) -> f64 {
        if self.uploads == 0 {
            0.0
        } else {
            self.upload_bytes as f64 / self.uploads as f64
        }
    }

    /// Mean download size in bytes, 0 when nothing was recorded.
    pub fn mean_download(&self) -> f64 {
        if self.downloads == 0 {
            0.0
        } else {
            self.download_bytes as f64 / self.downloads as f64
        }
    }
}

impl hf_tensor::ser::ToJson for CommLedger {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("upload_bytes", &self.upload_bytes)
                .field("download_bytes", &self.download_bytes)
                .field("uploads", &self.uploads)
                .field("downloads", &self.downloads);
            // Emitted only when the masked path actually ran, so runs
            // with secure aggregation off serialize byte-identically to
            // every pre-secagg ledger.
            if self.secagg_masked_bytes != 0 || self.secagg_setup_bytes != 0 {
                o.field("secagg_masked_bytes", &self.secagg_masked_bytes)
                    .field("secagg_setup_bytes", &self.secagg_setup_bytes)
                    .field("secagg_rounds", &self.secagg_rounds);
            }
        });
    }
}

impl CommLedger {
    /// Restores a checkpointed ledger (the secagg fields are optional:
    /// absent in every ledger written before the masked path existed,
    /// and in every run with secure aggregation off).
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let opt_u64 = |key: &str| -> Result<u64, hf_tensor::ser::JsonError> {
            v.opt(key)
                .map(|x| x.as_u64())
                .transpose()
                .map(|x| x.unwrap_or(0))
        };
        Ok(Self {
            upload_bytes: v.get("upload_bytes")?.as_u64()?,
            download_bytes: v.get("download_bytes")?.as_u64()?,
            uploads: v.get("uploads")?.as_u64()?,
            downloads: v.get("downloads")?.as_u64()?,
            secagg_masked_bytes: opt_u64("secagg_masked_bytes")?,
            secagg_setup_bytes: opt_u64("secagg_setup_bytes")?,
            secagg_rounds: opt_u64("secagg_rounds")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_formula() {
        // ML example from §V-F: Vs has 3706 * 8 = 29648 parameters.
        let c = RoundCost::dense(3_706, 8, &[217]);
        assert_eq!(c.item_params, 29_648);
        assert_eq!(c.theta_params, 217);
        assert_eq!(c.total(), 29_865);
        assert_eq!(c.bytes(), 29_865 * 4);
    }

    #[test]
    fn hetero_large_client_carries_all_thetas() {
        // Ul under HeteFedRec: size(Vl + {Θ}s,m,l).
        let c = RoundCost::dense(3_706, 32, &[217, 345, 601]);
        assert_eq!(c.item_params, 3_706 * 32);
        assert_eq!(c.theta_params, 217 + 345 + 601);
    }

    #[test]
    fn ledger_accumulates_and_averages() {
        let mut l = CommLedger::default();
        l.record_upload(100);
        l.record_upload(300);
        l.record_download(1000);
        assert_eq!(l.upload_bytes, 400);
        assert_eq!(l.mean_upload(), 200.0);
        assert_eq!(l.mean_download(), 1000.0);
    }

    #[test]
    fn ledger_merge() {
        let mut a = CommLedger::default();
        a.record_upload(10);
        let mut b = CommLedger::default();
        b.record_download(20);
        b.record_upload(30);
        a.merge(&b);
        assert_eq!(a.uploads, 2);
        assert_eq!(a.downloads, 1);
        assert_eq!(a.upload_bytes, 40);
    }

    #[test]
    fn empty_ledger_means_are_zero() {
        let l = CommLedger::default();
        assert_eq!(l.mean_upload(), 0.0);
        assert_eq!(l.mean_download(), 0.0);
    }

    #[test]
    fn secagg_fields_are_emitted_only_when_the_masked_path_ran() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut plain = CommLedger::default();
        plain.record_upload(100);
        let json = plain.to_json();
        assert!(
            !json.contains("secagg"),
            "a plaintext-only ledger must serialize without secagg fields: {json}"
        );
        let restored = CommLedger::from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(restored.to_json(), json);

        let mut masked = CommLedger::default();
        masked.record_secagg_upload(500);
        masked.record_secagg_setup(64);
        assert_eq!(masked.upload_bytes, 500);
        assert_eq!(masked.secagg_masked_bytes, 500);
        assert_eq!(masked.secagg_setup_bytes, 64);
        assert_eq!(masked.secagg_rounds, 1);
        let json = masked.to_json();
        assert!(json.contains("secagg_masked_bytes"));
        let restored = CommLedger::from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(restored.secagg_setup_bytes, 64);
        assert_eq!(restored.to_json(), json);
    }
}
