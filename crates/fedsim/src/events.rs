//! Logical-clock event scheduling for asynchronous federation.
//!
//! The paper's loop is strictly synchronous (§V-D), but churn-heavy
//! deployments face stragglers and heavy-tailed client latency. This module
//! provides the deterministic machinery for an event-driven mode:
//!
//! * [`LatencyProfile`] — pluggable per-dispatch latency models whose draws
//!   are *pure functions* of `(seed, client, dispatch version)`, so no RNG
//!   state needs checkpointing and results are independent of query order.
//! * [`PendingArrival`] / [`EventQueue`] — a priority queue of in-flight
//!   client trainings ordered by `(logical_time, client_id)`; the total
//!   order is deterministic even when many arrivals share a tick.
//! * [`EventScheduler`] — the logical clock plus dispatch bookkeeping
//!   (per-client dispatch versions, the not-yet-dispatched remainder of the
//!   epoch traversal), checkpointable to JSON and restored bit-exactly.
//! * [`TraversalPolicy`] — the seam shared with the synchronous path: both
//!   the lockstep [`RoundScheduler`](crate::scheduler::RoundScheduler)
//!   rounds and the event engine consume the same shuffled epoch traversal.
//!
//! Time is integer "ticks" — float-free so ordering never depends on
//! rounding mode or summation order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hf_tensor::rng::{substream, Rng, SeedStream};
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};

/// Produces each epoch's client traversal order.
///
/// The synchronous policy chunks the traversal into lockstep cohorts; the
/// asynchronous policy feeds it through an [`EventScheduler`]. Implemented
/// by [`RoundScheduler`](crate::scheduler::RoundScheduler), whose shuffle
/// RNG both modes share — so sync and async visit clients in the same
/// per-epoch order.
pub trait TraversalPolicy {
    /// Number of clients in the population.
    fn population(&self) -> usize;

    /// Shuffles and returns the next epoch's full traversal (every client
    /// exactly once).
    fn next_traversal(&mut self) -> Vec<usize>;
}

/// Ticks a dispatched client takes before its update arrives.
///
/// Every draw is a pure function of `(seed, client, version)` via the
/// [`SeedStream::Latency`] substream: no mutable RNG state, so checkpoints
/// carry nothing and draws are independent of evaluation order. All
/// profiles return at least 1 tick so logical time always advances.
#[derive(Clone, Debug, PartialEq)]
pub enum LatencyProfile {
    /// Every client takes exactly `ticks` ticks (the legacy synchronous
    /// accounting: `Fixed(1)` makes one round cost one tick).
    Fixed(u64),
    /// Uniform in `[min, max]` ticks.
    Uniform {
        /// Fastest possible response (≥ 1).
        min: u64,
        /// Slowest possible response (≥ min).
        max: u64,
    },
    /// Heavy-tailed log-normal: `exp(ln(median) + sigma·z)` ticks, rounded.
    /// The straggler model — most clients are fast, a few are very slow.
    LogNormal {
        /// Median response time in ticks (> 0).
        median: f64,
        /// Log-space standard deviation (≥ 0); larger = heavier tail.
        sigma: f64,
    },
    /// One sub-profile per model tier, indexed small/medium/large — so
    /// small-model clients can be simulated as systematically faster.
    /// Sub-profiles may not nest another `PerTier`. Callers that have no
    /// tier notion draw tier 0.
    PerTier(Box<[LatencyProfile; 3]>),
}

impl LatencyProfile {
    /// The legacy profile: every training takes one tick.
    pub fn unit() -> Self {
        LatencyProfile::Fixed(1)
    }

    /// Validates the profile's parameters, returning a message on failure.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            LatencyProfile::Fixed(t) => {
                if *t == 0 {
                    return Err("fixed latency must be at least 1 tick");
                }
            }
            LatencyProfile::Uniform { min, max } => {
                if *min == 0 {
                    return Err("uniform latency min must be at least 1 tick");
                }
                if min > max {
                    return Err("uniform latency needs min <= max");
                }
            }
            LatencyProfile::LogNormal { median, sigma } => {
                if !(median.is_finite() && *median > 0.0) {
                    return Err("lognormal median must be positive and finite");
                }
                if !(sigma.is_finite() && *sigma >= 0.0) {
                    return Err("lognormal sigma must be non-negative and finite");
                }
            }
            LatencyProfile::PerTier(tiers) => {
                for sub in tiers.iter() {
                    if matches!(sub, LatencyProfile::PerTier(_)) {
                        return Err("per-tier latency sub-profiles may not nest");
                    }
                    sub.validate()?;
                }
            }
        }
        Ok(())
    }

    /// Latency of `client`'s dispatch number `version` — a pure function of
    /// its arguments plus `seed`, clamped to `[1, 2^40]` ticks. `tier` is the
    /// client's model-tier index (small/medium/large); only
    /// [`LatencyProfile::PerTier`] consults it, so draws under the flat
    /// profiles are bit-identical whatever tier the caller passes.
    pub fn draw(&self, seed: u64, client: usize, version: u64, tier: usize) -> u64 {
        const MAX_TICKS: u64 = 1 << 40;
        match self {
            LatencyProfile::Fixed(t) => *t,
            LatencyProfile::Uniform { min, max } => {
                if min == max {
                    return *min;
                }
                let mut rng = substream(seed, SeedStream::Latency, draw_key(client, version));
                rng.gen_range(*min..=*max)
            }
            LatencyProfile::LogNormal { median, sigma } => {
                let mut rng = substream(seed, SeedStream::Latency, draw_key(client, version));
                let z = rng.standard_normal();
                let ticks = (median.ln() + sigma * z).exp().round();
                if ticks.is_nan() {
                    return 1;
                }
                (ticks as u64).clamp(1, MAX_TICKS)
            }
            LatencyProfile::PerTier(tiers) => tiers[tier.min(2)].draw(seed, client, version, 0),
        }
    }

    /// Parses a CLI spec: `fixed:T`, `uniform:MIN:MAX`,
    /// `lognormal:MEDIAN:SIGMA`, or `pertier:SMALL/MEDIUM/LARGE` where each
    /// slot is itself a flat spec (e.g.
    /// `pertier:fixed:1/uniform:2:6/lognormal:9:0.5`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(rest) = spec.strip_prefix("pertier:") {
            let subs: Vec<&str> = rest.split('/').collect();
            if subs.len() != 3 {
                return Err(format!(
                    "pertier latency needs exactly 3 `/`-separated sub-specs, got {}",
                    subs.len()
                ));
            }
            let mut parsed = Vec::with_capacity(3);
            for sub in subs {
                parsed.push(LatencyProfile::parse(sub)?);
            }
            let profile = LatencyProfile::PerTier(Box::new(
                <[LatencyProfile; 3]>::try_from(parsed).expect("three sub-profiles"),
            ));
            profile.validate().map_err(str::to_owned)?;
            return Ok(profile);
        }
        let parts: Vec<&str> = spec.split(':').collect();
        let profile = match parts.as_slice() {
            ["fixed", t] => {
                LatencyProfile::Fixed(t.parse().map_err(|_| format!("bad fixed ticks `{t}`"))?)
            }
            ["uniform", min, max] => LatencyProfile::Uniform {
                min: min
                    .parse()
                    .map_err(|_| format!("bad uniform min `{min}`"))?,
                max: max
                    .parse()
                    .map_err(|_| format!("bad uniform max `{max}`"))?,
            },
            ["lognormal", median, sigma] => LatencyProfile::LogNormal {
                median: median
                    .parse()
                    .map_err(|_| format!("bad lognormal median `{median}`"))?,
                sigma: sigma
                    .parse()
                    .map_err(|_| format!("bad lognormal sigma `{sigma}`"))?,
            },
            _ => {
                return Err(format!(
                    "unknown latency spec `{spec}` (expected fixed:T, \
                     uniform:MIN:MAX, lognormal:MEDIAN:SIGMA, or \
                     pertier:SMALL/MEDIUM/LARGE)"
                ))
            }
        };
        profile.validate().map_err(str::to_owned)?;
        Ok(profile)
    }

    /// Restores a profile from its JSON form.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let profile = match v.get("kind")?.as_str()?.as_ref() {
            "fixed" => LatencyProfile::Fixed(v.get("ticks")?.as_u64()?),
            "uniform" => LatencyProfile::Uniform {
                min: v.get("min")?.as_u64()?,
                max: v.get("max")?.as_u64()?,
            },
            "lognormal" => LatencyProfile::LogNormal {
                median: v.get("median")?.as_f64()?,
                sigma: v.get("sigma")?.as_f64()?,
            },
            "per_tier" => {
                let arr = v.get("tiers")?;
                let arr = arr.as_arr()?;
                if arr.len() != 3 {
                    return Err(JsonError::msg(format!(
                        "per_tier latency needs 3 sub-profiles, got {}",
                        arr.len()
                    )));
                }
                let mut subs = Vec::with_capacity(3);
                for item in arr {
                    subs.push(LatencyProfile::from_json(item)?);
                }
                LatencyProfile::PerTier(Box::new(
                    <[LatencyProfile; 3]>::try_from(subs).expect("three sub-profiles"),
                ))
            }
            other => return Err(JsonError::msg(format!("unknown latency kind `{other}`"))),
        };
        profile.validate().map_err(JsonError::msg)?;
        Ok(profile)
    }
}

impl ToJson for LatencyProfile {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| match self {
            LatencyProfile::Fixed(t) => {
                o.field("kind", &"fixed").field("ticks", t);
            }
            LatencyProfile::Uniform { min, max } => {
                o.field("kind", &"uniform")
                    .field("min", min)
                    .field("max", max);
            }
            LatencyProfile::LogNormal { median, sigma } => {
                o.field("kind", &"lognormal")
                    .field("median", median)
                    .field("sigma", sigma);
            }
            LatencyProfile::PerTier(tiers) => {
                let subs: Vec<LatencyProfile> = tiers.to_vec();
                o.field("kind", &"per_tier").field("tiers", &subs);
            }
        });
    }
}

/// Mixes `(client, version)` into one substream index (same idiom as
/// `FaultInjector::drops`).
fn draw_key(client: usize, version: u64) -> u64 {
    (client as u64).wrapping_mul(0x1000_0000_1b3) ^ version
}

/// One in-flight client training: dispatched with the parameters of round
/// `dispatched_round`, arriving at logical tick `time`.
///
/// The derived order — `(time, client)` — is the event queue's total order;
/// client id breaks ties so simultaneous arrivals pop deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PendingArrival {
    /// Arrival tick on the logical clock.
    pub time: u64,
    /// Client id (tie-break within a tick).
    pub client: usize,
    /// Value of the global round counter when this client got its
    /// parameters; staleness at aggregation is measured against it.
    pub dispatched_round: u64,
}

impl ToJson for PendingArrival {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("time", &self.time)
                .field("client", &self.client)
                .field("dispatched_round", &self.dispatched_round);
        });
    }
}

impl PendingArrival {
    /// Restores one arrival from its JSON form.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            time: v.get("time")?.as_u64()?,
            client: v.get("client")?.as_usize()?,
            dispatched_round: v.get("dispatched_round")?.as_u64()?,
        })
    }
}

/// Min-heap of [`PendingArrival`]s keyed on `(time, client)`.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<PendingArrival>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight arrivals.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no arrivals are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues one arrival.
    pub fn push(&mut self, a: PendingArrival) {
        self.heap.push(Reverse(a));
    }

    /// Removes and returns the earliest arrival (ties broken by client id).
    pub fn pop(&mut self) -> Option<PendingArrival> {
        self.heap.pop().map(|Reverse(a)| a)
    }

    /// The earliest arrival without removing it.
    pub fn peek(&self) -> Option<&PendingArrival> {
        self.heap.peek().map(|Reverse(a)| a)
    }

    /// The queue's contents in `(time, client)` order — heap-layout-free,
    /// so serialized checkpoints are byte-stable.
    pub fn snapshot(&self) -> Vec<PendingArrival> {
        let mut v: Vec<PendingArrival> = self.heap.iter().map(|Reverse(a)| *a).collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot`] array.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let mut q = EventQueue::new();
        for item in v.as_arr()? {
            q.push(PendingArrival::from_json(item)?);
        }
        Ok(q)
    }
}

impl ToJson for EventQueue {
    fn write_json(&self, out: &mut String) {
        self.snapshot().write_json(out);
    }
}

/// The logical clock plus dispatch bookkeeping for the asynchronous mode.
///
/// One instance drives one epoch at a time: [`EventScheduler::begin_epoch`]
/// loads a traversal, [`EventScheduler::fill`] dispatches clients up to the
/// concurrency cap (drawing each latency from the profile and skipping
/// clients the churn model reports offline), and
/// [`EventScheduler::pop_batch`] removes the next aggregation buffer of
/// arrivals, advancing the clock to the latest one. Everything is
/// deterministic: draws are pure functions, and the queue's `(time,
/// client)` order is total.
#[derive(Clone, Debug)]
pub struct EventScheduler {
    seed: u64,
    latency: LatencyProfile,
    concurrency: usize,
    clock: u64,
    queue: EventQueue,
    /// This epoch's not-yet-dispatched clients, in traversal order.
    pending_dispatch: VecDeque<usize>,
    /// Per-client dispatch versions: how many times each client has been
    /// handed parameters. Keys the latency draws, so it is checkpointed.
    dispatch_versions: Vec<u64>,
    /// Per-client model-tier indices consulted by
    /// [`LatencyProfile::PerTier`] draws. Derivable from the configuration
    /// (not checkpointed); defaults to all-zero until
    /// [`EventScheduler::set_tiers`] installs real assignments.
    tiers: Vec<u8>,
}

impl EventScheduler {
    /// Creates an idle scheduler over `population` clients.
    ///
    /// # Panics
    /// Panics on an empty population, zero concurrency, or an invalid
    /// latency profile.
    pub fn new(population: usize, concurrency: usize, latency: LatencyProfile, seed: u64) -> Self {
        assert!(population > 0, "no clients to schedule");
        assert!(concurrency > 0, "concurrency must be positive");
        latency.validate().expect("valid latency profile");
        Self {
            seed,
            latency,
            concurrency,
            clock: 0,
            queue: EventQueue::new(),
            pending_dispatch: VecDeque::new(),
            dispatch_versions: vec![0; population],
            tiers: vec![0; population],
        }
    }

    /// Installs per-client tier indices for [`LatencyProfile::PerTier`]
    /// draws. A no-op in spirit for flat profiles (draws ignore the tier).
    ///
    /// # Panics
    /// Panics if `tiers` does not cover the population.
    pub fn set_tiers(&mut self, tiers: Vec<u8>) {
        assert_eq!(
            tiers.len(),
            self.dispatch_versions.len(),
            "tier assignments must cover the population"
        );
        self.tiers = tiers;
    }

    /// Grows the population by one newly admitted client with the given
    /// tier, returning its id. The new client joins traversals from the
    /// next epoch on (its dispatch version starts at zero).
    pub fn admit(&mut self, tier: u8) -> usize {
        let client = self.dispatch_versions.len();
        self.dispatch_versions.push(0);
        self.tiers.push(tier);
        client
    }

    /// Current logical time in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of in-flight (dispatched, not yet arrived) clients.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Whether the current epoch is fully drained (nothing in flight and
    /// nothing left to dispatch).
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.pending_dispatch.is_empty()
    }

    /// Loads the next epoch's traversal. Must only be called when
    /// [`EventScheduler::idle`] — epochs are drained barriers so evaluation
    /// cadence matches the synchronous mode.
    ///
    /// # Panics
    /// Panics if the previous epoch has not drained.
    pub fn begin_epoch(&mut self, traversal: Vec<usize>) {
        assert!(self.idle(), "previous epoch not drained");
        self.pending_dispatch = traversal.into();
    }

    /// Dispatches queued clients until `concurrency` are in flight or the
    /// traversal is exhausted. `offline(client)` is consulted at the current
    /// clock tick; offline clients are skipped for the rest of the epoch.
    /// Returns the number skipped.
    pub fn fill(&mut self, dispatched_round: u64, mut offline: impl FnMut(usize) -> bool) -> usize {
        let mut skipped = 0;
        while self.queue.len() < self.concurrency {
            let Some(client) = self.pending_dispatch.pop_front() else {
                break;
            };
            if offline(client) {
                skipped += 1;
                continue;
            }
            let version = self.dispatch_versions[client];
            self.dispatch_versions[client] = version + 1;
            let tier = self.tiers[client] as usize;
            let ticks = self.latency.draw(self.seed, client, version, tier);
            self.queue.push(PendingArrival {
                time: self.clock + ticks,
                client,
                dispatched_round,
            });
        }
        skipped
    }

    /// Pops up to `max` earliest arrivals and advances the clock to the
    /// latest of them. Returns an empty vec when nothing is in flight.
    pub fn pop_batch(&mut self, max: usize) -> Vec<PendingArrival> {
        let mut batch = Vec::with_capacity(max.min(self.queue.len()));
        while batch.len() < max {
            let Some(a) = self.queue.pop() else { break };
            self.clock = self.clock.max(a.time);
            batch.push(a);
        }
        batch
    }

    /// Restores a checkpointed scheduler. The latency profile, concurrency
    /// and seed come from the configuration (they are not per-run state);
    /// only the clock, queue, pending dispatches and dispatch versions are
    /// read from `v`.
    pub fn from_json(
        v: &JsonValue<'_>,
        population: usize,
        concurrency: usize,
        latency: LatencyProfile,
        seed: u64,
    ) -> Result<Self, JsonError> {
        let dispatch_versions = v.get("dispatch_versions")?.as_u64_vec()?;
        if dispatch_versions.len() != population {
            return Err(JsonError::msg(format!(
                "dispatch_versions has {} entries for population {}",
                dispatch_versions.len(),
                population
            )));
        }
        let mut s = Self::new(population, concurrency, latency, seed);
        s.clock = v.get("clock")?.as_u64()?;
        s.queue = EventQueue::from_json(v.get("events")?)?;
        s.pending_dispatch = v.get("pending_dispatch")?.as_usize_vec()?.into();
        s.dispatch_versions = dispatch_versions;
        Ok(s)
    }
}

impl ToJson for EventScheduler {
    fn write_json(&self, out: &mut String) {
        let pending: Vec<usize> = self.pending_dispatch.iter().copied().collect();
        obj(out, |o| {
            o.field("clock", &self.clock)
                .field("events", &self.queue)
                .field("pending_dispatch", &pending)
                .field("dispatch_versions", &self.dispatch_versions);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::ser::parse_json;

    #[test]
    fn latency_draws_are_pure_and_order_independent() {
        let p = LatencyProfile::LogNormal {
            median: 4.0,
            sigma: 0.8,
        };
        let forward: Vec<u64> = (0..50).map(|c| p.draw(7, c, 3, 0)).collect();
        let backward: Vec<u64> = (0..50).rev().map(|c| p.draw(7, c, 3, 0)).collect();
        let reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        assert!(forward.iter().any(|&t| t != forward[0]), "draws vary");
    }

    #[test]
    fn latency_draws_vary_by_version() {
        let p = LatencyProfile::Uniform { min: 1, max: 1000 };
        let by_version: Vec<u64> = (0..64).map(|v| p.draw(3, 5, v, 0)).collect();
        assert!(by_version.iter().any(|&t| t != by_version[0]));
    }

    #[test]
    fn latency_respects_bounds() {
        let u = LatencyProfile::Uniform { min: 2, max: 9 };
        assert!((0..1000).all(|c| (2..=9).contains(&u.draw(1, c, 0, 0))));
        let f = LatencyProfile::Fixed(3);
        assert!((0..100).all(|c| f.draw(1, c, 0, 0) == 3));
        let ln = LatencyProfile::LogNormal {
            median: 4.0,
            sigma: 1.0,
        };
        assert!((0..1000).all(|c| ln.draw(1, c, 0, 0) >= 1));
    }

    #[test]
    fn latency_validation_rejects_bad_parameters() {
        assert!(LatencyProfile::Fixed(0).validate().is_err());
        assert!(LatencyProfile::Uniform { min: 0, max: 3 }
            .validate()
            .is_err());
        assert!(LatencyProfile::Uniform { min: 5, max: 3 }
            .validate()
            .is_err());
        assert!(LatencyProfile::LogNormal {
            median: 0.0,
            sigma: 1.0
        }
        .validate()
        .is_err());
        assert!(LatencyProfile::LogNormal {
            median: 2.0,
            sigma: -1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn latency_json_roundtrips() {
        for p in [
            LatencyProfile::Fixed(7),
            LatencyProfile::Uniform { min: 1, max: 12 },
            LatencyProfile::LogNormal {
                median: 4.5,
                sigma: 0.75,
            },
        ] {
            let json = p.to_json();
            let back = LatencyProfile::from_json(&parse_json(&json).unwrap()).unwrap();
            assert_eq!(p, back, "{json}");
        }
        assert!(LatencyProfile::from_json(&parse_json(r#"{"kind":"nope"}"#).unwrap()).is_err());
    }

    #[test]
    fn latency_parse_accepts_cli_specs() {
        assert_eq!(
            LatencyProfile::parse("fixed:3").unwrap(),
            LatencyProfile::Fixed(3)
        );
        assert_eq!(
            LatencyProfile::parse("uniform:1:9").unwrap(),
            LatencyProfile::Uniform { min: 1, max: 9 }
        );
        assert_eq!(
            LatencyProfile::parse("lognormal:4:0.8").unwrap(),
            LatencyProfile::LogNormal {
                median: 4.0,
                sigma: 0.8
            }
        );
        assert!(LatencyProfile::parse("uniform:9:1").is_err());
        assert!(LatencyProfile::parse("bogus").is_err());
    }

    fn per_tier_fixture() -> LatencyProfile {
        LatencyProfile::PerTier(Box::new([
            LatencyProfile::Fixed(2),
            LatencyProfile::Uniform { min: 4, max: 9 },
            LatencyProfile::LogNormal {
                median: 20.0,
                sigma: 0.5,
            },
        ]))
    }

    #[test]
    fn per_tier_selects_the_tier_sub_profile() {
        let p = per_tier_fixture();
        assert_eq!(p.draw(7, 3, 0, 0), 2);
        let medium = p.draw(7, 3, 0, 1);
        assert!((4..=9).contains(&medium));
        // The per-tier draw matches the bare sub-profile's draw exactly:
        // same (seed, client, version) key, tier only picks the arm.
        let bare = LatencyProfile::Uniform { min: 4, max: 9 };
        assert_eq!(medium, bare.draw(7, 3, 0, 0));
        // Out-of-range tiers clamp to the large arm.
        assert_eq!(p.draw(7, 3, 0, 2), p.draw(7, 3, 0, 9));
    }

    #[test]
    fn per_tier_validation_rejects_bad_and_nested_sub_profiles() {
        let bad = LatencyProfile::PerTier(Box::new([
            LatencyProfile::Fixed(0),
            LatencyProfile::unit(),
            LatencyProfile::unit(),
        ]));
        assert!(bad.validate().is_err());
        let nested = LatencyProfile::PerTier(Box::new([
            per_tier_fixture(),
            LatencyProfile::unit(),
            LatencyProfile::unit(),
        ]));
        assert_eq!(
            nested.validate(),
            Err("per-tier latency sub-profiles may not nest")
        );
    }

    #[test]
    fn per_tier_json_and_cli_roundtrip() {
        let p = per_tier_fixture();
        let back = LatencyProfile::from_json(&parse_json(&p.to_json()).unwrap()).unwrap();
        assert_eq!(p, back);
        let parsed = LatencyProfile::parse("pertier:fixed:2/uniform:4:9/lognormal:20:0.5").unwrap();
        assert_eq!(parsed, p);
        assert!(LatencyProfile::parse("pertier:fixed:1/fixed:2").is_err());
        assert!(LatencyProfile::parse("pertier:fixed:0/fixed:1/fixed:1").is_err());
    }

    #[test]
    fn scheduler_draws_by_tier_and_admits_new_clients() {
        let mut s = EventScheduler::new(2, 4, per_tier_fixture(), 11);
        s.set_tiers(vec![0, 1]);
        let admitted = s.admit(2);
        assert_eq!(admitted, 2);
        s.begin_epoch(vec![0, 1, 2]);
        s.fill(0, |_| false);
        let batch = s.pop_batch(3);
        let by_client: std::collections::BTreeMap<usize, u64> =
            batch.iter().map(|a| (a.client, a.time)).collect();
        let p = per_tier_fixture();
        assert_eq!(by_client[&0], p.draw(11, 0, 0, 0));
        assert_eq!(by_client[&1], p.draw(11, 1, 0, 1));
        assert_eq!(by_client[&2], p.draw(11, 2, 0, 2));
    }

    #[test]
    fn queue_pops_in_time_then_client_order() {
        let mut q = EventQueue::new();
        for (time, client) in [(5, 2), (3, 9), (5, 1), (3, 0), (4, 7)] {
            q.push(PendingArrival {
                time,
                client,
                dispatched_round: 0,
            });
        }
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|a| (a.time, a.client))
            .collect();
        assert_eq!(order, vec![(3, 0), (3, 9), (4, 7), (5, 1), (5, 2)]);
    }

    #[test]
    fn queue_snapshot_is_sorted_and_roundtrips() {
        let mut q = EventQueue::new();
        for client in [9usize, 1, 4, 7] {
            q.push(PendingArrival {
                time: 10 - client as u64,
                client,
                dispatched_round: client as u64,
            });
        }
        let snap = q.snapshot();
        assert!(snap.windows(2).all(|w| w[0] < w[1]));
        let mut back = EventQueue::from_json(&parse_json(&q.to_json()).unwrap()).unwrap();
        let a: Vec<PendingArrival> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<PendingArrival> = std::iter::from_fn(|| back.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn scheduler_runs_an_epoch_deterministically() {
        let latency = LatencyProfile::Uniform { min: 1, max: 20 };
        let run = || {
            let mut s = EventScheduler::new(16, 4, latency.clone(), 42);
            s.begin_epoch((0..16).collect());
            let mut seen = Vec::new();
            let mut round = 0u64;
            s.fill(round, |_| false);
            while !s.idle() {
                let batch = s.pop_batch(2);
                round += 1;
                seen.extend(batch.iter().map(|a| (a.time, a.client)));
                s.fill(round, |_| false);
            }
            (seen, s.clock())
        };
        let (a, clock_a) = run();
        let (b, clock_b) = run();
        assert_eq!(a, b);
        assert_eq!(clock_a, clock_b);
        let clients: std::collections::BTreeSet<usize> = a.iter().map(|&(_, c)| c).collect();
        assert_eq!(clients.len(), 16, "every client arrives exactly once");
    }

    #[test]
    fn scheduler_respects_concurrency_and_skips_offline() {
        let mut s = EventScheduler::new(10, 3, LatencyProfile::Fixed(2), 1);
        s.begin_epoch((0..10).collect());
        let skipped = s.fill(0, |c| c % 2 == 1);
        assert_eq!(s.in_flight(), 3);
        assert!(skipped > 0);
        let batch = s.pop_batch(10);
        assert_eq!(batch.len(), 3);
        assert_eq!(s.clock(), 2);
    }

    #[test]
    fn scheduler_checkpoint_resumes_mid_epoch() {
        let latency = LatencyProfile::Uniform { min: 1, max: 9 };
        let mut s = EventScheduler::new(12, 4, latency.clone(), 5);
        s.begin_epoch((0..12).collect());
        s.fill(0, |_| false);
        let _ = s.pop_batch(2);
        s.fill(1, |_| false);

        let json = s.to_json();
        let mut r =
            EventScheduler::from_json(&parse_json(&json).unwrap(), 12, 4, latency, 5).unwrap();
        assert_eq!(r.clock(), s.clock());
        let mut round = 2u64;
        while !s.idle() {
            assert_eq!(s.pop_batch(3), r.pop_batch(3));
            s.fill(round, |_| false);
            r.fill(round, |_| false);
            round += 1;
        }
        assert!(r.idle());
        assert_eq!(s.to_json(), r.to_json());
    }

    #[test]
    fn scheduler_rejects_mismatched_restores() {
        let s = EventScheduler::new(4, 2, LatencyProfile::unit(), 1);
        let json = s.to_json();
        let doc = parse_json(&json).unwrap();
        assert!(EventScheduler::from_json(&doc, 5, 2, LatencyProfile::unit(), 1).is_err());
    }
}
