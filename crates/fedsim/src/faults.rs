//! Client-failure injection.
//!
//! The paper assumes every selected client returns its update. Real
//! cross-device deployments lose a fraction of clients per round to
//! connectivity and battery constraints, so the robustness extension
//! (DESIGN.md §6) injects seeded, per-(round, client) deterministic drops:
//! a dropped client trains locally (its private state advances) but its
//! upload never reaches the server.

use hf_tensor::rng::Rng;
use hf_tensor::rng::{substream, SeedStream};

/// Deterministic client-drop injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    drop_prob: f64,
}

impl FaultInjector {
    /// Creates an injector dropping each upload independently with
    /// probability `drop_prob`.
    ///
    /// # Panics
    /// Panics unless `0 <= drop_prob < 1`.
    pub fn new(seed: u64, drop_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop probability in [0,1)");
        Self { seed, drop_prob }
    }

    /// An injector that never drops (the paper's setting).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
        }
    }

    /// Configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Restores a checkpointed injector. Decisions are a pure function of
    /// `(seed, round, client)`, so seed + probability are the whole state.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let drop_prob = v.get("drop_prob")?.as_f64()?;
        if !(0.0..1.0).contains(&drop_prob) {
            return Err(hf_tensor::ser::JsonError::msg("drop probability in [0,1)"));
        }
        Ok(Self {
            seed: v.get("seed")?.as_u64()?,
            drop_prob,
        })
    }

    /// Whether `client`'s upload in global round `round` is lost.
    /// Deterministic in `(seed, round, client)` — independent of
    /// evaluation order, thread count, or how many other clients exist.
    pub fn drops(&self, round: u64, client: usize) -> bool {
        if self.drop_prob == 0.0 {
            return false;
        }
        let key = round.wrapping_mul(0x1000_0000_1b3) ^ (client as u64);
        let mut rng = substream(self.seed, SeedStream::Faults, key);
        rng.gen::<f64>() < self.drop_prob
    }
}

impl hf_tensor::ser::ToJson for FaultInjector {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("seed", &self.seed)
                .field("drop_prob", &self.drop_prob);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_drops() {
        let f = FaultInjector::disabled();
        assert!((0..1000).all(|c| !f.drops(0, c)));
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let f = FaultInjector::new(1, 0.3);
        let drops = (0..10_000).filter(|&c| f.drops(5, c)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(9, 0.5);
        let b = FaultInjector::new(9, 0.5);
        for round in 0..10 {
            for client in 0..50 {
                assert_eq!(a.drops(round, client), b.drops(round, client));
            }
        }
    }

    #[test]
    fn decisions_vary_by_round_and_client() {
        let f = FaultInjector::new(2, 0.5);
        let by_round: Vec<bool> = (0..64).map(|r| f.drops(r, 0)).collect();
        let by_client: Vec<bool> = (0..64).map(|c| f.drops(0, c)).collect();
        assert!(by_round.iter().any(|&d| d) && by_round.iter().any(|&d| !d));
        assert!(by_client.iter().any(|&d| d) && by_client.iter().any(|&d| !d));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_certain_drop() {
        let _ = FaultInjector::new(0, 1.0);
    }
}
