//! Client-failure injection.
//!
//! The paper assumes every selected client returns its update. Real
//! cross-device deployments lose a fraction of clients per round to
//! connectivity and battery constraints, so the robustness extension
//! (DESIGN.md §6) injects seeded, per-(round, client) deterministic drops:
//! a dropped client trains locally (its private state advances) but its
//! upload never reaches the server.
//!
//! The asynchronous mode layers *churn* on top: a [`ChurnProfile`] decides
//! whether a client is offline at a given logical tick, consulted at
//! dispatch time. Like drops, availability verdicts are pure functions of
//! `(seed, time, client)` — no mutable RNG state, so they survive
//! checkpoint/restore and are independent of query order.

use hf_tensor::rng::Rng;
use hf_tensor::rng::{substream, SeedStream};
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};

/// Client availability model for churn-heavy deployments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnProfile {
    /// Every client is always online (the paper's setting).
    None,
    /// Each `(time, client)` pair is offline independently with the given
    /// probability — memoryless unavailability.
    Independent {
        /// Probability a client is offline at any given tick, in `[0, 1)`.
        offline_prob: f64,
    },
    /// Flap-prone churn: availability is redrawn once per `period`-tick
    /// window, so an offline client stays dark for the whole window and
    /// then may come back — bursty outages rather than white noise.
    Flappy {
        /// Probability a client is offline in any given window, in `[0, 1)`.
        offline_prob: f64,
        /// Window length in ticks (≥ 1).
        period: u64,
    },
}

impl ChurnProfile {
    /// Validates the profile's parameters, returning a message on failure.
    pub fn validate(&self) -> Result<(), &'static str> {
        let prob = match *self {
            ChurnProfile::None => return Ok(()),
            ChurnProfile::Independent { offline_prob } => offline_prob,
            ChurnProfile::Flappy {
                offline_prob,
                period,
            } => {
                if period == 0 {
                    return Err("flappy churn period must be at least 1 tick");
                }
                offline_prob
            }
        };
        if !(0.0..1.0).contains(&prob) {
            return Err("offline probability in [0,1)");
        }
        Ok(())
    }

    /// Parses a CLI spec: `none`, `independent:P`, or `flappy:P:PERIOD`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let profile = match parts.as_slice() {
            ["none"] => ChurnProfile::None,
            ["independent", p] => ChurnProfile::Independent {
                offline_prob: p.parse().map_err(|_| format!("bad probability `{p}`"))?,
            },
            ["flappy", p, period] => ChurnProfile::Flappy {
                offline_prob: p.parse().map_err(|_| format!("bad probability `{p}`"))?,
                period: period
                    .parse()
                    .map_err(|_| format!("bad period `{period}`"))?,
            },
            _ => {
                return Err(format!(
                    "unknown churn spec `{spec}` (expected none, independent:P, \
                     or flappy:P:PERIOD)"
                ))
            }
        };
        profile.validate().map_err(str::to_owned)?;
        Ok(profile)
    }

    /// Restores a profile from its JSON form.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let profile = match v.get("kind")?.as_str()?.as_ref() {
            "none" => ChurnProfile::None,
            "independent" => ChurnProfile::Independent {
                offline_prob: v.get("offline_prob")?.as_f64()?,
            },
            "flappy" => ChurnProfile::Flappy {
                offline_prob: v.get("offline_prob")?.as_f64()?,
                period: v.get("period")?.as_u64()?,
            },
            other => return Err(JsonError::msg(format!("unknown churn kind `{other}`"))),
        };
        profile.validate().map_err(JsonError::msg)?;
        Ok(profile)
    }
}

impl ToJson for ChurnProfile {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| match *self {
            ChurnProfile::None => {
                o.field("kind", &"none");
            }
            ChurnProfile::Independent { offline_prob } => {
                o.field("kind", &"independent")
                    .field("offline_prob", &offline_prob);
            }
            ChurnProfile::Flappy {
                offline_prob,
                period,
            } => {
                o.field("kind", &"flappy")
                    .field("offline_prob", &offline_prob)
                    .field("period", &period);
            }
        });
    }
}

/// Deterministic client-drop injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    drop_prob: f64,
    churn: ChurnProfile,
}

impl FaultInjector {
    /// Creates an injector dropping each upload independently with
    /// probability `drop_prob`.
    ///
    /// # Panics
    /// Panics unless `0 <= drop_prob < 1`.
    pub fn new(seed: u64, drop_prob: f64) -> Self {
        Self::with_churn(seed, drop_prob, ChurnProfile::None)
    }

    /// Creates an injector with both upload drops and an availability
    /// (churn) model.
    ///
    /// # Panics
    /// Panics unless `0 <= drop_prob < 1` and the churn profile validates.
    pub fn with_churn(seed: u64, drop_prob: f64, churn: ChurnProfile) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop probability in [0,1)");
        churn.validate().expect("valid churn profile");
        Self {
            seed,
            drop_prob,
            churn,
        }
    }

    /// An injector that never drops (the paper's setting).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            churn: ChurnProfile::None,
        }
    }

    /// Configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Configured churn profile.
    pub fn churn(&self) -> ChurnProfile {
        self.churn
    }

    /// Restores a checkpointed injector. Decisions are a pure function of
    /// `(seed, round, client)`, so seed + probabilities are the whole
    /// state. The `churn` section is optional: v1 checkpoints predate it
    /// and restore with churn disabled.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let drop_prob = v.get("drop_prob")?.as_f64()?;
        if !(0.0..1.0).contains(&drop_prob) {
            return Err(JsonError::msg("drop probability in [0,1)"));
        }
        let churn = match v.opt("churn") {
            Some(c) => ChurnProfile::from_json(c)?,
            None => ChurnProfile::None,
        };
        Ok(Self {
            seed: v.get("seed")?.as_u64()?,
            drop_prob,
            churn,
        })
    }

    /// Whether `client`'s upload in global round `round` is lost.
    /// Deterministic in `(seed, round, client)` — independent of
    /// evaluation order, thread count, or how many other clients exist.
    pub fn drops(&self, round: u64, client: usize) -> bool {
        if self.drop_prob == 0.0 {
            return false;
        }
        let key = round.wrapping_mul(0x1000_0000_1b3) ^ (client as u64);
        let mut rng = substream(self.seed, SeedStream::Faults, key);
        rng.gen::<f64>() < self.drop_prob
    }

    /// Whether `client` is offline at logical tick `time`. Deterministic in
    /// `(seed, churn, time, client)` — independent of evaluation order,
    /// thread count, or checkpoint boundaries.
    pub fn offline(&self, time: u64, client: usize) -> bool {
        let (prob, window) = match self.churn {
            ChurnProfile::None => return false,
            ChurnProfile::Independent { offline_prob } => (offline_prob, time),
            ChurnProfile::Flappy {
                offline_prob,
                period,
            } => (offline_prob, time / period),
        };
        if prob == 0.0 {
            return false;
        }
        let key = window.wrapping_mul(0x1000_0000_1b3) ^ (client as u64);
        let mut rng = substream(self.seed, SeedStream::Churn, key);
        rng.gen::<f64>() < prob
    }
}

impl ToJson for FaultInjector {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("seed", &self.seed)
                .field("drop_prob", &self.drop_prob)
                .field("churn", &self.churn);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_drops() {
        let f = FaultInjector::disabled();
        assert!((0..1000).all(|c| !f.drops(0, c)));
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let f = FaultInjector::new(1, 0.3);
        let drops = (0..10_000).filter(|&c| f.drops(5, c)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(9, 0.5);
        let b = FaultInjector::new(9, 0.5);
        for round in 0..10 {
            for client in 0..50 {
                assert_eq!(a.drops(round, client), b.drops(round, client));
            }
        }
    }

    #[test]
    fn decisions_vary_by_round_and_client() {
        let f = FaultInjector::new(2, 0.5);
        let by_round: Vec<bool> = (0..64).map(|r| f.drops(r, 0)).collect();
        let by_client: Vec<bool> = (0..64).map(|c| f.drops(0, c)).collect();
        assert!(by_round.iter().any(|&d| d) && by_round.iter().any(|&d| !d));
        assert!(by_client.iter().any(|&d| d) && by_client.iter().any(|&d| !d));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_certain_drop() {
        let _ = FaultInjector::new(0, 1.0);
    }

    #[test]
    fn drop_verdicts_survive_checkpoint_restore() {
        use hf_tensor::ser::parse_json;
        let original = FaultInjector::with_churn(
            11,
            0.4,
            ChurnProfile::Flappy {
                offline_prob: 0.3,
                period: 4,
            },
        );
        let json = original.to_json();
        let restored = FaultInjector::from_json(&parse_json(&json).unwrap()).unwrap();
        for round in 0..20 {
            for client in 0..64 {
                assert_eq!(
                    original.drops(round, client),
                    restored.drops(round, client),
                    "round {round} client {client}"
                );
                assert_eq!(
                    original.offline(round, client),
                    restored.offline(round, client),
                    "tick {round} client {client}"
                );
            }
        }
    }

    #[test]
    fn drop_verdicts_are_independent_of_query_order() {
        let f = FaultInjector::new(13, 0.5);
        let pairs: Vec<(u64, usize)> = (0..16).flat_map(|r| (0..16).map(move |c| (r, c))).collect();
        let forward: Vec<bool> = pairs.iter().map(|&(r, c)| f.drops(r, c)).collect();
        let backward: Vec<bool> = pairs.iter().rev().map(|&(r, c)| f.drops(r, c)).collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        // Interleave drop and offline queries: neither stream perturbs the
        // other because both are stateless.
        let g = FaultInjector::with_churn(13, 0.5, ChurnProfile::Independent { offline_prob: 0.4 });
        let interleaved: Vec<bool> = pairs
            .iter()
            .map(|&(r, c)| {
                let _ = g.offline(r, c);
                g.drops(r, c)
            })
            .collect();
        assert_eq!(forward, interleaved);
    }

    #[test]
    fn legacy_json_without_churn_restores_with_churn_disabled() {
        use hf_tensor::ser::parse_json;
        let doc = parse_json(r#"{"seed":9,"drop_prob":0.25}"#).unwrap();
        let f = FaultInjector::from_json(&doc).unwrap();
        assert_eq!(f.churn(), ChurnProfile::None);
        assert!((0..100).all(|c| !f.offline(0, c)));
        // And its verdicts match a freshly built injector.
        let fresh = FaultInjector::new(9, 0.25);
        assert!((0..100).all(|c| f.drops(3, c) == fresh.drops(3, c)));
    }

    #[test]
    fn independent_churn_rate_approximates_probability() {
        let f = FaultInjector::with_churn(7, 0.0, ChurnProfile::Independent { offline_prob: 0.3 });
        let offline = (0..10_000).filter(|&c| f.offline(2, c)).count();
        let rate = offline as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn flappy_churn_holds_verdicts_for_the_whole_window() {
        let f = FaultInjector::with_churn(
            5,
            0.0,
            ChurnProfile::Flappy {
                offline_prob: 0.5,
                period: 8,
            },
        );
        for client in 0..32 {
            for window in 0..8u64 {
                let first = f.offline(window * 8, client);
                for t in window * 8..(window + 1) * 8 {
                    assert_eq!(f.offline(t, client), first, "client {client} tick {t}");
                }
            }
            // Across many windows the verdict must flip at least once.
            let flips: Vec<bool> = (0..64).map(|w| f.offline(w * 8, client)).collect();
            assert!(
                flips.iter().any(|&o| o != flips[0]),
                "client {client} never flips"
            );
        }
    }

    #[test]
    fn churn_profiles_roundtrip_through_json() {
        use hf_tensor::ser::parse_json;
        for p in [
            ChurnProfile::None,
            ChurnProfile::Independent { offline_prob: 0.2 },
            ChurnProfile::Flappy {
                offline_prob: 0.35,
                period: 6,
            },
        ] {
            let back = ChurnProfile::from_json(&parse_json(&p.to_json()).unwrap()).unwrap();
            assert_eq!(p, back);
        }
        assert!(ChurnProfile::parse("independent:0.2").is_ok());
        assert!(ChurnProfile::parse("flappy:0.3:5").is_ok());
        assert_eq!(ChurnProfile::parse("none").unwrap(), ChurnProfile::None);
        assert!(ChurnProfile::parse("flappy:1.5:5").is_err());
        assert!(ChurnProfile::parse("flappy:0.3:0").is_err());
        assert!(ChurnProfile::parse("bogus").is_err());
    }
}
