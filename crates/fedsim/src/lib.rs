//! # hf-fedsim
//!
//! Federated-learning protocol substrate: everything about *how* clients
//! and the server exchange state, independent of *what* the recommendation
//! algorithm does with it.
//!
//! * [`transport`] — update payloads (sparse item-embedding rows + flat
//!   predictor deltas) with a binary wire format and exact byte
//!   accounting.
//! * [`scheduler`] — the paper's round structure (§V-D): at each epoch the
//!   server shuffles the client queue and traverses it in rounds of 256
//!   selected clients.
//! * [`comm`] — communication-cost bookkeeping per client tier, the
//!   quantities behind Table III.
//! * [`parallel`] — work-stealing scoped worker pool running independent
//!   client computations within a round.
//! * [`linalg`] — threaded dense-kernel drivers (row-partitioned matmul)
//!   built on the same pool.
//! * [`faults`] — seeded client-failure injection (dropped updates) and
//!   churn profiles for robustness experiments beyond the paper's happy
//!   path.
//! * [`events`] — logical-clock event scheduling (latency profiles, the
//!   `(time, client)`-ordered arrival queue, dispatch bookkeeping) behind
//!   the asynchronous training mode.
//! * [`wire`] — the little-endian `Reader`/`Writer` primitives every
//!   binary format in the workspace encodes through (update payloads
//!   here, the compact artifact file in `hf_serve`, the `hf_net` frames).

#![warn(missing_docs)]

pub mod comm;
pub mod events;
pub mod faults;
pub mod linalg;
pub mod parallel;
pub mod scheduler;
pub mod transport;
pub mod wire;

pub use comm::{CommLedger, RoundCost};
pub use events::{EventQueue, EventScheduler, LatencyProfile, PendingArrival, TraversalPolicy};
pub use faults::{ChurnProfile, FaultInjector};
pub use scheduler::RoundScheduler;
pub use transport::{ClientUpdate, SparseRowUpdate};
