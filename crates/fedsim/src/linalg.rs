//! Threaded dense-kernel drivers built on [`crate::parallel`].
//!
//! `hf_tensor` keeps its kernels single-threaded (it sits below the
//! fan-out layer in the crate graph); this module fans the row-blocked
//! matmul over the work-stealing pool for the shapes where threading pays
//! — the DDR gradient (`Ẑ · K_off`, Eq. 13) and RESKD alignment step
//! (Eq. 17) both reduce to `(rows x d) · (d x d)` products whose row
//! blocks are independent.

use crate::parallel::parallel_map;
use hf_tensor::Matrix;

/// Below this many output elements the spawn overhead exceeds the kernel
/// time and the single-threaded path is used directly.
const PAR_MIN_ELEMS: usize = 64 * 64;

/// Matrix product `a * b` computed with up to `threads` workers.
///
/// The output is split into contiguous row blocks, each computed by
/// [`Matrix::matmul_rows`] — the same blocked kernel [`Matrix::matmul`]
/// uses — and concatenated in input order, so the result is **bit
/// identical** to the single-threaded product for every thread count.
/// Small shapes (or `threads <= 1`) fall through to `a.matmul(b)`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn par_matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    let (m, n) = (a.rows(), b.cols());
    if threads <= 1 || m * n < PAR_MIN_ELEMS || m < 2 {
        return a.matmul(b);
    }
    // More blocks than workers so the work-stealing pool can re-balance
    // if some blocks are served from warmer caches than others.
    let workers = threads.min(m);
    let block = m.div_ceil(workers * 2).max(8.min(m));
    let ranges: Vec<(usize, usize)> = (0..m)
        .step_by(block)
        .map(|start| (start, (start + block).min(m)))
        .collect();
    let blocks = parallel_map(&ranges, threads, |&(start, end)| {
        a.matmul_rows(b, start, end)
    });
    let mut out = Vec::with_capacity(m * n);
    for piece in blocks {
        out.extend_from_slice(piece.as_slice());
    }
    Matrix::from_vec(m, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn small_shapes_match_single_threaded() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        assert_eq!(bits(&par_matmul(&a, &b, 8)), bits(&a.matmul(&b)));
    }

    #[test]
    fn large_product_is_bit_identical_across_thread_counts() {
        let a = Matrix::from_fn(200, 96, |r, c| ((r * 96 + c) as f32 * 0.13).sin());
        let b = Matrix::from_fn(96, 120, |r, c| ((r * 120 + c) as f32 * 0.29).cos());
        let reference = a.matmul(&b);
        for threads in [1, 2, 3, 8] {
            let got = par_matmul(&a, &b, threads);
            assert_eq!(got.rows(), 200);
            assert_eq!(got.cols(), 120);
            assert_eq!(bits(&got), bits(&reference), "threads = {threads}");
        }
    }

    #[test]
    fn odd_row_counts_partition_cleanly() {
        // Row counts that do not divide evenly into blocks must still
        // cover every row exactly once.
        for m in [65usize, 127, 128, 131] {
            let a = Matrix::from_fn(m, 64, |r, c| ((r + c) as f32).sin());
            let b = Matrix::from_fn(64, 64, |r, c| ((r * 3 + c) as f32).cos());
            assert_eq!(bits(&par_matmul(&a, &b, 4)), bits(&a.matmul(&b)), "m = {m}");
        }
    }
}
