//! Scoped worker pool for intra-round parallelism.
//!
//! Clients selected in the same round train independently against the same
//! downloaded snapshot of the public parameters, so their local work is
//! embarrassingly parallel. [`parallel_map`] fans a slice of inputs over a
//! bounded number of crossbeam-scoped threads and returns outputs in input
//! order — determinism is preserved because each client's computation
//! derives its randomness from its own id, never from execution order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every element of `items`, using up to `threads` worker
/// threads, returning results in input order.
///
/// With `threads <= 1` (or one item) this degrades to a plain sequential
/// map with zero thread overhead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<SendPtr<R>> =
        out.iter_mut().map(|slot| SendPtr(slot as *mut Option<R>)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            let slots = &slots;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                let slot = slots[i].0;
                // SAFETY: index i is claimed exactly once via the atomic
                // counter, so each slot pointer is written by one thread
                // and the scope guarantees `out` outlives the workers.
                unsafe { slot.write(Some(result)) };
            });
        }
    })
    .expect("worker thread panicked");

    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Raw-pointer wrapper asserting cross-thread transferability; safe here
/// because the work-stealing counter hands each index to exactly one
/// worker.
struct SendPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        let par = parallel_map(&items, 4, |&x| x + 1);
        let seq = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(par, seq);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x * 3), vec![21]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn results_are_deterministic_regardless_of_threads() {
        let items: Vec<u64> = (0..256).collect();
        // A mildly expensive, pure function.
        let f = |&x: &u64| -> u64 {
            let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                h = h.rotate_left(13).wrapping_mul(31);
            }
            h
        };
        let a = parallel_map(&items, 1, f);
        let b = parallel_map(&items, 2, f);
        let c = parallel_map(&items, 8, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = [1, 2, 3, 4];
        let _ = parallel_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
