//! Scoped worker pool for intra-round parallelism.
//!
//! Clients selected in the same round train independently against the same
//! downloaded snapshot of the public parameters, so their local work is
//! embarrassingly parallel. [`parallel_map`] fans a slice of inputs over a
//! bounded number of `std::thread::scope` workers and returns outputs in
//! input order — determinism is preserved because each client's computation
//! derives its randomness from its own id, never from execution order.

/// Applies `f` to every element of `items`, using up to `threads` worker
/// threads, returning results in input order.
///
/// Each worker maps one contiguous chunk of the input, so result order
/// falls out of concatenation and no unsafe slot-pointer plumbing is
/// needed. With `threads <= 1` (or one item) this degrades to a plain
/// sequential map with zero thread overhead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        let par = parallel_map(&items, 4, |&x| x + 1);
        let seq = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(par, seq);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x * 3), vec![21]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn results_are_deterministic_regardless_of_threads() {
        let items: Vec<u64> = (0..256).collect();
        // A mildly expensive, pure function.
        let f = |&x: &u64| -> u64 {
            let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                h = h.rotate_left(13).wrapping_mul(31);
            }
            h
        };
        let a = parallel_map(&items, 1, f);
        let b = parallel_map(&items, 2, f);
        let c = parallel_map(&items, 8, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Guards the crossbeam → std::thread::scope rewrite: fan-out must
        // not perturb results (no reduction-order effects, no reordering),
        // down to the bit pattern of non-trivial f32 math.
        let items: Vec<u64> = (0..1000).collect();
        let f = |&x: &u64| -> f32 {
            let mut acc = (x as f32).sin();
            for k in 1..50 {
                acc += ((x * k) as f32).sqrt().cos() / k as f32;
            }
            acc
        };
        let seq = parallel_map(&items, 1, f);
        let par = parallel_map(&items, 8, f);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "item {i}: {a} != {b}");
        }
        // Input order: recompute independently and compare positionally.
        for (i, v) in par.iter().enumerate() {
            assert_eq!(v.to_bits(), f(&items[i]).to_bits(), "item {i} out of order");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = [1, 2, 3, 4];
        let _ = parallel_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
