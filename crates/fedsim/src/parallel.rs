//! Scoped worker pool for intra-round parallelism.
//!
//! Clients selected in the same round train independently against the same
//! downloaded snapshot of the public parameters, so their local work is
//! embarrassingly parallel. [`parallel_map`] fans a slice of inputs over a
//! bounded number of `std::thread::scope` workers and returns outputs in
//! input order — determinism is preserved because each client's computation
//! derives its randomness from its own id, never from execution order.
//!
//! Work is claimed from a shared atomic index in small batches rather than
//! pre-split into fixed contiguous chunks. Heterogeneous tiers make
//! per-client cost skewed (large-tier clients train wider models), and with
//! fixed chunking the round serialises on whichever worker drew the most
//! expensive chunk; with atomic claiming, workers that finish early steal
//! the remaining items instead of idling. Which worker computes an item
//! never affects its value, so results stay bit-identical across thread
//! counts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the number of items a worker claims per atomic fetch.
/// Small enough to keep stealing effective on skewed workloads, large
/// enough that the shared counter is not contended for cheap items.
const MAX_CLAIM: usize = 16;

/// Applies `f` to every element of `items`, using up to `threads` worker
/// threads, returning results in input order.
///
/// Workers repeatedly claim the next batch of items from a shared atomic
/// cursor (work stealing via self-scheduling), so skewed per-item costs
/// re-balance automatically. Each worker records `(index, value)` pairs
/// that are scattered back into input order after the join — `f(items[i])`
/// is computed exactly once, by exactly one worker, so the output is
/// bit-identical regardless of `threads`. With `threads <= 1` (or one
/// item) this degrades to a plain sequential map with zero thread or
/// atomic overhead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    // Batch size: fine-grained enough that `workers * 4` claims exist even
    // if every item were uniform, capped so cheap items amortise the
    // atomic traffic.
    let claim = (items.len() / (workers * 4)).clamp(1, MAX_CLAIM);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(claim, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + claim).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            produced.push((start + i, f(item)));
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("worker thread panicked") {
                debug_assert!(slots[i].is_none(), "item {i} computed twice");
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        let par = parallel_map(&items, 4, |&x| x + 1);
        let seq = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(par, seq);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x * 3), vec![21]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn results_are_deterministic_regardless_of_threads() {
        let items: Vec<u64> = (0..256).collect();
        // A mildly expensive, pure function.
        let f = |&x: &u64| -> u64 {
            let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                h = h.rotate_left(13).wrapping_mul(31);
            }
            h
        };
        let a = parallel_map(&items, 1, f);
        let b = parallel_map(&items, 2, f);
        let c = parallel_map(&items, 8, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Guards the fan-out rewrite (fixed chunks → work stealing): the
        // pool must not perturb results (no reduction-order effects, no
        // reordering), down to the bit pattern of non-trivial f32 math.
        // Per-item cost grows linearly with the index — the skewed-cost
        // profile of heterogeneous tiers — so late items land on whichever
        // worker steals them, exercising out-of-order claiming.
        let items: Vec<u64> = (0..1000).collect();
        let f = |&x: &u64| -> f32 {
            let mut acc = (x as f32).sin();
            // Skew: item i costs ~i inner iterations.
            for k in 1..(x + 2) {
                acc += ((x * k) as f32).sqrt().cos() / k as f32;
            }
            acc
        };
        let seq = parallel_map(&items, 1, f);
        for threads in [2, 8] {
            let par = parallel_map(&items, threads, f);
            assert_eq!(seq.len(), par.len());
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{threads} threads, item {i}: {a} != {b}"
                );
            }
        }
        // Input order: recompute independently and compare positionally.
        let par = parallel_map(&items, 8, f);
        for (i, v) in par.iter().enumerate() {
            assert_eq!(v.to_bits(), f(&items[i]).to_bits(), "item {i} out of order");
        }
    }

    #[test]
    fn extreme_skew_completes_and_matches() {
        // One item dwarfs the rest: fixed chunking would strand all other
        // items of that chunk behind it, work stealing must not deadlock
        // or misplace results.
        let items: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| -> u64 {
            let iters = if x == 0 { 200_000 } else { 10 };
            let mut h = x + 1;
            for _ in 0..iters {
                h = h.rotate_left(7).wrapping_mul(0x2545_f491_4f6c_dd1d);
            }
            h
        };
        let seq: Vec<u64> = items.iter().map(f).collect();
        assert_eq!(parallel_map(&items, 8, f), seq);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = [1, 2, 3, 4];
        let _ = parallel_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
