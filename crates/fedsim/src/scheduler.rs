//! Round scheduling.
//!
//! Paper §V-D: "At the beginning of an epoch, the server shuffles the
//! queue of clients. Then, at each epoch, there are several rounds for the
//! central server to traverse the client queue. During each round, the
//! central server selects 256 users for training." The scheduler
//! reproduces exactly that: one shuffle per epoch, then contiguous chunks
//! of the queue as rounds (the final round of an epoch may be smaller).
//!
//! The shuffle itself is exposed through
//! [`TraversalPolicy`](crate::events::TraversalPolicy): synchronous rounds
//! are one policy over the per-epoch traversal (chunk it into lockstep
//! cohorts); the event-driven asynchronous engine
//! ([`crate::events::EventScheduler`]) is another consumer of the very same
//! traversal, so both modes share the shuffle RNG stream.

use crate::events::TraversalPolicy;
use hf_tensor::rng::StdRng;
use hf_tensor::rng::{stream, SeedStream};

/// Epoch/round scheduler over a fixed client population.
#[derive(Clone, Debug)]
pub struct RoundScheduler {
    queue: Vec<usize>,
    clients_per_round: usize,
    rng: StdRng,
}

impl RoundScheduler {
    /// Creates a scheduler for `num_clients` clients with the given round
    /// size, seeded deterministically.
    ///
    /// # Panics
    /// Panics on an empty population or zero round size.
    pub fn new(num_clients: usize, clients_per_round: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "no clients to schedule");
        assert!(clients_per_round > 0, "round size must be positive");
        Self {
            queue: (0..num_clients).collect(),
            clients_per_round: clients_per_round.min(num_clients),
            rng: stream(seed, SeedStream::ClientQueue),
        }
    }

    /// Paper-default round size of 256 clients.
    pub fn paper_default(num_clients: usize, seed: u64) -> Self {
        Self::new(num_clients, 256, seed)
    }

    /// Admits one newly arrived client, returning its id. The client joins
    /// the traversal from the next shuffle on; the current epoch's chunks
    /// (already handed out by [`RoundScheduler::next_epoch`]) are
    /// unaffected. Admission order is part of the deterministic state: the
    /// queue (including admits) is checkpointed verbatim.
    pub fn admit(&mut self) -> usize {
        let client = self.queue.len();
        self.queue.push(client);
        client
    }

    /// Number of rounds per epoch (`ceil(num_clients / clients_per_round)`).
    pub fn rounds_per_epoch(&self) -> usize {
        self.queue.len().div_ceil(self.clients_per_round)
    }

    /// Shuffles the queue and returns this epoch's rounds — the synchronous
    /// policy: the traversal chunked into lockstep cohorts.
    pub fn next_epoch(&mut self) -> Vec<Vec<usize>> {
        self.next_traversal();
        self.queue
            .chunks(self.clients_per_round)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Restores a checkpointed scheduler (queue order + shuffle-RNG state),
    /// resuming the epoch sequence exactly where it was captured.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let queue = v.get("queue")?.as_usize_vec()?;
        if queue.is_empty() {
            return Err(hf_tensor::ser::JsonError::msg("empty scheduler queue"));
        }
        let clients_per_round = v.get("clients_per_round")?.as_usize()?;
        if clients_per_round == 0 {
            return Err(hf_tensor::ser::JsonError::msg("zero round size"));
        }
        Ok(Self {
            queue,
            clients_per_round,
            rng: StdRng::from_json(v.get("rng")?)?,
        })
    }
}

impl TraversalPolicy for RoundScheduler {
    fn population(&self) -> usize {
        self.queue.len()
    }

    fn next_traversal(&mut self) -> Vec<usize> {
        hf_tensor::rng::shuffle(&mut self.queue, &mut self.rng);
        self.queue.clone()
    }
}

impl hf_tensor::ser::ToJson for RoundScheduler {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("queue", &self.queue)
                .field("clients_per_round", &self.clients_per_round)
                .field("rng", &self.rng);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_traverses_every_client_once() {
        let mut s = RoundScheduler::new(100, 32, 1);
        let rounds = s.next_epoch();
        assert_eq!(rounds.len(), 4); // ceil(100/32)
        let mut all: Vec<usize> = rounds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn last_round_holds_the_remainder() {
        let mut s = RoundScheduler::new(100, 32, 1);
        let rounds = s.next_epoch();
        assert_eq!(rounds[0].len(), 32);
        assert_eq!(rounds[3].len(), 4);
    }

    #[test]
    fn epochs_differ_in_order() {
        let mut s = RoundScheduler::new(64, 64, 2);
        let a = s.next_epoch();
        let b = s.next_epoch();
        assert_ne!(a[0], b[0], "consecutive epochs should reshuffle");
    }

    #[test]
    fn scheduling_is_deterministic_per_seed() {
        let mut s1 = RoundScheduler::new(50, 16, 7);
        let mut s2 = RoundScheduler::new(50, 16, 7);
        assert_eq!(s1.next_epoch(), s2.next_epoch());
        assert_eq!(s1.next_epoch(), s2.next_epoch());
    }

    #[test]
    fn round_size_is_clamped_to_population() {
        let mut s = RoundScheduler::new(10, 256, 3);
        let rounds = s.next_epoch();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].len(), 10);
        assert_eq!(s.rounds_per_epoch(), 1);
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn rejects_empty_population() {
        let _ = RoundScheduler::new(0, 8, 0);
    }

    #[test]
    fn traversal_and_rounds_share_the_shuffle_stream() {
        let mut by_rounds = RoundScheduler::new(50, 16, 7);
        let mut by_traversal = RoundScheduler::new(50, 16, 7);
        for _ in 0..3 {
            let flat: Vec<usize> = by_rounds.next_epoch().into_iter().flatten().collect();
            assert_eq!(flat, by_traversal.next_traversal());
        }
    }

    #[test]
    fn admitted_clients_join_the_next_traversal() {
        let mut s = RoundScheduler::new(10, 4, 3);
        let _ = s.next_epoch();
        assert_eq!(s.admit(), 10);
        assert_eq!(s.admit(), 11);
        assert_eq!(s.population(), 12);
        let mut flat: Vec<usize> = s.next_epoch().into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn admission_is_checkpointed_with_the_queue() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut s = RoundScheduler::new(8, 4, 9);
        s.next_epoch();
        s.admit();
        let mut resumed = RoundScheduler::from_json(&parse_json(&s.to_json()).unwrap()).unwrap();
        assert_eq!(s.next_epoch(), resumed.next_epoch());
    }

    #[test]
    fn checkpoint_resumes_the_epoch_sequence_exactly() {
        use hf_tensor::ser::{parse_json, ToJson};
        let mut s = RoundScheduler::new(50, 16, 7);
        s.next_epoch();
        let mut resumed = RoundScheduler::from_json(&parse_json(&s.to_json()).unwrap()).unwrap();
        for _ in 0..3 {
            assert_eq!(s.next_epoch(), resumed.next_epoch());
        }
    }
}
