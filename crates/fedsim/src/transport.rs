//! Update payloads and their wire format.
//!
//! A client upload consists of (paper Algorithm 1, lines 18/21/24):
//!
//! * the item-embedding update `∇V_i` — sparse by construction, since a
//!   client's local training only touches the rows of items it sampled;
//! * one flat predictor delta `∇Θ` per tier the client trains (a small
//!   client uploads `Θs` only; a large client uploads `Θs`, `Θm`, `Θl`).
//!
//! The binary encoding exists so communication costs are *measured*, not
//! estimated: `encoded_len` is exercised against real buffers in tests,
//! and the Table III harness reports both the paper's dense accounting
//! and the sparse bytes this format actually moves.

use crate::wire::{Reader, Writer};

/// Sparse row-keyed update to an embedding table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseRowUpdate {
    /// Row width (the uploading tier's embedding dimension).
    pub dim: usize,
    /// `(row index, row delta)` pairs; each delta is `dim` long.
    pub rows: Vec<(u32, Vec<f32>)>,
}

impl SparseRowUpdate {
    /// Creates an update, validating row widths.
    ///
    /// # Panics
    /// Panics if any row delta is not `dim` long.
    pub fn new(dim: usize, rows: Vec<(u32, Vec<f32>)>) -> Self {
        for (r, d) in &rows {
            assert_eq!(d.len(), dim, "row {r} delta has width {} != {dim}", d.len());
        }
        Self { dim, rows }
    }

    /// Number of touched rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows are touched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Scales all deltas in place.
    pub fn scale(&mut self, alpha: f32) {
        for (_, d) in &mut self.rows {
            d.iter_mut().for_each(|x| *x *= alpha);
        }
    }
}

/// One client's complete upload for a round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClientUpdate {
    /// Sparse item-embedding delta.
    pub items: SparseRowUpdate,
    /// `(tier index, flat predictor delta)` pairs, ascending tier.
    pub thetas: Vec<(u8, Vec<f32>)>,
}

impl ClientUpdate {
    /// Exact size of [`ClientUpdate::encode`]'s output in bytes.
    pub fn encoded_len(&self) -> usize {
        // Header: dim (u32) + row count (u32).
        let mut n = 8;
        // Rows: index (u32) + dim floats.
        n += self.items.rows.len() * (4 + 4 * self.items.dim);
        // Theta section: count (u32), then per entry tier (u8) + len (u32) + floats.
        n += 4;
        for (_, flat) in &self.thetas {
            n += 1 + 4 + 4 * flat.len();
        }
        n
    }

    /// Serialises to the binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Writer::with_capacity(self.encoded_len());
        buf.put_u32_le(self.items.dim as u32);
        buf.put_u32_le(self.items.rows.len() as u32);
        for (row, delta) in &self.items.rows {
            buf.put_u32_le(*row);
            for &x in delta {
                buf.put_f32_le(x);
            }
        }
        buf.put_u32_le(self.thetas.len() as u32);
        for (tier, flat) in &self.thetas {
            buf.put_u8(*tier);
            buf.put_u32_le(flat.len() as u32);
            for &x in flat {
                buf.put_f32_le(x);
            }
        }
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf.into_vec()
    }

    /// Parses the binary wire format.
    ///
    /// Returns `None` on truncated or malformed input (a real server must
    /// not panic on a hostile payload).
    pub fn decode(buf: impl AsRef<[u8]>) -> Option<Self> {
        let mut buf = Reader::new(buf.as_ref());
        let dim = buf.get_u32_le()? as usize;
        let n_rows = buf.get_u32_le()? as usize;
        let row_bytes = n_rows.checked_mul(4 + 4 * dim)?;
        if buf.remaining() < row_bytes {
            return None;
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let row = buf.get_u32_le()?;
            let mut delta = Vec::with_capacity(dim);
            for _ in 0..dim {
                delta.push(buf.get_f32_le()?);
            }
            rows.push((row, delta));
        }
        let n_thetas = buf.get_u32_le()? as usize;
        if n_thetas > 16 {
            return None; // sanity bound: no protocol has that many tiers
        }
        let mut thetas = Vec::with_capacity(n_thetas);
        for _ in 0..n_thetas {
            let tier = buf.get_u8()?;
            let len = buf.get_u32_le()? as usize;
            if buf.remaining() < 4 * len {
                return None;
            }
            let mut flat = Vec::with_capacity(len);
            for _ in 0..len {
                flat.push(buf.get_f32_le()?);
            }
            thetas.push((tier, flat));
        }
        Some(Self {
            items: SparseRowUpdate { dim, rows },
            thetas,
        })
    }

    /// Upload size under the paper's *dense* accounting (Table III):
    /// the full `|V| x dim` table plus every predictor, in parameters.
    pub fn dense_param_count(&self, num_items: usize) -> usize {
        num_items * self.items.dim + self.thetas.iter().map(|(_, f)| f.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClientUpdate {
        ClientUpdate {
            items: SparseRowUpdate::new(
                3,
                vec![(5, vec![1.0, -2.0, 0.5]), (11, vec![0.0, 0.25, -0.75])],
            ),
            thetas: vec![(0, vec![0.1, 0.2]), (2, vec![-0.3])],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let u = sample();
        let wire = u.encode();
        let back = ClientUpdate::decode(wire).unwrap();
        assert_eq!(u, back);
    }

    #[test]
    fn encoded_len_is_exact() {
        let u = sample();
        assert_eq!(u.encode().len(), u.encoded_len());
        let empty = ClientUpdate::default();
        assert_eq!(empty.encode().len(), empty.encoded_len());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let wire = sample().encode();
        for cut in [0, 3, 7, 9, wire.len() - 1] {
            assert!(
                ClientUpdate::decode(&wire[..cut]).is_none(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn hostile_row_count_is_rejected() {
        // Claim 2^32-1 rows with a tiny buffer: must fail cleanly.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ClientUpdate::decode(buf).is_none());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn sparse_update_validates_row_width() {
        let _ = SparseRowUpdate::new(3, vec![(0, vec![1.0])]);
    }

    #[test]
    fn dense_param_count_matches_table_iii_formula() {
        let u = sample();
        // size(V) + size(Θ): 100 items * dim 3 + (2 + 1) predictor params.
        assert_eq!(u.dense_param_count(100), 303);
    }

    #[test]
    fn scale_rescales_deltas() {
        let mut u = sample().items;
        u.scale(2.0);
        assert_eq!(u.rows[0].1, vec![2.0, -4.0, 1.0]);
    }
}
