//! Little-endian wire primitives — the std-only replacement for the
//! `bytes` crate, shared by every binary format in the workspace.
//!
//! [`Reader`] is a borrowing cursor over `&[u8]`; every accessor returns
//! `Option` so malformed or truncated input surfaces as a clean decode
//! failure, never a panic. [`Writer`] is an append-only `Vec<u8>` builder.
//! The update payloads in [`crate::transport`], the compact artifact
//! format in `hf_serve`, and the `hf_net` frame vocabulary all encode
//! through these two types, so "little-endian, length-prefixed" means the
//! same thing everywhere.

/// Little-endian read cursor over a borrowed byte slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.buf.split_first()?;
        self.buf = rest;
        Some(b)
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> Option<u16> {
        let (head, rest) = self.buf.split_first_chunk::<2>()?;
        self.buf = rest;
        Some(u16::from_le_bytes(*head))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> Option<u32> {
        let (head, rest) = self.buf.split_first_chunk::<4>()?;
        self.buf = rest;
        Some(u32::from_le_bytes(*head))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> Option<u64> {
        let (head, rest) = self.buf.split_first_chunk::<8>()?;
        self.buf = rest;
        Some(u64::from_le_bytes(*head))
    }

    /// Reads a little-endian `f32` (bit-exact: floats travel as their
    /// IEEE-754 bits).
    pub fn get_f32_le(&mut self) -> Option<f32> {
        self.get_u32_le().map(f32::from_bits)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Reads `n` little-endian `f32`s into a vector, checking the length
    /// up front so a hostile count cannot trigger a huge allocation.
    pub fn get_f32_vec(&mut self, n: usize) -> Option<Vec<f32>> {
        if self.remaining() < n.checked_mul(4)? {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32_le()?);
        }
        Some(out)
    }

    /// Reads `n` little-endian `u32`s, with the same up-front length check
    /// as [`Reader::get_f32_vec`].
    pub fn get_u32_vec(&mut self, n: usize) -> Option<Vec<u32>> {
        if self.remaining() < n.checked_mul(4)? {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32_le()?);
        }
        Some(out)
    }
}

/// Little-endian append-only writer.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16_le(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `f32` as its IEEE-754 bits.
    pub fn put_f32_le(&mut self, x: f32) {
        self.put_u32_le(x.to_bits());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(123_456);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(-0.0);
        w.put_bytes(b"hi");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u16_le(), Some(0xBEEF));
        assert_eq!(r.get_u32_le(), Some(123_456));
        assert_eq!(r.get_u64_le(), Some(u64::MAX - 1));
        assert_eq!(r.get_f32_le().map(f32::to_bits), Some((-0.0f32).to_bits()));
        assert_eq!(r.get_bytes(2), Some(&b"hi"[..]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), None);
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32_le(), None);
        assert_eq!(r.get_bytes(4), None);
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8(), Some(1));
    }

    #[test]
    fn hostile_vec_counts_are_rejected_without_allocating() {
        let buf = [0u8; 8];
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_f32_vec(usize::MAX / 2), None);
        assert_eq!(r.get_u32_vec(u32::MAX as usize), None);
        // Valid small reads still work afterwards.
        assert_eq!(r.get_f32_vec(2).map(|v| v.len()), Some(2));
    }
}
