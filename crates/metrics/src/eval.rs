//! Per-user evaluation and aggregation.
//!
//! The protocol (paper §V-B, following [69], [73]): for every user with a
//! non-empty test set, score the full item universe, mask the user's
//! training positives, take the top-K, and compute Recall@K / NDCG@K
//! against the held-out items. Aggregates are plain means over evaluated
//! users; [`GroupedEval`] additionally buckets users (by tier) for the
//! Fig. 6 breakdown.

use crate::ranking;
use crate::topk::top_k_excluding;

/// Metrics of a single user at one cutoff.
#[derive(Clone, Copy, Debug)]
pub struct UserEval {
    /// Recall@K.
    pub recall: f64,
    /// NDCG@K.
    pub ndcg: f64,
    /// HitRate@K.
    pub hit_rate: f64,
    /// Precision@K.
    pub precision: f64,
    /// Mean reciprocal rank of the first hit within the top-K list.
    pub mrr: f64,
}

/// Aggregated metrics over a user population.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalResult {
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
    /// Mean HitRate@K.
    pub hit_rate: f64,
    /// Mean Precision@K.
    pub precision: f64,
    /// Mean MRR.
    pub mrr: f64,
    /// Number of users with a non-empty test set that were evaluated.
    pub users: usize,
}

impl EvalResult {
    /// Paper-style one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "Recall@K {:.5}  NDCG@K {:.5}  HR@K {:.4}  ({} users)",
            self.recall, self.ndcg, self.hit_rate, self.users
        )
    }
}

impl hf_tensor::ser::ToJson for EvalResult {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("recall", &self.recall)
                .field("ndcg", &self.ndcg)
                .field("hit_rate", &self.hit_rate)
                .field("precision", &self.precision)
                .field("mrr", &self.mrr)
                .field("users", &self.users);
        });
    }
}

impl EvalResult {
    /// Restores a checkpointed evaluation result.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        Ok(Self {
            recall: v.get("recall")?.as_f64()?,
            ndcg: v.get("ndcg")?.as_f64()?,
            hit_rate: v.get("hit_rate")?.as_f64()?,
            precision: v.get("precision")?.as_f64()?,
            mrr: v.get("mrr")?.as_f64()?,
            users: v.get("users")?.as_usize()?,
        })
    }
}

/// Full-ranking evaluator at cutoff `k` (paper: 20).
#[derive(Clone, Copy, Debug)]
pub struct Evaluator {
    /// Ranking cutoff.
    pub k: usize,
}

impl Evaluator {
    /// Paper-default cutoff of 20.
    pub fn paper_default() -> Self {
        Self { k: 20 }
    }

    /// Evaluates one user from a full score vector.
    ///
    /// `train_mask` (sorted) is excluded from ranking; `test` (sorted) is
    /// the relevant set. Returns `None` when the user has no test items —
    /// such users do not participate in the aggregate, matching the
    /// standard protocol.
    pub fn evaluate_user(
        &self,
        scores: &[f32],
        train_mask: &[u32],
        test: &[u32],
    ) -> Option<UserEval> {
        if test.is_empty() {
            return None;
        }
        let ranked = top_k_excluding(scores, self.k, train_mask);
        self.evaluate_ranked(&ranked, test)
    }

    /// Evaluates an already-ranked top-K list (best first) against the
    /// relevant set — the entry point for rankings produced outside this
    /// crate, e.g. by the serving layer's `Recommender`. Returns `None`
    /// when the user has no test items.
    pub fn evaluate_ranked(&self, ranked: &[u32], test: &[u32]) -> Option<UserEval> {
        if test.is_empty() {
            return None;
        }
        Some(UserEval {
            recall: ranking::recall_at_k(ranked, test, self.k),
            ndcg: ranking::ndcg_at_k(ranked, test, self.k),
            hit_rate: ranking::hit_rate_at_k(ranked, test, self.k),
            precision: ranking::precision_at_k(ranked, test, self.k),
            mrr: ranking::mrr(ranked, test),
        })
    }

    /// Mean-aggregates user evaluations.
    pub fn aggregate(users: impl IntoIterator<Item = UserEval>) -> EvalResult {
        let mut acc = EvalResult::default();
        for u in users {
            acc.recall += u.recall;
            acc.ndcg += u.ndcg;
            acc.hit_rate += u.hit_rate;
            acc.precision += u.precision;
            acc.mrr += u.mrr;
            acc.users += 1;
        }
        if acc.users > 0 {
            let n = acc.users as f64;
            acc.recall /= n;
            acc.ndcg /= n;
            acc.hit_rate /= n;
            acc.precision /= n;
            acc.mrr /= n;
        }
        acc
    }
}

/// Aggregation bucketed by group index — the per-tier breakdown of Fig. 6.
#[derive(Clone, Debug)]
pub struct GroupedEval {
    buckets: Vec<Vec<UserEval>>,
}

impl GroupedEval {
    /// Creates `num_groups` empty buckets.
    pub fn new(num_groups: usize) -> Self {
        Self {
            buckets: vec![Vec::new(); num_groups],
        }
    }

    /// Records one user's evaluation under `group`.
    ///
    /// # Panics
    /// Panics if `group` is out of range.
    pub fn push(&mut self, group: usize, eval: UserEval) {
        self.buckets[group].push(eval);
    }

    /// Per-group aggregates.
    pub fn per_group(&self) -> Vec<EvalResult> {
        self.buckets
            .iter()
            .map(|b| Evaluator::aggregate(b.iter().copied()))
            .collect()
    }

    /// Aggregate over all groups combined.
    pub fn overall(&self) -> EvalResult {
        Evaluator::aggregate(self.buckets.iter().flatten().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_user_masks_train_items() {
        let ev = Evaluator { k: 2 };
        // Item 0 has the best score but is a train positive; items 1, 2
        // should be ranked. Test item is 2.
        let scores = [9.0, 1.0, 2.0, 0.5];
        let result = ev.evaluate_user(&scores, &[0], &[2]).unwrap();
        assert_eq!(result.recall, 1.0);
        assert_eq!(result.hit_rate, 1.0);
        assert_eq!(result.mrr, 1.0); // rank 1 after masking
    }

    #[test]
    fn evaluate_user_skips_empty_test() {
        let ev = Evaluator::paper_default();
        assert!(ev.evaluate_user(&[1.0, 2.0], &[], &[]).is_none());
    }

    #[test]
    fn aggregate_means() {
        let users = vec![
            UserEval {
                recall: 1.0,
                ndcg: 1.0,
                hit_rate: 1.0,
                precision: 0.5,
                mrr: 1.0,
            },
            UserEval {
                recall: 0.0,
                ndcg: 0.0,
                hit_rate: 0.0,
                precision: 0.0,
                mrr: 0.0,
            },
        ];
        let agg = Evaluator::aggregate(users);
        assert_eq!(agg.users, 2);
        assert!((agg.recall - 0.5).abs() < 1e-12);
        assert!((agg.ndcg - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_nothing_is_zero() {
        let agg = Evaluator::aggregate(Vec::new());
        assert_eq!(agg.users, 0);
        assert_eq!(agg.recall, 0.0);
    }

    #[test]
    fn perfect_model_scores_one() {
        let ev = Evaluator { k: 3 };
        // Scores proportional to relevance.
        let scores = [0.1, 0.9, 0.8, 0.2];
        let result = ev.evaluate_user(&scores, &[], &[1, 2]).unwrap();
        assert_eq!(result.recall, 1.0);
        assert!((result.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_eval_buckets_and_overall() {
        let mut g = GroupedEval::new(3);
        g.push(
            0,
            UserEval {
                recall: 1.0,
                ndcg: 1.0,
                hit_rate: 1.0,
                precision: 1.0,
                mrr: 1.0,
            },
        );
        g.push(
            2,
            UserEval {
                recall: 0.0,
                ndcg: 0.0,
                hit_rate: 0.0,
                precision: 0.0,
                mrr: 0.0,
            },
        );
        let per = g.per_group();
        assert_eq!(per[0].users, 1);
        assert_eq!(per[1].users, 0);
        assert_eq!(per[2].users, 1);
        assert!((g.overall().recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_metrics() {
        let agg = EvalResult {
            recall: 0.1,
            ndcg: 0.2,
            hit_rate: 0.3,
            precision: 0.0,
            mrr: 0.0,
            users: 7,
        };
        let s = agg.summary();
        assert!(s.contains("0.10000") && s.contains("7 users"));
    }
}
