//! Log-bucketed latency histogram.
//!
//! The serving stack measures socket-to-socket latency under load, where
//! storing every sample is wasteful and percentiles over a sorted vector
//! do not merge across threads. [`LatencyHistogram`] instead counts
//! samples in geometrically spaced buckets: constant *relative* error
//! (each bucket is [`GROWTH`] wider than the previous one, so any
//! reported quantile is within ~4% of the true value), constant memory,
//! and lossless merging — each load-generator connection records into its
//! own histogram and the totals are summed at the end.
//!
//! Quantiles interpolate within the winning bucket, so `quantile(0.0)` /
//! `quantile(1.0)` approach the recorded extremes rather than bucket
//! midpoints.

use std::time::Duration;

/// Geometric growth factor between bucket upper bounds (~8.3% per bucket,
/// ≤ ~4.2% half-width relative quantile error).
const GROWTH: f64 = 1.083;

/// Upper bound of bucket 0, in seconds (1 µs — below any socket round
/// trip this stack can observe).
const BASE: f64 = 1e-6;

/// Number of buckets. `BASE * GROWTH^(N-1)` ≈ 6.7e3 seconds, far beyond
/// any latency worth distinguishing; larger samples clamp into the last
/// bucket.
const BUCKETS: usize = 285;

/// A mergeable, fixed-memory histogram of latency samples with
/// geometrically spaced buckets.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Exact extremes, in seconds (quantile interpolation clamps to
    /// these, so p0/p100 are exact).
    min: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records one duration sample.
    pub fn record(&mut self, sample: Duration) {
        self.record_secs(sample.as_secs_f64());
    }

    /// Records one sample given in seconds. Negative and NaN samples are
    /// clamped to zero (they can only come from clock skew).
    pub fn record_secs(&mut self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = Self::bucket_of(secs);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
    }

    /// Adds every sample of `other` into `self` (lossless: bucket counts
    /// are summed).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-quantile (`p` in `[0, 1]`) in seconds, or `None` when the
    /// histogram is empty. Linear interpolation inside the winning
    /// bucket, clamped to the exact recorded extremes.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // The extremes are tracked exactly; skip the bucket walk.
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 1.0 {
            return Some(self.max);
        }
        // Rank of the wanted sample (1-based, nearest-rank).
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate inside bucket i by the rank's position.
                let (lo, hi) = Self::bucket_bounds(i);
                let within = (rank - seen) as f64 / c as f64;
                let v = lo + (hi - lo) * within;
                return Some(v.clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// [`LatencyHistogram::quantile`] in milliseconds (the unit the bench
    /// tables print).
    pub fn quantile_ms(&self, p: f64) -> Option<f64> {
        self.quantile(p).map(|s| s * 1e3)
    }

    /// Mean of the recorded samples in seconds (bucket-midpoint
    /// approximation), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let (lo, hi) = Self::bucket_bounds(i);
                sum += c as f64 * (lo + hi) * 0.5;
            }
        }
        Some(sum / self.total as f64)
    }

    /// Non-empty `(bucket upper bound in seconds, count)` pairs —
    /// the raw series a `--json` snapshot archives.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bounds(i).1, c))
            .collect()
    }

    /// Index of the bucket holding `secs`.
    fn bucket_of(secs: f64) -> usize {
        if secs <= BASE {
            return 0;
        }
        let idx = (secs / BASE).ln() / GROWTH.ln();
        (idx.ceil() as usize).min(BUCKETS - 1)
    }

    /// `(lower, upper)` bounds of bucket `i`, in seconds.
    fn bucket_bounds(i: usize) -> (f64, f64) {
        let hi = BASE * GROWTH.powi(i as i32);
        let lo = if i == 0 { 0.0 } else { hi / GROWTH };
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        for p in [0.0, 0.5, 0.99, 1.0] {
            let q = h.quantile(p).unwrap();
            assert!((q - 3e-3).abs() < 3e-3 * 0.05, "p{p}: {q}");
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        // 1..=1000 µs uniform: p50 ≈ 500 µs, p99 ≈ 990 µs.
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 500e-6).abs() / 500e-6 < 0.05, "p50 {p50}");
        assert!((p99 - 990e-6).abs() / 990e-6 < 0.05, "p99 {p99}");
        // Quantiles are monotone in p.
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(17));
        h.record(Duration::from_millis(40));
        assert_eq!(h.quantile(0.0), Some(17e-6));
        assert_eq!(h.quantile(1.0), Some(40e-3));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_micros(10 + i * 7);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(p), whole.quantile(p), "p{p}");
        }
    }

    #[test]
    fn degenerate_samples_are_clamped_not_panicked() {
        let mut h = LatencyHistogram::new();
        h.record_secs(-1.0);
        h.record_secs(f64::NAN);
        h.record_secs(1e12); // clamps into the last bucket
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5).unwrap().is_finite());
    }

    #[test]
    fn buckets_expose_only_populated_cells() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(10));
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        assert!(buckets[0].0 < buckets[1].0);
    }
}
