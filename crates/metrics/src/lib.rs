//! # hf-metrics
//!
//! Ranking metrics and the full-ranking evaluation harness.
//!
//! The paper evaluates with Recall@20 and NDCG@20 (§V-B) under the
//! standard full-ranking protocol: for each user, every item the user has
//! not interacted with during training is scored, the top-K are selected,
//! and hits against the held-out test items are measured. This crate is
//! model-agnostic — callers supply a score vector per user — so the same
//! harness serves every strategy, tier, and base model in the workspace.
//!
//! * [`ranking`] — Recall@K, NDCG@K, HitRate@K, Precision@K, MRR on a
//!   ranked list.
//! * [`topk`] — top-K selection over a score vector with a sorted
//!   exclusion mask (train positives).
//! * [`eval`] — per-user evaluation plus aggregation, including the
//!   per-tier breakdown behind the paper's Fig. 6.
//! * [`latency`] — log-bucketed, mergeable latency histogram (p50/p95/p99
//!   with bounded relative error) for the serving and load-generation
//!   stack.

#![warn(missing_docs)]

pub mod eval;
pub mod latency;
pub mod ranking;
pub mod topk;

pub use eval::{EvalResult, Evaluator, UserEval};
pub use latency::LatencyHistogram;
pub use topk::{top_k_excluding, top_k_scored};
