//! Ranking metrics over a recommended list.
//!
//! All functions take the recommendation list in rank order (best first)
//! and the relevant (held-out test) items as a **sorted** slice, matching
//! how `hf-dataset` stores splits.

/// `true` iff `item` is in the sorted `relevant` slice.
#[inline]
fn is_relevant(relevant: &[u32], item: u32) -> bool {
    relevant.binary_search(&item).is_ok()
}

/// Recall@K: fraction of relevant items that appear in the top-K.
///
/// Returns 0 when there are no relevant items.
pub fn recall_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|&&i| is_relevant(relevant, i))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Precision@K: fraction of the top-K that is relevant.
pub fn precision_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|&&i| is_relevant(relevant, i))
        .count();
    hits as f64 / k.min(ranked.len()).max(1) as f64
}

/// HitRate@K: 1 if any relevant item appears in the top-K.
pub fn hit_rate_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if ranked.iter().take(k).any(|&i| is_relevant(relevant, i)) {
        1.0
    } else {
        0.0
    }
}

/// NDCG@K with binary relevance: `DCG = Σ 1/log2(rank+1)` over hits,
/// normalised by the ideal DCG for `min(K, |relevant|)` hits.
pub fn ndcg_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, &i)| is_relevant(relevant, i))
        .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|pos| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    dcg / ideal
}

/// Mean reciprocal rank (unbounded K): `1/rank` of the first hit, 0 if no
/// relevant item is recommended.
pub fn mrr(ranked: &[u32], relevant: &[u32]) -> f64 {
    ranked
        .iter()
        .position(|&i| is_relevant(relevant, i))
        .map(|pos| 1.0 / (pos + 1) as f64)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANKED: [u32; 6] = [10, 20, 30, 40, 50, 60];

    #[test]
    fn recall_counts_hits_over_relevant() {
        // relevant {20, 40, 99}: two of three in top-4.
        assert!((recall_at_k(&RANKED, &[20, 40, 99], 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&RANKED, &[], 4), 0.0);
        assert_eq!(recall_at_k(&RANKED, &[99], 4), 0.0);
    }

    #[test]
    fn recall_is_monotone_in_k() {
        let relevant = [30, 50];
        let mut prev = 0.0;
        for k in 1..=6 {
            let r = recall_at_k(&RANKED, &relevant, k);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn precision_divides_by_k() {
        assert!((precision_at_k(&RANKED, &[10, 20], 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&RANKED, &[10], 0), 0.0);
    }

    #[test]
    fn hit_rate_is_binary() {
        assert_eq!(hit_rate_at_k(&RANKED, &[60], 5), 0.0);
        assert_eq!(hit_rate_at_k(&RANKED, &[60], 6), 1.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        assert!((ndcg_at_k(&[1, 2, 3], &[1, 2, 3], 3) - 1.0).abs() < 1e-12);
        // Also when |relevant| > K.
        assert!((ndcg_at_k(&[1, 2], &[1, 2, 3, 4], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_rewards_earlier_hits() {
        let early = ndcg_at_k(&[7, 1, 2], &[7], 3);
        let late = ndcg_at_k(&[1, 2, 7], &[7], 3);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
        assert!((late - 1.0 / 4.0_f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn ndcg_bounds() {
        for k in 1..6 {
            let v = ndcg_at_k(&RANKED, &[20, 50], k);
            assert!((0.0..=1.0 + 1e-12).contains(&v), "k={k} ndcg={v}");
        }
    }

    #[test]
    fn ndcg_hand_computed_case() {
        // relevant {20, 99}; 20 at rank 2 → DCG = 1/log2(3).
        // IDCG for 2 relevant in top-3 = 1/log2(2) + 1/log2(3).
        let dcg = 1.0 / 3.0_f64.log2();
        let idcg = 1.0 + 1.0 / 3.0_f64.log2();
        assert!((ndcg_at_k(&RANKED, &[20, 99], 3) - dcg / idcg).abs() < 1e-12);
    }

    #[test]
    fn mrr_first_hit() {
        assert!((mrr(&RANKED, &[30]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mrr(&RANKED, &[99]), 0.0);
        assert_eq!(mrr(&RANKED, &[10, 60]), 1.0);
    }
}
