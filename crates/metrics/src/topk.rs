//! Top-K selection with an exclusion mask.
//!
//! Full-ranking evaluation masks each user's training positives (they are
//! trivially "known" and excluding them is the standard protocol the
//! paper follows [69], [73]). A fixed-size binary min-heap over the
//! candidate scores gives `O(|V| log K)` selection without sorting the
//! whole universe.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Score-keyed heap entry; the `BinaryHeap` is a max-heap, so ordering is
/// reversed to evict the *smallest* retained score first.
#[derive(PartialEq)]
struct Entry {
    score: f32,
    item: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score, forward on item id for deterministic ties.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Selects the `k` highest-scoring items, skipping any in the `exclude`
/// mask. Ties break toward the smaller item id so results are
/// deterministic. NaN scores are skipped.
///
/// The mask lookup binary-searches, which requires sorted input; callers
/// normally pass the pre-sorted training positives. An unsorted mask used
/// to be accepted silently and produced wrong rankings (the binary search
/// missed members, so "known" items leaked into the top-K). It is now
/// detected with one `O(|exclude|)` scan and sorted into a local copy
/// before use.
pub fn top_k_excluding(scores: &[f32], k: usize, exclude: &[u32]) -> Vec<u32> {
    if k == 0 {
        return Vec::new();
    }
    let sorted_fallback: Vec<u32>;
    let exclude = if exclude.windows(2).all(|w| w[0] <= w[1]) {
        exclude
    } else {
        let mut copy = exclude.to_vec();
        copy.sort_unstable();
        sorted_fallback = copy;
        &sorted_fallback
    };
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, &score) in scores.iter().enumerate() {
        if score.is_nan() {
            continue;
        }
        let item = i as u32;
        if exclude.binary_search(&item).is_ok() {
            continue;
        }
        if heap.len() < k {
            heap.push(Entry { score, item });
        } else if let Some(worst) = heap.peek() {
            // Keep the candidate if it beats the current worst (or ties
            // with a smaller id).
            let better = score > worst.score || (score == worst.score && item < worst.item);
            if better {
                heap.pop();
                heap.push(Entry { score, item });
            }
        }
    }
    let mut out: Vec<Entry> = heap.into_vec();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out.into_iter().map(|e| e.item).collect()
}

/// Panel-scoped variant of [`top_k_excluding`] for blocked serving:
/// `scores[i]` holds the score of item `base + i`, and the returned
/// candidates carry their scores so per-panel winners can be merged
/// without re-reading (or even retaining) the panel's score vector.
///
/// Selection rules are identical to [`top_k_excluding`] — NaN scores are
/// skipped, the `exclude` mask is honoured (ids are global, i.e. already
/// offset by `base`), ties break toward the smaller item id — and the
/// output is sorted best-first by `(score desc, item asc)`. Merging the
/// outputs of a panel partition of the universe under that same order and
/// truncating to `k` therefore reproduces `top_k_excluding` over the
/// concatenated scores exactly: any item a panel evicts was beaten by `k`
/// items of its own panel, so it cannot appear in the global top-K.
pub fn top_k_scored(scores: &[f32], k: usize, base: u32, exclude: &[u32]) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let sorted_fallback: Vec<u32>;
    let exclude = if exclude.windows(2).all(|w| w[0] <= w[1]) {
        exclude
    } else {
        let mut copy = exclude.to_vec();
        copy.sort_unstable();
        sorted_fallback = copy;
        &sorted_fallback
    };
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, &score) in scores.iter().enumerate() {
        if score.is_nan() {
            continue;
        }
        let item = base + i as u32;
        if exclude.binary_search(&item).is_ok() {
            continue;
        }
        if heap.len() < k {
            heap.push(Entry { score, item });
        } else if let Some(worst) = heap.peek() {
            let better = score > worst.score || (score == worst.score && item < worst.item);
            if better {
                heap.pop();
                heap.push(Entry { score, item });
            }
        }
    }
    let mut out: Vec<Entry> = heap.into_vec();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out.into_iter().map(|e| (e.item, e.score)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_scores_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_excluding(&scores, 3, &[]), vec![1, 3, 2]);
    }

    #[test]
    fn excludes_masked_items() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_excluding(&scores, 3, &[1, 3]), vec![2, 4, 0]);
    }

    #[test]
    fn k_larger_than_universe() {
        let scores = [0.2, 0.1];
        assert_eq!(top_k_excluding(&scores, 10, &[]), vec![0, 1]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_excluding(&[1.0, 2.0], 0, &[]).is_empty());
    }

    #[test]
    fn ties_break_to_smaller_id() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_k_excluding(&scores, 2, &[]), vec![0, 1]);
    }

    #[test]
    fn nan_scores_are_skipped() {
        let scores = [f32::NAN, 0.5, f32::NAN, 0.7];
        assert_eq!(top_k_excluding(&scores, 3, &[]), vec![3, 1]);
    }

    #[test]
    fn unsorted_exclude_mask_is_handled() {
        // Regression: an unsorted mask used to defeat the binary search,
        // so masked items leaked into the ranking. The sort-detect
        // fallback must produce exactly the sorted-mask result.
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3, 0.8];
        assert_eq!(
            top_k_excluding(&scores, 3, &[5, 1, 3]),
            top_k_excluding(&scores, 3, &[1, 3, 5]),
        );
        assert_eq!(top_k_excluding(&scores, 3, &[5, 1, 3]), vec![2, 4, 0]);
        // Larger pseudo-random case against the oracle with a shuffled mask.
        let scores: Vec<f32> = (0..300)
            .map(|i| ((i * 48_271_usize) % 997) as f32 / 997.0)
            .collect();
        let mut exclude: Vec<u32> = (0..300).filter(|i| i % 5 == 0).map(|i| i as u32).collect();
        exclude.reverse(); // decidedly unsorted
        let got = top_k_excluding(&scores, 15, &exclude);
        let mut sorted = exclude.clone();
        sorted.sort_unstable();
        assert_eq!(got, top_k_excluding(&scores, 15, &sorted));
        assert!(got.iter().all(|i| !sorted.contains(i)));
    }

    #[test]
    fn scored_variant_agrees_with_the_id_variant() {
        let scores: Vec<f32> = (0..200)
            .map(|i| ((i * 48_271_usize) % 499) as f32 / 499.0)
            .collect();
        let exclude: Vec<u32> = (0..200).filter(|i| i % 6 == 0).map(|i| i as u32).collect();
        let ids = top_k_excluding(&scores, 12, &exclude);
        let scored = top_k_scored(&scores, 12, 0, &exclude);
        assert_eq!(scored.iter().map(|&(i, _)| i).collect::<Vec<_>>(), ids);
        for &(item, score) in &scored {
            assert_eq!(score.to_bits(), scores[item as usize].to_bits());
        }
        assert!(top_k_scored(&scores, 0, 0, &[]).is_empty());
    }

    #[test]
    fn panel_merge_reproduces_the_dense_ranking() {
        // Rank a 300-item universe densely, then in 64-item panels merged
        // under (score desc, id asc); the two must agree exactly. Ties and
        // NaNs included to exercise the edge rules.
        let scores: Vec<f32> = (0..300)
            .map(|i| {
                if i % 31 == 0 {
                    f32::NAN
                } else {
                    ((i * 2_654_435_761_u64 as usize) % 97) as f32 / 97.0
                }
            })
            .collect();
        let exclude: Vec<u32> = (0..300).filter(|i| i % 9 == 0).map(|i| i as u32).collect();
        let k = 17;
        let dense = top_k_excluding(&scores, k, &exclude);

        let mut merged: Vec<(u32, f32)> = Vec::new();
        for start in (0..scores.len()).step_by(64) {
            let end = (start + 64).min(scores.len());
            merged.extend(top_k_scored(&scores[start..end], k, start as u32, &exclude));
        }
        merged.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        merged.truncate(k);
        assert_eq!(merged.iter().map(|&(i, _)| i).collect::<Vec<_>>(), dense);
    }

    #[test]
    fn scored_boundaries_at_scale_seams() {
        // The capacity serving path leans on exactly these edges: k = 0
        // (metadata-only probes), k ≥ panel/universe size (small tail
        // panels of a blocked catalogue), and all-NaN panels (every
        // candidate filtered out).
        let scores = [0.4, 0.2, 0.9];
        // k = 0 is empty regardless of base/exclusions.
        assert!(top_k_scored(&scores, 0, 1_000, &[1_002]).is_empty());
        // k ≥ num_items returns every non-excluded candidate, ranked.
        for k in [3, 4, 100] {
            assert_eq!(
                top_k_scored(&scores, k, 10, &[]),
                vec![(12, 0.9), (10, 0.4), (11, 0.2)],
                "k = {k}"
            );
        }
        assert_eq!(
            top_k_scored(&scores, 100, 10, &[12]),
            vec![(10, 0.4), (11, 0.2)]
        );
        // All-NaN panels yield nothing (never a panic, never a NaN entry).
        let nans = [f32::NAN; 8];
        assert!(top_k_scored(&nans, 5, 0, &[]).is_empty());
        assert!(top_k_excluding(&nans, 5, &[]).is_empty());
        // Empty panels too (a zero-item tail is representable).
        assert!(top_k_scored(&[], 5, 77, &[]).is_empty());
    }

    #[test]
    fn exact_ties_across_panel_merge_boundaries() {
        // Every item scores identically; panels of 7 over 40 items. The
        // merged ranking must be items 0..k in id order — the
        // (score desc, id asc) tie-break may not depend on which panel a
        // candidate came from or on merge order.
        let scores = vec![0.625f32; 40];
        let k = 11;
        let dense = top_k_excluding(&scores, k, &[]);
        assert_eq!(dense, (0..k as u32).collect::<Vec<_>>());
        // Merge panels in reverse order to stress order-independence.
        let mut merged: Vec<(u32, f32)> = Vec::new();
        let starts: Vec<usize> = (0..scores.len()).step_by(7).collect();
        for &start in starts.iter().rev() {
            let end = (start + 7).min(scores.len());
            merged.extend(top_k_scored(&scores[start..end], k, start as u32, &[]));
            merged.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            merged.truncate(k);
        }
        assert_eq!(merged.iter().map(|&(i, _)| i).collect::<Vec<_>>(), dense);
        for &(item, score) in &merged {
            assert_eq!(score.to_bits(), scores[item as usize].to_bits());
        }
        // Two-value tie straddling a boundary: ids 5 and 7 tie at the
        // top across panels [0..6) and [6..12); the smaller id wins.
        let scores = [0.1, 0.1, 0.1, 0.1, 0.1, 0.8, 0.1, 0.8, 0.1, 0.1, 0.1, 0.1];
        let mut merged: Vec<(u32, f32)> = Vec::new();
        for start in [6usize, 0] {
            merged.extend(top_k_scored(
                &scores[start..start + 6],
                2,
                start as u32,
                &[],
            ));
        }
        merged.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        merged.truncate(2);
        assert_eq!(merged, vec![(5, 0.8), (7, 0.8)]);
    }

    #[test]
    fn matches_full_sort_reference() {
        // Pseudo-random scores; compare against a sort-everything oracle.
        let scores: Vec<f32> = (0..500)
            .map(|i| ((i * 2_654_435_761_u64 as usize) % 1000) as f32 / 1000.0)
            .collect();
        let exclude: Vec<u32> = (0..500).filter(|i| i % 7 == 0).map(|i| i as u32).collect();
        let got = top_k_excluding(&scores, 20, &exclude);

        let mut oracle: Vec<(f32, u32)> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude.binary_search(&(*i as u32)).is_err())
            .map(|(i, &s)| (s, i as u32))
            .collect();
        oracle.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<u32> = oracle.into_iter().take(20).map(|(_, i)| i).collect();
        assert_eq!(got, expected);
    }
}
