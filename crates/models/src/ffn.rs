//! The shared feedforward preference predictor (`Θ` in the paper).
//!
//! Architecture per §V-D: layer sizes `[2N, 8, 8] → 1`, ReLU between
//! hidden layers, identity on the output (the loss consumes logits).
//! `Θ` travels between clients and server as a flat `Vec<f32>`; both the
//! heterogeneous aggregation (Eq. 15) and the communication accounting
//! (Table III) work on that flat form.

use hf_tensor::ops::{relu, relu_grad};
use hf_tensor::rng::Rng;
use hf_tensor::Matrix;

/// A multi-layer perceptron with ReLU hidden activations and a linear
/// single-output head.
#[derive(Clone, Debug, PartialEq)]
pub struct Ffn {
    dims: Vec<usize>,
    /// Per-layer weight matrices, `out_dim x in_dim`.
    weights: Vec<Matrix>,
    /// Per-layer bias vectors.
    biases: Vec<Vec<f32>>,
}

impl Ffn {
    /// Builds an FFN with the given layer sizes (`dims[0]` inputs through
    /// `dims.last()` outputs), Glorot-initialised.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(dims: &[usize], rng: &mut impl Rng) -> Self {
        assert!(
            dims.len() >= 2,
            "an FFN needs at least input and output sizes"
        );
        let weights = dims
            .windows(2)
            .map(|w| hf_tensor::init::glorot_uniform(w[1], w[0], rng))
            .collect();
        let biases = dims[1..].iter().map(|&d| vec![0.0; d]).collect();
        Self {
            dims: dims.to_vec(),
            weights,
            biases,
        }
    }

    /// Zero-valued FFN with the same shape (gradient accumulator).
    pub fn zeros_like(&self) -> Self {
        Self {
            dims: self.dims.clone(),
            weights: self
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: self.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Layer sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Total parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(|w| w.len()).sum::<usize>()
            + self.biases.iter().map(|b| b.len()).sum::<usize>()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Serialises all parameters into one flat vector
    /// (per layer: row-major weights, then bias).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(self.num_params());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            flat.extend_from_slice(w.as_slice());
            flat.extend_from_slice(b);
        }
        flat
    }

    /// Reconstructs an FFN of shape `dims` from [`Ffn::to_flat`] output.
    ///
    /// # Panics
    /// Panics if the flat length does not match the shape.
    pub fn from_flat(dims: &[usize], flat: &[f32]) -> Self {
        assert!(dims.len() >= 2);
        let mut ffn = Self {
            dims: dims.to_vec(),
            weights: dims.windows(2).map(|w| Matrix::zeros(w[1], w[0])).collect(),
            biases: dims[1..].iter().map(|&d| vec![0.0; d]).collect(),
        };
        assert_eq!(
            flat.len(),
            ffn.num_params(),
            "flat parameter length mismatch"
        );
        let mut offset = 0;
        for (w, b) in ffn.weights.iter_mut().zip(ffn.biases.iter_mut()) {
            let wl = w.len();
            w.as_mut_slice().copy_from_slice(&flat[offset..offset + wl]);
            offset += wl;
            let bl = b.len();
            b.copy_from_slice(&flat[offset..offset + bl]);
            offset += bl;
        }
        ffn
    }

    /// `self += alpha * other`, shape-checked (used for gradient
    /// accumulation and server-side update application).
    pub fn add_scaled(&mut self, alpha: f32, other: &Ffn) {
        assert_eq!(self.dims, other.dims, "FFN shape mismatch");
        for (w, ow) in self.weights.iter_mut().zip(&other.weights) {
            w.axpy(alpha, ow);
        }
        for (b, ob) in self.biases.iter_mut().zip(&other.biases) {
            hf_tensor::ops::axpy_slice(b, alpha, ob);
        }
    }

    /// Sets every parameter to zero (gradient-buffer reset).
    pub fn zero(&mut self) {
        for w in &mut self.weights {
            w.fill(0.0);
        }
        for b in &mut self.biases {
            b.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Forward pass producing the scalar logit, recording activations in
    /// `cache` for the backward pass. `cache` must come from
    /// [`FfnCache::for_ffn`] on an identically shaped FFN.
    ///
    /// # Panics
    /// Panics if `input` width differs from `dims[0]`.
    pub fn forward(&self, input: &[f32], cache: &mut FfnCache) -> f32 {
        assert_eq!(input.len(), self.dims[0], "input width mismatch");
        cache.input.clear();
        cache.input.extend_from_slice(input);
        let last = self.num_layers() - 1;
        for l in 0..self.num_layers() {
            let (w, b) = (&self.weights[l], &self.biases[l]);
            // `pre` and `post` are distinct fields, so reading the previous
            // layer's activations while writing this layer's borrows cleanly.
            {
                let src: &[f32] = if l == 0 {
                    &cache.input
                } else {
                    &cache.post[l - 1]
                };
                let pre = &mut cache.pre[l];
                for (o, out) in pre.iter_mut().enumerate() {
                    *out = hf_tensor::ops::dot(w.row(o), src) + b[o];
                }
            }
            let (pre_done, post_rest) = (&cache.pre[l], &mut cache.post[l]);
            if l == last {
                post_rest.copy_from_slice(pre_done);
            } else {
                for (p, &z) in post_rest.iter_mut().zip(pre_done.iter()) {
                    *p = relu(z);
                }
            }
        }
        cache.post[last][0]
    }

    /// Backward pass for a single sample.
    ///
    /// `d_logit` is `∂L/∂logit`; gradients accumulate into `grads`
    /// (shape-matched, from [`Ffn::zeros_like`]) and the gradient with
    /// respect to the input is written into `d_input`.
    pub fn backward(&self, d_logit: f32, cache: &FfnCache, grads: &mut Ffn, d_input: &mut [f32]) {
        assert_eq!(self.dims, grads.dims, "grad accumulator shape mismatch");
        assert_eq!(d_input.len(), self.dims[0], "d_input width mismatch");
        let last = self.num_layers() - 1;
        // delta holds ∂L/∂pre[l] as we walk backwards.
        let mut delta = vec![d_logit]; // output layer is linear
        for l in (0..=last).rev() {
            let src: &[f32] = if l == 0 {
                &cache.input
            } else {
                &cache.post[l - 1]
            };
            // Parameter gradients.
            let gw = &mut grads.weights[l];
            for (o, &d) in delta.iter().enumerate() {
                if d != 0.0 {
                    gw.row_axpy(o, d, src);
                }
                grads.biases[l][o] += d;
            }
            // Propagate to the layer input.
            let w = &self.weights[l];
            let mut d_src = vec![0.0_f32; self.dims[l]];
            for (o, &d) in delta.iter().enumerate() {
                if d != 0.0 {
                    hf_tensor::ops::axpy_slice(&mut d_src, d, w.row(o));
                }
            }
            if l == 0 {
                d_input.copy_from_slice(&d_src);
            } else {
                // Through the ReLU of layer l-1.
                for (ds, &pre) in d_src.iter_mut().zip(cache.pre[l - 1].iter()) {
                    *ds *= relu_grad(pre);
                }
                delta = d_src;
            }
        }
    }

    /// Largest absolute parameter (diagnostics / divergence guards).
    pub fn max_abs(&self) -> f32 {
        let w = self
            .weights
            .iter()
            .map(|w| w.max_abs())
            .fold(0.0_f32, f32::max);
        let b = self
            .biases
            .iter()
            .flat_map(|b| b.iter())
            .fold(0.0_f32, |m, x| m.max(x.abs()));
        w.max(b)
    }
}

impl hf_tensor::ser::ToJson for Ffn {
    fn write_json(&self, out: &mut String) {
        hf_tensor::ser::obj(out, |o| {
            o.field("dims", &self.dims).field("flat", &self.to_flat());
        });
    }
}

impl Ffn {
    /// Restores a checkpointed FFN ([`Ffn::to_flat`] layout, shape-checked).
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let dims = v.get("dims")?.as_usize_vec()?;
        let flat = v.get("flat")?.as_f32_vec()?;
        if dims.len() < 2 {
            return Err(hf_tensor::ser::JsonError::msg("ffn needs >= 2 layer sizes"));
        }
        let expected: usize = dims.windows(2).map(|w| w[1] * w[0] + w[1]).sum();
        if flat.len() != expected {
            return Err(hf_tensor::ser::JsonError::msg(format!(
                "ffn flat length {} does not match dims {dims:?}",
                flat.len()
            )));
        }
        Ok(Self::from_flat(&dims, &flat))
    }
}

/// Reusable forward-pass activation cache (one per worker thread; avoids
/// per-sample allocation in the hot loop).
#[derive(Clone, Debug)]
pub struct FfnCache {
    input: Vec<f32>,
    pre: Vec<Vec<f32>>,
    post: Vec<Vec<f32>>,
}

impl FfnCache {
    /// Allocates a cache matching `ffn`'s shape.
    pub fn for_ffn(ffn: &Ffn) -> Self {
        Self {
            input: Vec::with_capacity(ffn.dims[0]),
            pre: ffn.dims[1..].iter().map(|&d| vec![0.0; d]).collect(),
            post: ffn.dims[1..].iter().map(|&d| vec![0.0; d]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::ops::{bce_with_logits, bce_with_logits_grad};
    use hf_tensor::rng::{stream, SeedStream};

    fn make(dims: &[usize], seed: u64) -> Ffn {
        let mut rng = stream(seed, SeedStream::ParamInit);
        Ffn::new(dims, &mut rng)
    }

    #[test]
    fn forward_of_zero_weights_is_bias() {
        let mut ffn = make(&[4, 3, 1], 1);
        ffn.zero();
        let mut cache = FfnCache::for_ffn(&ffn);
        assert_eq!(ffn.forward(&[1.0, 2.0, 3.0, 4.0], &mut cache), 0.0);
    }

    #[test]
    fn forward_known_linear_case() {
        // Single layer [2 -> 1]: logit = w . x + b.
        let mut ffn = make(&[2, 1], 2);
        ffn.zero();
        let flat = vec![0.5, -1.0, 0.25]; // w00 w01 b0
        let ffn = {
            let mut f = Ffn::from_flat(&[2, 1], &flat);
            f.dims = vec![2, 1];
            f
        };
        let mut cache = FfnCache::for_ffn(&ffn);
        let y = ffn.forward(&[2.0, 3.0], &mut cache);
        assert!((y - (0.5 * 2.0 - 1.0 * 3.0 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn flat_roundtrip_preserves_parameters() {
        let ffn = make(&[6, 8, 8, 1], 3);
        let flat = ffn.to_flat();
        assert_eq!(flat.len(), ffn.num_params());
        let back = Ffn::from_flat(&[6, 8, 8, 1], &flat);
        assert_eq!(ffn, back);
    }

    #[test]
    fn json_roundtrip_preserves_parameters_bit_exactly() {
        use hf_tensor::ser::{parse_json, ToJson};
        let ffn = make(&[6, 8, 8, 1], 3);
        let back = Ffn::from_json(&parse_json(&ffn.to_json()).unwrap()).unwrap();
        assert_eq!(ffn.dims(), back.dims());
        for (a, b) in ffn.to_flat().iter().zip(back.to_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let bad = parse_json(r#"{"dims":[2,1],"flat":[0.5]}"#).unwrap();
        assert!(Ffn::from_json(&bad).is_err());
    }

    #[test]
    fn num_params_matches_paper_architecture() {
        // [2N, 8, 8, 1] with N=8: (16*8+8) + (8*8+8) + (8*1+1) = 217.
        let ffn = make(&crate::paper_predictor_dims(8), 4);
        assert_eq!(ffn.num_params(), 217);
    }

    #[test]
    fn add_scaled_accumulates() {
        let ffn = make(&[3, 2, 1], 5);
        let mut acc = ffn.zeros_like();
        acc.add_scaled(2.0, &ffn);
        acc.add_scaled(-2.0, &ffn);
        assert!(acc.max_abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let dims = [5, 6, 4, 1];
        let ffn = make(&dims, 6);
        let mut rng = stream(99, SeedStream::Custom(1));
        let input = hf_tensor::init::normal_vec(5, 1.0, &mut rng);
        let target = 1.0;

        let mut cache = FfnCache::for_ffn(&ffn);
        let logit = ffn.forward(&input, &mut cache);
        let mut grads = ffn.zeros_like();
        let mut d_input = vec![0.0; 5];
        ffn.backward(
            bce_with_logits_grad(logit, target),
            &cache,
            &mut grads,
            &mut d_input,
        );

        let flat = ffn.to_flat();
        let gflat = grads.to_flat();
        let eps = 1e-2;
        let mut checked = 0;
        for idx in (0..flat.len()).step_by(5) {
            let mut fplus = flat.clone();
            fplus[idx] += eps;
            let mut fminus = flat.clone();
            fminus[idx] -= eps;
            let fp = Ffn::from_flat(&dims, &fplus);
            let fm = Ffn::from_flat(&dims, &fminus);
            let lp = bce_with_logits(fp.forward(&input, &mut cache), target);
            let lm = bce_with_logits(fm.forward(&input, &mut cache), target);
            let fd = (lp - lm) / (2.0 * eps);
            let g = gflat[idx];
            assert!(
                (fd - g).abs() < 5e-3 * fd.abs().max(g.abs()).max(1.0),
                "param {idx}: analytic {g} vs fd {fd}"
            );
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let dims = [4, 6, 1];
        let ffn = make(&dims, 7);
        let mut rng = stream(98, SeedStream::Custom(2));
        let input = hf_tensor::init::normal_vec(4, 1.0, &mut rng);

        let mut cache = FfnCache::for_ffn(&ffn);
        let logit = ffn.forward(&input, &mut cache);
        let mut grads = ffn.zeros_like();
        let mut d_input = vec![0.0; 4];
        ffn.backward(
            bce_with_logits_grad(logit, 0.0),
            &cache,
            &mut grads,
            &mut d_input,
        );

        let eps = 1e-2;
        for i in 0..4 {
            let mut plus = input.clone();
            plus[i] += eps;
            let mut minus = input.clone();
            minus[i] -= eps;
            let lp = bce_with_logits(ffn.forward(&plus, &mut cache), 0.0);
            let lm = bce_with_logits(ffn.forward(&minus, &mut cache), 0.0);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - d_input[i]).abs() < 5e-3 * fd.abs().max(1.0),
                "input {i}: analytic {} vs fd {fd}",
                d_input[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        // Learn XOR-ish separability: y = 1 iff x0 > x1.
        let ffn = make(&[2, 8, 1], 8);
        let mut model = ffn;
        let mut cache = FfnCache::for_ffn(&model);
        let mut rng = stream(55, SeedStream::Custom(3));
        let samples: Vec<([f32; 2], f32)> = (0..200)
            .map(|_| {
                let x: [f32; 2] = [rng.gen::<f32>() * 2.0 - 1.0, rng.gen::<f32>() * 2.0 - 1.0];
                let y = if x[0] > x[1] { 1.0 } else { 0.0 };
                (x, y)
            })
            .collect();

        let loss_of = |m: &Ffn, c: &mut FfnCache| -> f32 {
            samples
                .iter()
                .map(|(x, y)| bce_with_logits(m.forward(x, c), *y))
                .sum::<f32>()
                / samples.len() as f32
        };
        let before = loss_of(&model, &mut cache);
        for _ in 0..60 {
            let mut grads = model.zeros_like();
            let mut d_input = [0.0_f32; 2];
            for (x, y) in &samples {
                let logit = model.forward(x, &mut cache);
                model_backward(&model, logit, *y, &cache, &mut grads, &mut d_input);
            }
            model.add_scaled(-0.5 / samples.len() as f32, &grads);
        }
        let after = loss_of(&model, &mut cache);
        assert!(after < before * 0.7, "before {before}, after {after}");
    }

    fn model_backward(
        model: &Ffn,
        logit: f32,
        y: f32,
        cache: &FfnCache,
        grads: &mut Ffn,
        d_input: &mut [f32; 2],
    ) {
        model.backward(bce_with_logits_grad(logit, y), cache, grads, d_input);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let ffn = make(&[3, 1], 9);
        let mut cache = FfnCache::for_ffn(&ffn);
        let _ = ffn.forward(&[1.0, 2.0], &mut cache);
    }
}
