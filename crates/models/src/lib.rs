//! # hf-models
//!
//! Base recommendation models with hand-written backpropagation.
//!
//! The paper demonstrates HeteFedRec on two widely used recommenders
//! (§III-B):
//!
//! * **NCF** (neural collaborative filtering): `r̂ = σ(FFN([u, v]))`, a
//!   three-layer feedforward predictor over the concatenated user and item
//!   embeddings with dimensions `[2N, 8, 8] → 1` (§V-D).
//! * **LightGCN**: user and item embeddings are first propagated on the
//!   *client-local* bipartite graph (one layer, privacy constraint from
//!   §III-B), then scored with the same predictor (Eq. 5).
//!
//! There is no autograd anywhere in this workspace — the repro hint warns
//! that Rust ML frameworks are immature for this workload — so every
//! gradient is analytic and checked against finite differences in the
//! test suites.
//!
//! Layout:
//! * [`ffn`] — the shared feedforward predictor with forward caches,
//!   backward pass, and flat (de)serialisation for federated transport.
//! * [`ncf`] — the NCF scoring engine.
//! * [`lightgcn`] — local-graph propagation + scoring engine.
//! * [`scoring`] — the split-layer serving/evaluation scorer shared by
//!   `hetefedrec_core::eval` and `hf_serve` (panel-batchable, with a
//!   bit-identity contract between its scalar and blocked paths).
//! * [`sparse`] — row-sparse gradient accumulation for item embeddings.

#![warn(missing_docs)]

pub mod ffn;
pub mod lightgcn;
pub mod ncf;
pub mod scoring;
pub mod sparse;

pub use ffn::{Ffn, FfnCache};
pub use lightgcn::{LightGcnEngine, LocalGraph};
pub use ncf::NcfEngine;
pub use scoring::{SplitNcf, SplitWorkspace};
pub use sparse::RowGradBuffer;

/// Which base recommendation model an experiment uses (paper: Fed-NCF or
/// Fed-LightGCN).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Neural collaborative filtering.
    Ncf,
    /// LightGCN with client-local propagation.
    LightGcn,
}

impl ModelKind {
    /// Both base models.
    pub const ALL: [ModelKind; 2] = [ModelKind::Ncf, ModelKind::LightGcn];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Ncf => "Fed-NCF",
            ModelKind::LightGcn => "Fed-LightGCN",
        }
    }

    /// Stable checkpoint tag (also the CLI spelling).
    pub fn tag(self) -> &'static str {
        match self {
            ModelKind::Ncf => "ncf",
            ModelKind::LightGcn => "lightgcn",
        }
    }

    /// Parses a [`ModelKind::tag`] spelling.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "ncf" => Some(ModelKind::Ncf),
            "lightgcn" => Some(ModelKind::LightGcn),
            _ => None,
        }
    }
}

impl hf_tensor::ser::ToJson for ModelKind {
    fn write_json(&self, out: &mut String) {
        self.tag().write_json(out);
    }
}

impl ModelKind {
    /// Restores a checkpointed model kind.
    pub fn from_json(v: &hf_tensor::ser::JsonValue<'_>) -> Result<Self, hf_tensor::ser::JsonError> {
        let tag = v.as_str()?;
        Self::from_tag(tag)
            .ok_or_else(|| hf_tensor::ser::JsonError::msg(format!("unknown model kind `{tag}`")))
    }
}

/// The paper's predictor layer sizes for embedding dimension `n`:
/// `[2n, 8, 8] → 1` (§V-D: "three feedforward layers with `[2 × N∗, 8, 8]`
/// dimensions").
pub fn paper_predictor_dims(n: usize) -> Vec<usize> {
    vec![2 * n, 8, 8, 1]
}
