//! LightGCN with client-local propagation.
//!
//! §III-B of the paper: "users and items are treated as distinct nodes and
//! a bipartite graph is constructed based on user-item interactions. ...
//! To ensure privacy, the propagation is only used in user's local graph"
//! with one propagation layer (§V-D), after which "user and item
//! embeddings are used to predict users' preference scores via Eq. 5"
//! (the same FFN predictor as NCF).
//!
//! A single client's local bipartite graph is a star: the user node
//! connected to its training items. One LightGCN layer on that star gives
//!
//! ```text
//! e_u^(1) = Σ_{i ∈ I_u} e_i / sqrt(|I_u| · deg_i)      (deg_i = 1 locally)
//! ```
//!
//! and the layer-combined user representation `u' = (e_u^(0) + e_u^(1))/2`.
//!
//! **Substitution note (documented in DESIGN.md):** the symmetric item-side
//! propagation `e_i^(1) = e_u / sqrt(|I_u|)` is applied only to *in-graph*
//! items, which at training time are exactly the positives — the model
//! would partially learn "item carries my user component" as the label,
//! a signal absent for held-out test items. We therefore propagate only
//! the user side (items score with their raw embeddings), preserving the
//! local-graph propagation idea without the train/eval mismatch.

use crate::ffn::Ffn;
use crate::ncf::{NcfEngine, NcfWorkspace};
use hf_tensor::rng::Rng;
use hf_tensor::Matrix;

/// A client's local interaction graph: its training items plus the
/// LightGCN normalisation coefficient `1/sqrt(|I_u|)`.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    items: Vec<u32>,
    coeff: f32,
}

impl LocalGraph {
    /// Builds the star graph over a user's training items.
    pub fn new(train_items: &[u32]) -> Self {
        let coeff = if train_items.is_empty() {
            0.0
        } else {
            1.0 / (train_items.len() as f32).sqrt()
        };
        Self {
            items: train_items.to_vec(),
            coeff,
        }
    }

    /// The user's training items.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Propagation coefficient `1/sqrt(|I_u|)`.
    pub fn coeff(&self) -> f32 {
        self.coeff
    }
}

/// LightGCN scoring engine: local propagation + the shared FFN predictor.
#[derive(Clone, Debug)]
pub struct LightGcnEngine {
    inner: NcfEngine,
}

impl LightGcnEngine {
    /// Creates an engine with the paper's predictor architecture.
    pub fn new(dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            inner: NcfEngine::new(dim, rng),
        }
    }

    /// Wraps an existing predictor.
    pub fn from_ffn(dim: usize, ffn: Ffn) -> Self {
        Self {
            inner: NcfEngine::from_ffn(dim, ffn),
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Predictor parameters.
    pub fn ffn(&self) -> &Ffn {
        self.inner.ffn()
    }

    /// Mutable predictor parameters.
    pub fn ffn_mut(&mut self) -> &mut Ffn {
        self.inner.ffn_mut()
    }

    /// Scoring workspace.
    pub fn workspace(&self) -> NcfWorkspace {
        self.inner.workspace()
    }

    /// Computes the propagated user representation
    /// `u' = (u + coeff · Σ_{i∈I_u} V[i][:dim]) / 2` into `out`.
    ///
    /// `table` is the full item-embedding table; only the leading `dim`
    /// columns participate (heterogeneous prefix semantics).
    pub fn propagate_user(
        &self,
        user: &[f32],
        graph: &LocalGraph,
        table: &Matrix,
        out: &mut Vec<f32>,
    ) {
        let dim = self.dim();
        assert_eq!(user.len(), dim, "user embedding width");
        out.clear();
        out.extend_from_slice(user);
        for &item in &graph.items {
            let row = table.row_prefix(item as usize, dim);
            hf_tensor::ops::axpy_slice(out, graph.coeff, row);
        }
        for x in out.iter_mut() {
            *x *= 0.5;
        }
    }

    /// Logit for `(propagated user, item)`; `prop_user` must come from
    /// [`LightGcnEngine::propagate_user`].
    pub fn forward(&self, prop_user: &[f32], item: &[f32], ws: &mut NcfWorkspace) -> f32 {
        self.inner.forward(prop_user, item, ws)
    }

    /// Backward pass. Writes `∂L/∂u'` into `d_prop_user` and `∂L/∂v` into
    /// `d_item`; use [`LightGcnEngine::backprop_through_propagation`] to
    /// push `d_prop_user` onto the raw user embedding and the in-graph
    /// item rows.
    pub fn backward(
        &self,
        d_logit: f32,
        ws: &mut NcfWorkspace,
        theta_grads: &mut Ffn,
        d_prop_user: &mut [f32],
        d_item: &mut [f32],
    ) {
        self.inner
            .backward(d_logit, ws, theta_grads, d_prop_user, d_item);
    }

    /// Distributes the propagated-user gradient:
    /// `∂u'/∂u = 1/2` and `∂u'/∂V[i] = coeff/2` for every in-graph item.
    ///
    /// `d_user` is overwritten; in-graph item gradients are delivered
    /// through `sink(item, grad_scale)` where the caller should apply
    /// `grad_scale * d_prop_user` to the item row (we hand out the scale
    /// rather than a buffer to keep the hot path allocation-free).
    pub fn backprop_through_propagation(
        &self,
        d_prop_user: &[f32],
        graph: &LocalGraph,
        d_user: &mut [f32],
        mut sink: impl FnMut(u32, f32),
    ) {
        for (du, &dp) in d_user.iter_mut().zip(d_prop_user.iter()) {
            *du = 0.5 * dp;
        }
        let scale = 0.5 * graph.coeff;
        if scale != 0.0 {
            for &item in &graph.items {
                sink(item, scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::ops::{bce_with_logits, bce_with_logits_grad};
    use hf_tensor::rng::{stream, SeedStream};

    fn setup(dim: usize) -> (LightGcnEngine, Matrix, LocalGraph, Vec<f32>) {
        let mut rng = stream(77, SeedStream::ParamInit);
        let engine = LightGcnEngine::new(dim, &mut rng);
        let table = hf_tensor::init::embedding_normal(20, dim, &mut rng);
        let graph = LocalGraph::new(&[2, 5, 7]);
        let user = hf_tensor::init::normal_vec(dim, 0.3, &mut rng);
        (engine, table, graph, user)
    }

    #[test]
    fn propagation_averages_layers() {
        let (engine, table, graph, user) = setup(4);
        let mut prop = Vec::new();
        engine.propagate_user(&user, &graph, &table, &mut prop);
        // Hand-compute: (u + (1/sqrt(3)) Σ rows)/2.
        let c = 1.0 / 3.0_f32.sqrt();
        for d in 0..4 {
            let sum: f32 = [2usize, 5, 7].iter().map(|&i| table.get(i, d)).sum();
            let expected = 0.5 * (user[d] + c * sum);
            assert!((prop[d] - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_graph_propagates_half_user() {
        let (engine, table, _, user) = setup(4);
        let graph = LocalGraph::new(&[]);
        let mut prop = Vec::new();
        engine.propagate_user(&user, &graph, &table, &mut prop);
        for d in 0..4 {
            assert!((prop[d] - 0.5 * user[d]).abs() < 1e-6);
        }
    }

    #[test]
    fn propagation_uses_only_leading_columns() {
        let mut rng = stream(78, SeedStream::ParamInit);
        let engine = LightGcnEngine::new(2, &mut rng);
        // 4-wide table, engine dim 2: trailing columns must not matter.
        let mut table = hf_tensor::init::embedding_normal(10, 4, &mut rng);
        let graph = LocalGraph::new(&[1, 3]);
        let user = vec![0.1, -0.2];
        let mut a = Vec::new();
        engine.propagate_user(&user, &graph, &table, &mut a);
        for r in 0..10 {
            table.set(r, 2, 99.0);
            table.set(r, 3, -99.0);
        }
        let mut b = Vec::new();
        engine.propagate_user(&user, &graph, &table, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_gradient_matches_finite_differences() {
        // Check ∂L/∂u and ∂L/∂V[i] through propagation + FFN jointly.
        let (engine, table, graph, user) = setup(3);
        let mut ws = engine.workspace();
        let item = 9usize; // out-of-graph item being scored
        let y = 1.0;

        let loss = |table: &Matrix, user: &[f32], ws: &mut crate::ncf::NcfWorkspace| {
            let mut prop = Vec::new();
            engine.propagate_user(user, &graph, table, &mut prop);
            let v = table.row_prefix(item, 3);
            bce_with_logits(engine.forward(&prop, v, ws), y)
        };

        // Analytic gradients.
        let mut prop = Vec::new();
        engine.propagate_user(&user, &graph, &table, &mut prop);
        let logit = engine.forward(&prop, table.row_prefix(item, 3), &mut ws);
        let mut tg = engine.ffn().zeros_like();
        let mut d_prop = vec![0.0; 3];
        let mut d_item = vec![0.0; 3];
        engine.backward(
            bce_with_logits_grad(logit, y),
            &mut ws,
            &mut tg,
            &mut d_prop,
            &mut d_item,
        );
        let mut d_user = vec![0.0; 3];
        let mut graph_grads: Vec<(u32, f32)> = Vec::new();
        engine.backprop_through_propagation(&d_prop, &graph, &mut d_user, |i, s| {
            graph_grads.push((i, s));
        });

        let eps = 1e-2;
        // User gradient.
        for d in 0..3 {
            let mut up = user.clone();
            up[d] += eps;
            let mut um = user.clone();
            um[d] -= eps;
            let fd = (loss(&table, &up, &mut ws) - loss(&table, &um, &mut ws)) / (2.0 * eps);
            assert!(
                (fd - d_user[d]).abs() < 5e-3 * fd.abs().max(1.0),
                "d_user[{d}]"
            );
        }
        // Scored-item gradient.
        for d in 0..3 {
            let mut tp = table.clone();
            *tp.get_mut(item, d) += eps;
            let mut tm = table.clone();
            *tm.get_mut(item, d) -= eps;
            let fd = (loss(&tp, &user, &mut ws) - loss(&tm, &user, &mut ws)) / (2.0 * eps);
            assert!(
                (fd - d_item[d]).abs() < 5e-3 * fd.abs().max(1.0),
                "d_item[{d}]"
            );
        }
        // In-graph item gradient: scale * d_prop.
        let (gi, scale) = graph_grads[0];
        for d in 0..3 {
            let mut tp = table.clone();
            *tp.get_mut(gi as usize, d) += eps;
            let mut tm = table.clone();
            *tm.get_mut(gi as usize, d) -= eps;
            let fd = (loss(&tp, &user, &mut ws) - loss(&tm, &user, &mut ws)) / (2.0 * eps);
            let analytic = scale * d_prop[d];
            assert!(
                (fd - analytic).abs() < 5e-3 * fd.abs().max(1.0),
                "graph item {gi} dim {d}: {analytic} vs {fd}"
            );
        }
    }

    #[test]
    fn graph_grad_scale_is_half_coeff() {
        let (engine, _, graph, _) = setup(3);
        let d_prop = vec![1.0, 2.0, 3.0];
        let mut d_user = vec![0.0; 3];
        let mut scales = Vec::new();
        engine.backprop_through_propagation(&d_prop, &graph, &mut d_user, |_, s| scales.push(s));
        assert_eq!(scales.len(), 3);
        let expected = 0.5 / 3.0_f32.sqrt();
        for s in scales {
            assert!((s - expected).abs() < 1e-6);
        }
        assert_eq!(d_user, vec![0.5, 1.0, 1.5]);
    }
}
