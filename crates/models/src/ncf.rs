//! Neural collaborative filtering engine.
//!
//! Eq. 5 of the paper: `r̂_ij = σ(FFN([u_i, v_j]))`. The engine holds one
//! predictor (`Θ` of one tier) and scores `(user embedding, item
//! embedding)` pairs of the matching width; the sigmoid lives in the loss
//! (`bce_with_logits`), so [`NcfEngine::forward`] returns logits.

use crate::ffn::{Ffn, FfnCache};
use hf_tensor::rng::Rng;

/// NCF scoring engine for one embedding width.
#[derive(Clone, Debug)]
pub struct NcfEngine {
    dim: usize,
    ffn: Ffn,
}

impl NcfEngine {
    /// Creates an engine with the paper's predictor architecture
    /// `[2*dim, 8, 8] → 1`.
    pub fn new(dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            dim,
            ffn: Ffn::new(&crate::paper_predictor_dims(dim), rng),
        }
    }

    /// Wraps an existing predictor (used when `Θ` arrives from the server).
    ///
    /// # Panics
    /// Panics if the predictor input width is not `2*dim`.
    pub fn from_ffn(dim: usize, ffn: Ffn) -> Self {
        assert_eq!(ffn.input_dim(), 2 * dim, "predictor width must be 2*dim");
        Self { dim, ffn }
    }

    /// Embedding width this engine scores.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable access to the predictor parameters.
    pub fn ffn(&self) -> &Ffn {
        &self.ffn
    }

    /// Mutable access to the predictor parameters (local training updates).
    pub fn ffn_mut(&mut self) -> &mut Ffn {
        &mut self.ffn
    }

    /// Scoring workspace sized for this engine.
    pub fn workspace(&self) -> NcfWorkspace {
        NcfWorkspace {
            cache: FfnCache::for_ffn(&self.ffn),
            input: vec![0.0; 2 * self.dim],
            d_input: vec![0.0; 2 * self.dim],
        }
    }

    /// Logit for one `(user, item)` embedding pair.
    ///
    /// # Panics
    /// Panics if either embedding is not `dim` wide.
    pub fn forward(&self, user: &[f32], item: &[f32], ws: &mut NcfWorkspace) -> f32 {
        assert_eq!(user.len(), self.dim, "user embedding width");
        assert_eq!(item.len(), self.dim, "item embedding width");
        ws.input[..self.dim].copy_from_slice(user);
        ws.input[self.dim..].copy_from_slice(item);
        self.ffn.forward(&ws.input, &mut ws.cache)
    }

    /// Backward pass for the most recent [`NcfEngine::forward`] on `ws`.
    ///
    /// Accumulates predictor gradients into `theta_grads` and writes the
    /// embedding gradients into `d_user` / `d_item` (overwriting them).
    pub fn backward(
        &self,
        d_logit: f32,
        ws: &mut NcfWorkspace,
        theta_grads: &mut Ffn,
        d_user: &mut [f32],
        d_item: &mut [f32],
    ) {
        self.ffn
            .backward(d_logit, &ws.cache, theta_grads, &mut ws.d_input);
        d_user.copy_from_slice(&ws.d_input[..self.dim]);
        d_item.copy_from_slice(&ws.d_input[self.dim..]);
    }
}

/// Reusable buffers for NCF scoring (one per worker thread).
#[derive(Clone, Debug)]
pub struct NcfWorkspace {
    cache: FfnCache,
    input: Vec<f32>,
    d_input: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::ops::{bce_with_logits, bce_with_logits_grad};
    use hf_tensor::rng::{stream, SeedStream};

    fn engine(dim: usize, seed: u64) -> NcfEngine {
        let mut rng = stream(seed, SeedStream::ParamInit);
        NcfEngine::new(dim, &mut rng)
    }

    #[test]
    fn forward_is_deterministic() {
        let e = engine(8, 1);
        let mut ws = e.workspace();
        let u = vec![0.1; 8];
        let v = vec![-0.2; 8];
        assert_eq!(e.forward(&u, &v, &mut ws), e.forward(&u, &v, &mut ws));
    }

    #[test]
    fn embedding_gradients_match_finite_differences() {
        let e = engine(4, 2);
        let mut ws = e.workspace();
        let mut rng = stream(50, SeedStream::Custom(4));
        let u = hf_tensor::init::normal_vec(4, 1.0, &mut rng);
        let v = hf_tensor::init::normal_vec(4, 1.0, &mut rng);
        let y = 1.0;

        let logit = e.forward(&u, &v, &mut ws);
        let mut tg = e.ffn().zeros_like();
        let mut du = vec![0.0; 4];
        let mut dv = vec![0.0; 4];
        e.backward(
            bce_with_logits_grad(logit, y),
            &mut ws,
            &mut tg,
            &mut du,
            &mut dv,
        );

        let eps = 1e-2;
        for i in 0..4 {
            let mut up = u.clone();
            up[i] += eps;
            let mut um = u.clone();
            um[i] -= eps;
            let lp = bce_with_logits(e.forward(&up, &v, &mut ws), y);
            let lm = bce_with_logits(e.forward(&um, &v, &mut ws), y);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - du[i]).abs() < 5e-3 * fd.abs().max(1.0),
                "du[{i}] {} vs {fd}",
                du[i]
            );

            let mut vp = v.clone();
            vp[i] += eps;
            let mut vm = v.clone();
            vm[i] -= eps;
            let lp = bce_with_logits(e.forward(&u, &vp, &mut ws), y);
            let lm = bce_with_logits(e.forward(&u, &vm, &mut ws), y);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dv[i]).abs() < 5e-3 * fd.abs().max(1.0),
                "dv[{i}] {} vs {fd}",
                dv[i]
            );
        }
    }

    #[test]
    fn training_separates_positive_and_negative_items() {
        // One user, two items with opposite ground truth — a few gradient
        // steps must drive the logits apart.
        let mut e = engine(4, 3);
        let mut ws = e.workspace();
        let mut u = vec![0.1, -0.1, 0.2, 0.05];
        let v_pos = vec![0.3, 0.1, -0.2, 0.4];
        let v_neg = vec![-0.1, 0.2, 0.3, -0.3];
        let mut du = vec![0.0; 4];
        let mut dv = vec![0.0; 4];

        for _ in 0..200 {
            let mut tg = e.ffn().zeros_like();
            for (v, y) in [(&v_pos, 1.0), (&v_neg, 0.0)] {
                let logit = e.forward(&u, v, &mut ws);
                e.backward(
                    bce_with_logits_grad(logit, y),
                    &mut ws,
                    &mut tg,
                    &mut du,
                    &mut dv,
                );
                hf_tensor::ops::axpy_slice(&mut u, -0.1, &du);
            }
            e.ffn_mut().add_scaled(-0.1, &tg);
        }
        let pos = e.forward(&u, &v_pos, &mut ws);
        let neg = e.forward(&u, &v_neg, &mut ws);
        assert!(pos > neg + 1.0, "pos {pos} vs neg {neg}");
    }

    #[test]
    #[should_panic(expected = "user embedding width")]
    fn rejects_wrong_user_width() {
        let e = engine(4, 4);
        let mut ws = e.workspace();
        let _ = e.forward(&[0.0; 3], &[0.0; 4], &mut ws);
    }

    #[test]
    #[should_panic(expected = "predictor width")]
    fn from_ffn_checks_width() {
        let mut rng = stream(5, SeedStream::ParamInit);
        let ffn = Ffn::new(&[6, 4, 1], &mut rng);
        let _ = NcfEngine::from_ffn(4, ffn);
    }
}
