//! The shared serving/evaluation scorer: split-layer NCF.
//!
//! Offline evaluation and online serving must rank identically, so both
//! go through this one scorer instead of each hand-rolling the forward
//! pass. The NCF logit is `FFN([u, v])`; because the first layer is
//! linear in its input, it decomposes exactly into a **user half** and an
//! **item half**:
//!
//! ```text
//! pre₁[o] = (W₁ᵘ·u + b₁)[o]  +  (v · W₁ᵛᵀ)[o]
//!           └── user half ──┘    └─ item half ─┘
//! ```
//!
//! The item half depends only on the item row and the predictor, so a
//! serving batch computes it once per item *panel* as a blocked
//! [`Matrix::matmul_rows`] product and shares it across every user in the
//! batch; the user half is computed once per request instead of once per
//! `(user, item)` pair. The remaining (tiny) hidden layers run per pair.
//!
//! **Determinism contract.** [`SplitNcf::item_half_into`] accumulates each
//! output lane over `k` in ascending order — exactly the per-element
//! summation chain of [`Matrix::matmul_rows`] — so the scalar path (used
//! by evaluation and by standalone-overlay corrections) and the panel
//! path (used by batched serving) produce **bit-identical** logits. This
//! is what lets `hetefedrec_core::eval` and `hf_serve` share one scorer
//! while batching however they like.
//!
//! Note the split logit is *not* bit-identical to the historical
//! monolithic [`crate::ncf::NcfEngine::forward`] chain (float addition is
//! not associative); the split form is the canonical scoring path — local
//! *training* keeps the monolithic engine, whose backward pass matches its
//! own forward.

use crate::ffn::{Ffn, FfnCache};
use hf_tensor::ops::{dot, relu};
use hf_tensor::Matrix;

/// Split-layer NCF scorer for one predictor at one embedding width.
#[derive(Clone, Debug)]
pub struct SplitNcf {
    dim: usize,
    h1: usize,
    /// First-layer weights over the user half, `h1 x dim` (row-major, as
    /// stored in the [`Ffn`]).
    w_user: Matrix,
    /// First-layer weights over the item half, **transposed** to
    /// `dim x h1` so an item panel `P (p x dim)` scores as `P · w_item`.
    w_item: Matrix,
    /// First-layer bias (folded into the user half).
    b1: Vec<f32>,
    /// Layers after the first, as their own FFN (`None` for a single
    /// linear layer `[2n, 1]`, where the logit is just the sum of halves).
    tail: Option<Ffn>,
}

/// Reusable per-thread scratch for [`SplitNcf::finish`].
#[derive(Clone, Debug)]
pub struct SplitWorkspace {
    hidden: Vec<f32>,
    cache: Option<FfnCache>,
}

impl SplitNcf {
    /// Builds the scorer from a predictor whose input width is `2 * dim`.
    ///
    /// # Panics
    /// Panics if `ffn.input_dim() != 2 * dim`.
    pub fn from_ffn(dim: usize, ffn: &Ffn) -> Self {
        let dims = ffn.dims();
        assert_eq!(dims[0], 2 * dim, "predictor width must be 2*dim");
        let h1 = dims[1];
        let flat = ffn.to_flat();
        let w0 = &flat[..h1 * 2 * dim]; // h1 x 2dim, row-major
        let b1 = flat[h1 * 2 * dim..h1 * 2 * dim + h1].to_vec();
        let w_user = Matrix::from_fn(h1, dim, |o, j| w0[o * 2 * dim + j]);
        let w_item = Matrix::from_fn(dim, h1, |k, o| w0[o * 2 * dim + dim + k]);
        let tail = (dims.len() > 2).then(|| {
            let tail_start = h1 * 2 * dim + h1;
            Ffn::from_flat(&dims[1..], &flat[tail_start..])
        });
        Self {
            dim,
            h1,
            w_user,
            w_item,
            b1,
            tail,
        }
    }

    /// Embedding width this scorer consumes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Width of the first hidden layer (= item-half width).
    pub fn hidden_width(&self) -> usize {
        self.h1
    }

    /// Scratch buffers for [`SplitNcf::finish`] (one per worker thread).
    pub fn workspace(&self) -> SplitWorkspace {
        SplitWorkspace {
            hidden: vec![0.0; self.h1],
            cache: self.tail.as_ref().map(FfnCache::for_ffn),
        }
    }

    /// The user half `W₁ᵘ·u + b₁`, computed once per request.
    ///
    /// # Panics
    /// Panics (debug) if `user.len() != dim`.
    pub fn user_half(&self, user: &[f32]) -> Vec<f32> {
        debug_assert_eq!(user.len(), self.dim, "user embedding width");
        (0..self.h1)
            .map(|o| dot(self.w_user.row(o), user) + self.b1[o])
            .collect()
    }

    /// The item half of one row, written into `out` (`hidden_width` wide).
    ///
    /// Each lane accumulates over `k` ascending — the same summation chain
    /// as one output element of [`SplitNcf::item_half_block`], so the two
    /// paths are bit-identical.
    pub fn item_half_into(&self, item: &[f32], out: &mut [f32]) {
        debug_assert_eq!(item.len(), self.dim, "item embedding width");
        debug_assert_eq!(out.len(), self.h1);
        out.iter_mut().for_each(|x| *x = 0.0);
        for (k, &x) in item.iter().enumerate() {
            let w_row = self.w_item.row(k);
            for (o, &w) in out.iter_mut().zip(w_row) {
                *o += x * w;
            }
        }
    }

    /// Item halves of the table rows `row_start..row_end` as a
    /// `(row_end - row_start) x hidden_width` panel — one blocked
    /// [`Matrix::matmul_rows`] product shared by every user in a batch.
    ///
    /// # Panics
    /// Panics if `table.cols() != dim` or the row range is out of bounds.
    pub fn item_half_block(&self, table: &Matrix, row_start: usize, row_end: usize) -> Matrix {
        table.matmul_rows(&self.w_item, row_start, row_end)
    }

    /// Final logit from a user half and an item half.
    pub fn finish(&self, user_half: &[f32], item_half: &[f32], ws: &mut SplitWorkspace) -> f32 {
        debug_assert_eq!(user_half.len(), self.h1);
        debug_assert_eq!(item_half.len(), self.h1);
        match &self.tail {
            None => user_half[0] + item_half[0],
            Some(tail) => {
                for ((h, &u), &v) in ws.hidden.iter_mut().zip(user_half).zip(item_half) {
                    *h = relu(u + v);
                }
                tail.forward(&ws.hidden, ws.cache.as_mut().expect("tail cache"))
            }
        }
    }
}

/// One-layer LightGCN propagation of a user embedding over its local
/// interaction graph (paper Eq. 4 with the client-local privacy
/// constraint): `u' = (u + deg^{-1/2} Σ v_g) / 2`.
///
/// `degree` is the number of graph rows (the user's training positives);
/// `rows` must yield exactly the item rows in a **fixed order** — the
/// accumulation order is part of the determinism contract shared by
/// evaluation and serving.
pub fn propagate_lightgcn<'a>(
    emb: &[f32],
    degree: usize,
    rows: impl Iterator<Item = &'a [f32]>,
) -> Vec<f32> {
    let coeff = if degree == 0 {
        0.0
    } else {
        1.0 / (degree as f32).sqrt()
    };
    let mut prop = emb.to_vec();
    for row in rows {
        hf_tensor::ops::axpy_slice(&mut prop, coeff, &row[..emb.len()]);
    }
    prop.iter_mut().for_each(|x| *x *= 0.5);
    prop
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, SeedStream};

    fn scorer(dim: usize, seed: u64) -> (SplitNcf, Ffn) {
        let mut rng = stream(seed, SeedStream::ParamInit);
        let ffn = Ffn::new(&crate::paper_predictor_dims(dim), &mut rng);
        (SplitNcf::from_ffn(dim, &ffn), ffn)
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = stream(seed, SeedStream::Custom(11));
        hf_tensor::init::normal_vec(n, 1.0, &mut rng)
    }

    #[test]
    fn split_score_matches_monolithic_forward_closely() {
        // The split chain reassociates layer-1 sums, so agreement is
        // numerical (1e-5 relative), not bitwise — the bitwise contract
        // is *within* the split paths, tested below.
        let dim = 16;
        let (s, ffn) = scorer(dim, 3);
        let engine = crate::ncf::NcfEngine::from_ffn(dim, ffn);
        let mut ews = engine.workspace();
        let mut ws = s.workspace();
        let mut ih = vec![0.0; s.hidden_width()];
        for case in 0..32u64 {
            let u = random_vec(dim, 100 + case);
            let v = random_vec(dim, 200 + case);
            let uh = s.user_half(&u);
            s.item_half_into(&v, &mut ih);
            let got = s.finish(&uh, &ih, &mut ws);
            let want = engine.forward(&u, &v, &mut ews);
            assert!(
                (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                "case {case}: split {got} vs monolithic {want}"
            );
        }
    }

    #[test]
    fn scalar_and_panel_item_halves_are_bit_identical() {
        let dim = 16;
        let (s, _) = scorer(dim, 4);
        let table = Matrix::from_fn(137, dim, |r, c| ((r * dim + c) as f32 * 0.173).sin());
        let mut ih = vec![0.0; s.hidden_width()];
        // Whole-table panel and several sub-panels must all agree with the
        // scalar path, bit for bit.
        for (start, end) in [(0usize, 137usize), (0, 64), (64, 137), (17, 23)] {
            let block = s.item_half_block(&table, start, end);
            for r in start..end {
                s.item_half_into(table.row(r), &mut ih);
                for (o, (&a, &b)) in ih.iter().zip(block.row(r - start)).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "row {r} lane {o} panel {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_linear_layer_predictor_scores_as_sum_of_halves() {
        let dim = 4;
        let mut rng = stream(5, SeedStream::ParamInit);
        let ffn = Ffn::new(&[2 * dim, 1], &mut rng);
        let s = SplitNcf::from_ffn(dim, &ffn);
        assert_eq!(s.hidden_width(), 1);
        let u = random_vec(dim, 6);
        let v = random_vec(dim, 7);
        let uh = s.user_half(&u);
        let mut ih = vec![0.0; 1];
        s.item_half_into(&v, &mut ih);
        let mut ws = s.workspace();
        assert_eq!(s.finish(&uh, &ih, &mut ws), uh[0] + ih[0]);
    }

    #[test]
    #[should_panic(expected = "predictor width")]
    fn rejects_mismatched_width() {
        let mut rng = stream(8, SeedStream::ParamInit);
        let ffn = Ffn::new(&[10, 8, 1], &mut rng);
        let _ = SplitNcf::from_ffn(4, &ffn);
    }

    #[test]
    fn propagation_matches_manual_computation() {
        let emb = vec![1.0f32, -2.0];
        let rows: Vec<Vec<f32>> = vec![vec![2.0, 0.0], vec![0.0, 4.0]];
        let got = propagate_lightgcn(&emb, 2, rows.iter().map(|r| r.as_slice()));
        let coeff = 1.0 / 2.0f32.sqrt();
        let want = [(1.0 + coeff * 2.0) * 0.5, (-2.0 + coeff * 4.0) * 0.5];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
        // Degree zero: pure halving of the embedding.
        let cold = propagate_lightgcn(&emb, 0, std::iter::empty());
        assert_eq!(cold, vec![0.5, -1.0]);
    }
}
