//! Row-sparse gradient accumulation for item-embedding tables.
//!
//! A federated client's batch touches a handful of item rows (its
//! positives, sampled negatives, and — for LightGCN — its local-graph
//! items). Accumulating into a dense `|V| x N` buffer would dominate the
//! round cost, so gradients are keyed by row with slot reuse across a
//! local epoch. The buffer is also the wire format producer: its contents
//! become the sparse update a client uploads (DESIGN.md §5).

use std::collections::HashMap;

/// Accumulates per-row gradients of fixed width.
#[derive(Clone, Debug)]
pub struct RowGradBuffer {
    dim: usize,
    slots: HashMap<u32, usize>,
    rows: Vec<u32>,
    data: Vec<f32>,
}

impl RowGradBuffer {
    /// Creates a buffer for rows of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            slots: HashMap::new(),
            rows: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Gradient width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows are touched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `grad` may be narrower than `dim` (a prefix-width contribution from
    /// a smaller tier task); the tail stays untouched.
    ///
    /// # Panics
    /// Panics if `grad` is wider than `dim`.
    pub fn accumulate(&mut self, row: u32, scale: f32, grad: &[f32]) {
        assert!(grad.len() <= self.dim, "grad wider than buffer dim");
        let slot = *self.slots.entry(row).or_insert_with(|| {
            self.rows.push(row);
            self.data.extend(std::iter::repeat_n(0.0, self.dim));
            self.rows.len() - 1
        });
        let start = slot * self.dim;
        for (acc, &g) in self.data[start..start + grad.len()].iter_mut().zip(grad) {
            *acc += scale * g;
        }
    }

    /// Iterates `(row, gradient)` pairs in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.rows
            .iter()
            .enumerate()
            .map(move |(slot, &row)| (row, &self.data[slot * self.dim..(slot + 1) * self.dim]))
    }

    /// Gradient for one row, if touched.
    pub fn get(&self, row: u32) -> Option<&[f32]> {
        self.slots
            .get(&row)
            .map(|&slot| &self.data[slot * self.dim..(slot + 1) * self.dim])
    }

    /// Resets to empty, retaining allocations for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.rows.clear();
        self.data.clear();
    }

    /// Drains into owned `(row, grad)` pairs (the upload payload), leaving
    /// the buffer empty but allocated.
    pub fn drain(&mut self) -> Vec<(u32, Vec<f32>)> {
        let out = self
            .rows
            .iter()
            .enumerate()
            .map(|(slot, &row)| {
                (
                    row,
                    self.data[slot * self.dim..(slot + 1) * self.dim].to_vec(),
                )
            })
            .collect();
        self.clear();
        out
    }

    /// Scales every accumulated gradient (e.g. batch-size normalisation).
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_same_row() {
        let mut buf = RowGradBuffer::new(3);
        buf.accumulate(5, 1.0, &[1.0, 2.0, 3.0]);
        buf.accumulate(5, 2.0, &[1.0, 1.0, 1.0]);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(5).unwrap(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn distinct_rows_get_distinct_slots() {
        let mut buf = RowGradBuffer::new(2);
        buf.accumulate(1, 1.0, &[1.0, 0.0]);
        buf.accumulate(9, 1.0, &[0.0, 1.0]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1).unwrap(), &[1.0, 0.0]);
        assert_eq!(buf.get(9).unwrap(), &[0.0, 1.0]);
        assert!(buf.get(2).is_none());
    }

    #[test]
    fn prefix_grad_leaves_tail_zero() {
        let mut buf = RowGradBuffer::new(4);
        buf.accumulate(0, 1.0, &[1.0, 2.0]);
        assert_eq!(buf.get(0).unwrap(), &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn iter_preserves_first_touch_order() {
        let mut buf = RowGradBuffer::new(1);
        for row in [7, 3, 11, 3, 7] {
            buf.accumulate(row, 1.0, &[1.0]);
        }
        let order: Vec<u32> = buf.iter().map(|(r, _)| r).collect();
        assert_eq!(order, vec![7, 3, 11]);
        assert_eq!(buf.get(7).unwrap(), &[2.0]);
    }

    #[test]
    fn drain_empties_but_retains_capacity() {
        let mut buf = RowGradBuffer::new(2);
        buf.accumulate(4, 1.0, &[1.0, 1.0]);
        let drained = buf.drain();
        assert_eq!(drained, vec![(4, vec![1.0, 1.0])]);
        assert!(buf.is_empty());
        buf.accumulate(4, 1.0, &[2.0, 2.0]);
        assert_eq!(buf.get(4).unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn scale_rescales_everything() {
        let mut buf = RowGradBuffer::new(1);
        buf.accumulate(0, 1.0, &[2.0]);
        buf.accumulate(1, 1.0, &[4.0]);
        buf.scale(0.5);
        assert_eq!(buf.get(0).unwrap(), &[1.0]);
        assert_eq!(buf.get(1).unwrap(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "wider than buffer")]
    fn rejects_overwide_grad() {
        let mut buf = RowGradBuffer::new(2);
        buf.accumulate(0, 1.0, &[1.0, 2.0, 3.0]);
    }
}
