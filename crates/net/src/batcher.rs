//! The bounded in-flight queue and the micro-batching policy.
//!
//! Connection reader threads push decoded requests into a [`JobQueue`];
//! the single batcher thread pops them in **micro-batches**: the first
//! job opens a batch and starts the coalescing window, and the batch
//! closes when either `batch_max` jobs have joined or `batch_window` has
//! elapsed since the batch opened — whichever comes first. A zero window
//! degenerates to "whatever is already queued", which still coalesces
//! under load but never delays an isolated request.
//!
//! Backpressure is the queue bound: [`JobQueue::push`] blocks while the
//! queue holds `capacity` jobs, which stalls that connection's reader
//! thread, which stops draining its socket, which fills the kernel
//! buffers, which stalls the client's writes. No frame is ever dropped;
//! the slowdown propagates to the sender, end to end.
//!
//! Coalescing never changes answers: `Recommender::recommend_batch` is
//! bit-identical across batch compositions by the serving determinism
//! contract, so the window size is purely a throughput/latency trade.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queue slot: one decoded request plus the context needed to answer
/// it (generic so tests can drive the policy without sockets).
pub(crate) struct Queue<T> {
    inner: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    closed: AtomicBool,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            closed: AtomicBool::new(false),
        }
    }

    /// `true` once [`Queue::close`] has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Closes the queue: pushes start failing, and poppers drain what is
    /// left and then see `None`.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Blocks until there is room (backpressure), then enqueues.
    /// Returns `false` — the job was not accepted — once closed.
    pub(crate) fn push(&self, job: T) -> bool {
        let mut q = self.inner.lock().expect("queue poisoned");
        while q.len() >= self.capacity {
            if self.is_closed() {
                return false;
            }
            q = self.not_full.wait(q).expect("queue poisoned");
        }
        if self.is_closed() {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.not_empty.notify_one();
        true
    }

    /// Pops the next micro-batch: blocks for the first job, then
    /// coalesces arrivals until `max` jobs or `window` past the first
    /// pop. Returns `None` when the queue is closed *and* drained.
    pub(crate) fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<T>> {
        let mut q = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(first) = q.pop_front() {
                let mut batch = Vec::with_capacity(max.min(self.capacity));
                batch.push(first);
                let deadline = Instant::now() + window;
                loop {
                    while batch.len() < max {
                        match q.pop_front() {
                            Some(job) => batch.push(job),
                            None => break,
                        }
                    }
                    if batch.len() >= max || self.is_closed() {
                        break;
                    }
                    let now = Instant::now();
                    let Some(remaining) = deadline.checked_duration_since(now) else {
                        break;
                    };
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, timeout) = self
                        .not_empty
                        .wait_timeout(q, remaining)
                        .expect("queue poisoned");
                    q = guard;
                    if timeout.timed_out() && q.is_empty() {
                        break;
                    }
                }
                drop(q);
                self.not_full.notify_all();
                return Some(batch);
            }
            if self.is_closed() {
                return None;
            }
            q = self.not_empty.wait(q).expect("queue poisoned");
        }
    }

    /// Number of queued jobs right now (diagnostics only).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = Queue::new(64);
        for i in 0..10 {
            assert!(q.push(i));
        }
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        let batch = q.pop_batch(64, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn window_waits_for_stragglers() {
        let q = Arc::new(Queue::new(64));
        q.push(1u32);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.push(2);
            })
        };
        // A generous window lets the second job join the first batch.
        let batch = q.pop_batch(8, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn zero_window_serves_immediately() {
        let q = Queue::new(8);
        q.push(7u32);
        let t0 = Instant::now();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![7]);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn push_blocks_at_capacity_until_popped() {
        let q = Arc::new(Queue::new(2));
        assert!(q.push(1u32));
        assert!(q.push(2));
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(3))
        };
        // The push cannot complete while the queue is full.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 2);
        let batch = q.pop_batch(2, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert!(blocked.join().unwrap());
        assert_eq!(q.pop_batch(8, Duration::ZERO).unwrap(), vec![3]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Queue::new(8);
        q.push(1u32);
        q.push(2);
        q.close();
        assert!(!q.push(3), "closed queue rejects new jobs");
        assert_eq!(q.pop_batch(8, Duration::from_secs(1)).unwrap(), vec![1, 2]);
        assert!(q.pop_batch(8, Duration::from_secs(1)).is_none());
    }

    #[test]
    fn close_unblocks_a_full_queue_push() {
        let q = Arc::new(Queue::new(1));
        assert!(q.push(1u32));
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(!blocked.join().unwrap(), "push fails after close");
    }
}
