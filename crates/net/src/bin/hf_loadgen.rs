//! `hf-loadgen` — open-loop load generation against an `hf-serve`
//! address, with optional bit-identity verification.
//!
//! ```text
//! hf-loadgen --addr 127.0.0.1:7878 [--connections 8] [--rate 2000]
//!            [--requests 4000] [--seed 7] [--users 1000] [--k 0]
//!            [--max-seconds 60] [--verify-artifact model.hfa] [--shutdown]
//! ```
//!
//! Arrivals are Poisson (exponential inter-arrivals from the in-repo
//! deterministic RNG) split across `--connections`; the report prints
//! achieved qps and socket-to-socket p50/p95/p99 from the log-bucketed
//! latency histogram. With `--verify-artifact`, every exchange is
//! captured and replayed through an in-process `Recommender` built from
//! the same artifact file; the run fails unless every served ranking is
//! bit-identical, and prints the `served == in-process` proof line CI
//! greps. `--shutdown` sends a `Shutdown` frame after the run so a
//! scripted server exits gracefully.

use hf_net::{run_loadgen, verify_exchanges, Client, LoadGen};
use hf_serve::{ModelArtifact, RecommenderBuilder};
use std::time::Duration;

const USAGE: &str = "usage: hf-loadgen --addr <host:port> [--connections 8] [--rate 2000]\n\
    \x20   [--requests 4000] [--seed 7] [--users N] [--k 0] [--max-seconds 60]\n\
    \x20   [--verify-artifact model.hfa] [--shutdown]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut config = LoadGen {
        connections: 8,
        target_qps: 2000.0,
        requests: 4000,
        max_duration: Duration::from_secs(60),
        seed: 7,
        users: 0,
        k: 0,
        capture: false,
    };
    let mut verify_artifact: Option<String> = None;
    let mut shutdown = false;
    let mut users_set = false;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        macro_rules! parse {
            ($name:literal) => {
                value($name)
                    .parse()
                    .unwrap_or_else(|_| usage_exit(concat!("bad ", $name)))
            };
        }
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--connections" => config.connections = parse!("--connections"),
            "--rate" => config.target_qps = parse!("--rate"),
            "--requests" => config.requests = parse!("--requests"),
            "--seed" => config.seed = parse!("--seed"),
            "--users" => {
                config.users = parse!("--users");
                users_set = true;
            }
            "--k" => config.k = parse!("--k"),
            "--max-seconds" => config.max_duration = Duration::from_secs(parse!("--max-seconds")),
            "--verify-artifact" => verify_artifact = Some(value("--verify-artifact")),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_exit(&format!("unknown flag `{other}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage_exit("--addr is required"));

    // The verification recommender must match hf-serve's defaults so the
    // in-process replay answers from the same configuration.
    let verifier = verify_artifact.as_ref().map(|path| {
        let artifact = ModelArtifact::load_file(path).unwrap_or_else(|e| {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(1);
        });
        if !users_set {
            // Exercise cold-start ids: ~4% of draws land past the
            // artifact's user count.
            config.users = (artifact.num_users() as u64).max(1) * 105 / 100;
        }
        config.capture = true;
        RecommenderBuilder::new(artifact)
            .default_k(10)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("error: invalid verification configuration: {e}");
                std::process::exit(1);
            })
    });
    if config.users == 0 {
        usage_exit("--users is required without --verify-artifact");
    }

    // Wait for a booting server (CI starts hf-serve in the background).
    Client::connect_retry(addr.as_str(), Duration::from_secs(10))
        .and_then(|mut probe| probe.ping())
        .unwrap_or_else(|e| {
            eprintln!("error: {addr} is not serving: {e}");
            std::process::exit(1);
        });

    println!(
        "hf-loadgen: {} connections, target {} req/s, {} requests, seed {}",
        config.connections, config.target_qps, config.requests, config.seed
    );
    let report = run_loadgen(addr.as_str(), &config).unwrap_or_else(|e| {
        eprintln!("error: load generation failed: {e}");
        std::process::exit(1);
    });

    let q = |p: f64| report.latency.quantile_ms(p).unwrap_or(f64::NAN);
    println!(
        "sent {}  received {}  remote-errors {}  elapsed {:.3}s",
        report.sent,
        report.received,
        report.remote_errors,
        report.elapsed.as_secs_f64()
    );
    println!(
        "achieved {:.0} req/s  latency p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        report.achieved_qps(),
        q(0.50),
        q(0.95),
        q(0.99)
    );
    if report.received < report.sent {
        eprintln!(
            "error: {} requests went unanswered",
            report.sent - report.received
        );
        std::process::exit(1);
    }

    if let Some(recommender) = &verifier {
        match verify_exchanges(recommender, &report.exchanges) {
            Ok(n) => println!("served == in-process ({n} responses bit-identical)"),
            Err(e) => {
                eprintln!("error: verification failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if shutdown {
        let sent = Client::connect(addr.as_str()).and_then(|mut c| c.shutdown_server());
        match sent {
            Ok(()) => println!("hf-loadgen: sent shutdown"),
            Err(e) => {
                eprintln!("error: could not send shutdown: {e}");
                std::process::exit(1);
            }
        }
    }
}
