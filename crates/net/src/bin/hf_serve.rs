//! `hf-serve` — load a model artifact, serve it over TCP.
//!
//! ```text
//! hf-serve --artifact model.hfa [--addr 127.0.0.1:7878]
//!          [--batch-window-us 500] [--batch-max 64] [--queue-cap 1024]
//!          [--threads 1] [--k 10] [--cold-start-blend 0.0]
//!          [--lazy] [--user-shards 64] [--user-shard-cap 256]
//!          [--tile-panels N]
//! ```
//!
//! The model comes from the compact binary artifact format
//! (`ModelArtifact::load_file`) — the deployment path: no checkpoint
//! replay, no dataset in sight. With `--lazy` the artifact is opened
//! through `load_file_lazy` instead: user records decode on first touch
//! into a sharded LRU (`--user-shards` × `--user-shard-cap` records
//! resident at most) and item-half tiles are capped at `--tile-panels`
//! (defaults to 64 under `--lazy`; `0` forces full precomputation).
//! Either way the process reports its resident footprint once the
//! recommender is built, prints one `listening on <addr>` line once the
//! socket is bound, and serves until a client sends a `Shutdown` frame,
//! then drains in-flight requests and exits 0.
//!
//! A client's `Reload` frame re-reads `--artifact` from disk and
//! hot-swaps it in: in-flight micro-batches finish on the old artifact,
//! later batches serve the fresh one, and no restart is needed — the
//! online pipeline overwrites the artifact path and sends `Reload`.

use hf_net::{serve_slot, ReloadFn, ServerConfig};
use hf_serve::{
    footprint, ArtifactSlot, ItemHalfMode, LazyConfig, ModelArtifact, Recommender,
    RecommenderBuilder,
};
use std::time::Duration;

#[derive(Clone)]
struct Args {
    artifact: String,
    addr: String,
    batch_window_us: u64,
    batch_max: usize,
    queue_cap: usize,
    threads: usize,
    k: usize,
    blend: f32,
    lazy: bool,
    user_shards: usize,
    user_shard_cap: usize,
    tile_panels: Option<usize>,
}

const USAGE: &str = "usage: hf-serve --artifact <model.hfa>\n\
    \x20   [--addr 127.0.0.1:7878] [--batch-window-us 500] [--batch-max 64]\n\
    \x20   [--queue-cap 1024] [--threads 1] [--k 10] [--cold-start-blend 0.0]\n\
    \x20   [--lazy] [--user-shards 64] [--user-shard-cap 256] [--tile-panels N]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut artifact: Option<String> = None;
    let mut args = Args {
        artifact: String::new(),
        addr: "127.0.0.1:7878".to_string(),
        batch_window_us: 500,
        batch_max: 64,
        queue_cap: 1024,
        threads: 1,
        k: 10,
        blend: 0.0,
        lazy: false,
        user_shards: LazyConfig::default().user_shards,
        user_shard_cap: LazyConfig::default().shard_capacity,
        tile_panels: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--artifact" => artifact = Some(value("--artifact")),
            "--addr" => args.addr = value("--addr"),
            "--batch-window-us" => {
                args.batch_window_us = value("--batch-window-us")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --batch-window-us"))
            }
            "--batch-max" => {
                args.batch_max = value("--batch-max")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --batch-max"))
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --queue-cap"))
            }
            "--threads" => {
                args.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --threads"))
            }
            "--k" => {
                args.k = value("--k")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --k"))
            }
            "--cold-start-blend" => {
                args.blend = value("--cold-start-blend")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --cold-start-blend"))
            }
            "--lazy" => args.lazy = true,
            "--user-shards" => {
                args.user_shards = value("--user-shards")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --user-shards"))
            }
            "--user-shard-cap" => {
                args.user_shard_cap = value("--user-shard-cap")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("bad --user-shard-cap"))
            }
            "--tile-panels" => {
                args.tile_panels = Some(
                    value("--tile-panels")
                        .parse()
                        .unwrap_or_else(|_| usage_exit("bad --tile-panels")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_exit(&format!("unknown flag `{other}`")),
        }
    }
    match artifact {
        Some(path) => args.artifact = path,
        None => usage_exit("--artifact is required"),
    }
    args
}

/// Loads the artifact file and builds a recommender per the CLI flags —
/// the shared path for the initial build and every on-wire `Reload`.
fn build_recommender(args: &Args) -> Result<Recommender, String> {
    let artifact = if args.lazy {
        ModelArtifact::load_file_lazy(
            &args.artifact,
            LazyConfig {
                user_shards: args.user_shards,
                shard_capacity: args.user_shard_cap,
            },
        )
    } else {
        ModelArtifact::load_file(&args.artifact)
    }
    .map_err(|e| format!("cannot load model: {e}"))?;
    println!(
        "hf-serve: artifact v{} — {} users, {} items, model {:?}{}",
        artifact.version(),
        artifact.num_users(),
        artifact.num_items(),
        artifact.model(),
        if artifact.is_lazy() {
            format!(
                " (lazy: {} shards x {} records)",
                args.user_shards, args.user_shard_cap
            )
        } else {
            String::new()
        }
    );

    // Item-half policy: under --lazy default to tiling (bounded memory);
    // eager keeps full precomputation. `--tile-panels 0` forces full
    // precomputation either way.
    let mode = match args.tile_panels {
        Some(0) => ItemHalfMode::Precomputed,
        Some(n) => ItemHalfMode::Tiled { max_panels: n },
        None if args.lazy => ItemHalfMode::Tiled { max_panels: 64 },
        None => ItemHalfMode::Precomputed,
    };
    RecommenderBuilder::new(artifact)
        .default_k(args.k)
        .threads(args.threads)
        .cold_start_blend(args.blend)
        .item_half_mode(mode)
        .build()
        .map_err(|e| format!("invalid serving configuration: {e}"))
}

fn main() {
    let args = parse_args();

    let recommender = build_recommender(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    match footprint::resident_bytes() {
        Some(rss) => println!(
            "hf-serve: resident footprint after build: {}",
            footprint::fmt_bytes(rss)
        ),
        None => println!("hf-serve: resident footprint unavailable on this platform"),
    }

    let config = ServerConfig {
        batch_window: Duration::from_micros(args.batch_window_us),
        batch_max: args.batch_max,
        queue_capacity: args.queue_cap,
    };
    let slot = ArtifactSlot::new(recommender);
    let reload_args = args.clone();
    let reload: ReloadFn = Box::new(move || build_recommender(&reload_args));
    let handle = serve_slot(slot, Some(reload), &args.addr, config).unwrap_or_else(|e| {
        eprintln!("error: cannot serve on {}: {e}", args.addr);
        std::process::exit(1);
    });
    println!(
        "hf-serve: listening on {} (window {} us, batch <= {}, queue <= {})",
        handle.local_addr(),
        args.batch_window_us,
        args.batch_max,
        args.queue_cap
    );
    // Serve until a client sends a Shutdown frame, then drain and exit.
    handle.wait();
    println!("hf-serve: drained and stopped");
}
