//! A small synchronous client for the framed serving protocol.
//!
//! [`Client`] keeps one connection and one request in flight at a time
//! — the shape applications and tests want. The open-loop load
//! generator ([`crate::loadgen`]) pipelines many requests per
//! connection instead and talks frames directly.

use crate::frame::{Frame, WireRequest, WireResponse};
use crate::NetError;
use hf_serve::{RecommendRequest, RecommendResponse};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking request/response connection to an `hf-serve` instance.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(Self { stream, next_id: 1 })
    }

    /// Keeps retrying [`Client::connect`] until `deadline_total` elapses
    /// — the standard way to wait for a server that is still booting.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline_total: Duration,
    ) -> Result<Self, NetError> {
        let deadline = std::time::Instant::now() + deadline_total;
        loop {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sets a read timeout on the underlying socket (`None` blocks
    /// forever, the default).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(NetError::Io)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request and blocks for its answer.
    ///
    /// Fails with [`NetError::NotWireExpressible`] if the request
    /// carries a closure filter.
    pub fn recommend(&mut self, request: &RecommendRequest) -> Result<RecommendResponse, NetError> {
        let id = self.fresh_id();
        let wire =
            WireRequest::try_from_request(id, request).map_err(|_| NetError::NotWireExpressible)?;
        self.recommend_wire(wire).map(WireResponse::into_response)
    }

    /// Sends an already-wire-shaped request and blocks for its answer.
    pub fn recommend_wire(&mut self, request: WireRequest) -> Result<WireResponse, NetError> {
        let id = request.id;
        Frame::Request(request)
            .write_to(&mut self.stream)
            .map_err(NetError::Io)?;
        loop {
            match self.read_frame()? {
                Frame::Response(response) if response.id == id => return Ok(response),
                Frame::Error(e) if e.id == id || e.id == 0 => {
                    return Err(NetError::Remote {
                        code: e.code,
                        message: e.message,
                    })
                }
                // With one request in flight, anything else is a
                // protocol violation.
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected the answer to request {id}, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Round-trips a ping token.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let token = self.fresh_id() ^ 0x5049_4e47; // "PING"
        Frame::Ping(token)
            .write_to(&mut self.stream)
            .map_err(NetError::Io)?;
        match self.read_frame()? {
            Frame::Pong(echo) if echo == token => Ok(()),
            other => Err(NetError::Protocol(format!(
                "expected pong {token}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to hot-swap to its freshest artifact and blocks
    /// for the acknowledgment; returns the new artifact version.
    /// Responses stamped with that version (or later) are guaranteed to
    /// come from the fresh artifact.
    pub fn reload(&mut self) -> Result<u64, NetError> {
        Frame::Reload
            .write_to(&mut self.stream)
            .map_err(NetError::Io)?;
        match self.read_frame()? {
            Frame::Reloaded(version) => Ok(version),
            Frame::Error(e) => Err(NetError::Remote {
                code: e.code,
                message: e.message,
            }),
            other => Err(NetError::Protocol(format!(
                "expected a reload acknowledgment, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain in-flight work and stop.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        Frame::Shutdown
            .write_to(&mut self.stream)
            .map_err(NetError::Io)
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        match Frame::read_from(&mut self.stream) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(NetError::Protocol(
                "server closed the connection mid-exchange".to_string(),
            )),
            Err(crate::frame::ReadFrameError::Io(e)) => Err(NetError::Io(e)),
            Err(crate::frame::ReadFrameError::Frame(e)) => Err(NetError::Frame(e)),
        }
    }
}
