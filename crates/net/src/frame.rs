//! The wire vocabulary: every message the serving protocol can exchange.
//!
//! Frames travel as little-endian length-prefixed byte strings in the
//! same style as `hf_fedsim::transport` (and through the same
//! [`hf_fedsim::wire`] primitives):
//!
//! ```text
//! len      u32   payload length (not counting this prefix), ≤ MAX_FRAME_LEN
//! payload:
//!   version  u8   FRAME_VERSION (1)
//!   kind     u8   frame discriminant
//!   body     ...  kind-specific fields, little-endian, floats as IEEE-754 bits
//! ```
//!
//! Decoding is strict: unknown versions, unknown kinds, out-of-range
//! enums, non-canonical booleans, truncated bodies, and trailing bytes
//! are all **typed** [`FrameError`]s — never a panic, and never a
//! silently-accepted frame. Because every accepted encoding is
//! canonical, `decode(encode(f)) == f` and `encode(decode(b)) == b`
//! hold for every frame; the byte-mutation property test leans on the
//! second identity.
//!
//! The request body carries the *wire-expressible subset* of
//! [`RecommendRequest`]: explicit exclusions, seen-masking, and the
//! popularity floor. Closure filters ([`RecommendRequest::filter`]) have
//! no wire form; [`WireRequest::try_from_request`] rejects them.

use hf_dataset::Tier;
use hf_fedsim::wire::{Reader, Writer};
use hf_serve::{RecommendRequest, RecommendResponse, ScoredItem};
use std::io::{self, Read, Write};

/// Protocol version this module writes and the only one it reads.
pub const FRAME_VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB). A length prefix beyond this
/// is rejected before any allocation — a corrupt or hostile prefix must
/// not turn into a multi-gigabyte `Vec`.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Upper bound on an error-frame message (the only variable-length text
/// on the wire).
const MAX_ERROR_MESSAGE: usize = 64 << 10;

/// Frame discriminants (payload byte 1).
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_PING: u8 = 4;
const KIND_PONG: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;
const KIND_RELOAD: u8 = 7;
const KIND_RELOADED: u8 = 8;

/// A typed decode failure. Every malformed buffer maps to one of these;
/// decoding never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended in the middle of a field.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Length the prefix claimed.
        len: u64,
    },
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion {
        /// Version byte found on the wire.
        got: u8,
    },
    /// The kind byte names no known frame.
    BadKind {
        /// Kind byte found on the wire.
        got: u8,
    },
    /// A field holds an out-of-range or non-canonical value.
    BadField {
        /// Frame being decoded.
        frame: &'static str,
        /// Offending field.
        field: &'static str,
    },
    /// The body decoded but bytes were left over.
    Trailing {
        /// Frame being decoded.
        frame: &'static str,
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated mid-field"),
            FrameError::Oversized { len } => {
                write!(f, "frame claims {len} bytes (max {MAX_FRAME_LEN})")
            }
            FrameError::BadVersion { got } => {
                write!(f, "frame version {got} (this peer speaks {FRAME_VERSION})")
            }
            FrameError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            FrameError::BadField { frame, field } => {
                write!(f, "{frame} frame has a malformed `{field}` field")
            }
            FrameError::Trailing { frame, extra } => {
                write!(f, "{frame} frame has {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Machine-readable cause carried by an [`Error`](Frame::Error) frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer sent a frame this server could not decode.
    Malformed,
    /// The request was well-formed but not servable (e.g. an unexpected
    /// frame kind in this direction).
    Unsupported,
    /// The server is shutting down and will not serve this request.
    ShuttingDown,
    /// The server failed internally while serving the request.
    Internal,
}

impl ErrorCode {
    fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_wire(code: u16) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Unsupported),
            3 => Some(ErrorCode::ShuttingDown),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// The wire-expressible subset of a [`RecommendRequest`], tagged with a
/// correlation id so pipelined responses can be matched to requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRequest {
    /// Correlation id, echoed on the matching response or error frame.
    pub id: u64,
    /// User id (ids beyond the artifact's user count cold-start).
    pub user: u64,
    /// Ranking cutoff; `0` means the server's default `k`.
    pub k: u32,
    /// Exclude the user's training history from candidates.
    pub exclude_seen: bool,
    /// Drop items with fewer training interactions than this.
    pub min_popularity: u32,
    /// Explicit item exclusions.
    pub exclude: Vec<u32>,
}

impl WireRequest {
    /// A default query for one user, mirroring [`RecommendRequest::new`].
    pub fn new(id: u64, user: u64) -> Self {
        Self {
            id,
            user,
            k: 0,
            exclude_seen: true,
            min_popularity: 0,
            exclude: Vec::new(),
        }
    }

    /// Converts a library request into its wire form, or reports why it
    /// cannot travel: closure filters are not wire-expressible.
    pub fn try_from_request(id: u64, request: &RecommendRequest) -> Result<Self, FrameError> {
        if request.filter.is_some() {
            return Err(FrameError::BadField {
                frame: "request",
                field: "filter",
            });
        }
        Ok(Self {
            id,
            user: request.user as u64,
            k: request.k as u32,
            exclude_seen: request.exclude_seen,
            min_popularity: request.min_popularity,
            exclude: request.exclude.clone(),
        })
    }

    /// Rebuilds the library request this wire form denotes.
    pub fn to_request(&self) -> RecommendRequest {
        RecommendRequest {
            user: self.user as usize,
            k: self.k as usize,
            exclude: self.exclude.clone(),
            exclude_seen: self.exclude_seen,
            min_popularity: self.min_popularity,
            filter: None,
        }
    }
}

/// A served ranking in wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// The queried user id.
    pub user: u64,
    /// Artifact version that produced this ranking — the attribution
    /// key under hot swaps (every response names exactly one artifact
    /// generation).
    pub version: u64,
    /// Tier whose model produced the ranking.
    pub tier: Tier,
    /// `true` when the cold-start fallback path served the user.
    pub cold_start: bool,
    /// Ranked items, best first (scores travel as IEEE-754 bits, so a
    /// round trip is bit-identical).
    pub items: Vec<ScoredItem>,
}

impl WireResponse {
    /// Wraps a recommender response for the wire, stamped with the
    /// artifact version that served it.
    pub fn from_response(id: u64, version: u64, response: &RecommendResponse) -> Self {
        Self {
            id,
            user: response.user as u64,
            version,
            tier: response.tier,
            cold_start: response.cold_start,
            items: response.items.clone(),
        }
    }

    /// Unwraps into the library response type.
    pub fn into_response(self) -> RecommendResponse {
        RecommendResponse {
            user: self.user as usize,
            tier: self.tier,
            cold_start: self.cold_start,
            items: self.items,
        }
    }
}

/// A typed error answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Correlation id of the offending request (`0` when the failure was
    /// not attributable to a decoded request).
    pub id: u64,
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Every message the protocol can exchange.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: rank items for one user.
    Request(WireRequest),
    /// Server → client: the ranking for the request with the same id.
    Response(WireResponse),
    /// Server → client: a typed failure.
    Error(WireError),
    /// Liveness probe carrying an opaque token.
    Ping(u64),
    /// Echo of a [`Frame::Ping`] token.
    Pong(u64),
    /// Client → server: drain in-flight requests and stop serving.
    Shutdown,
    /// Client → server: hot-swap to the freshest artifact on disk
    /// without restarting. In-flight batches finish on the old artifact.
    Reload,
    /// Server → client: the swap completed; responses stamped with this
    /// artifact version (or later) come from the fresh artifact.
    Reloaded(u64),
}

impl Frame {
    /// Name used in error diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Frame::Request(_) => "request",
            Frame::Response(_) => "response",
            Frame::Error(_) => "error",
            Frame::Ping(_) => "ping",
            Frame::Pong(_) => "pong",
            Frame::Shutdown => "shutdown",
            Frame::Reload => "reload",
            Frame::Reloaded(_) => "reloaded",
        }
    }

    /// Encodes the frame payload (version, kind, body — without the
    /// outer length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32);
        w.put_u8(FRAME_VERSION);
        match self {
            Frame::Request(q) => {
                w.put_u8(KIND_REQUEST);
                w.put_u64_le(q.id);
                w.put_u64_le(q.user);
                w.put_u32_le(q.k);
                w.put_u8(q.exclude_seen as u8);
                w.put_u32_le(q.min_popularity);
                w.put_u32_le(q.exclude.len() as u32);
                for &item in &q.exclude {
                    w.put_u32_le(item);
                }
            }
            Frame::Response(r) => {
                w.put_u8(KIND_RESPONSE);
                w.put_u64_le(r.id);
                w.put_u64_le(r.user);
                w.put_u64_le(r.version);
                w.put_u8(r.tier.index() as u8);
                w.put_u8(r.cold_start as u8);
                w.put_u32_le(r.items.len() as u32);
                for item in &r.items {
                    w.put_u32_le(item.item);
                    w.put_f32_le(item.score);
                }
            }
            Frame::Error(e) => {
                w.put_u8(KIND_ERROR);
                w.put_u64_le(e.id);
                w.put_u16_le(e.code.to_wire());
                let msg = e.message.as_bytes();
                let len = msg.len().min(MAX_ERROR_MESSAGE);
                w.put_u32_le(len as u32);
                w.put_bytes(&msg[..len]);
            }
            Frame::Ping(token) => {
                w.put_u8(KIND_PING);
                w.put_u64_le(*token);
            }
            Frame::Pong(token) => {
                w.put_u8(KIND_PONG);
                w.put_u64_le(*token);
            }
            Frame::Shutdown => {
                w.put_u8(KIND_SHUTDOWN);
            }
            Frame::Reload => {
                w.put_u8(KIND_RELOAD);
            }
            Frame::Reloaded(version) => {
                w.put_u8(KIND_RELOADED);
                w.put_u64_le(*version);
            }
        }
        w.into_vec()
    }

    /// Decodes a frame payload. Strict: every byte must be consumed and
    /// every field must be canonical.
    pub fn decode(payload: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(payload);
        let version = r.get_u8().ok_or(FrameError::Truncated)?;
        if version != FRAME_VERSION {
            return Err(FrameError::BadVersion { got: version });
        }
        let kind = r.get_u8().ok_or(FrameError::Truncated)?;
        let frame = match kind {
            KIND_REQUEST => {
                let id = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let user = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let k = r.get_u32_le().ok_or(FrameError::Truncated)?;
                let exclude_seen = decode_bool(&mut r, "request", "exclude_seen")?;
                let min_popularity = r.get_u32_le().ok_or(FrameError::Truncated)?;
                let n = r.get_u32_le().ok_or(FrameError::Truncated)? as usize;
                let exclude = r.get_u32_vec(n).ok_or(FrameError::Truncated)?;
                Frame::Request(WireRequest {
                    id,
                    user,
                    k,
                    exclude_seen,
                    min_popularity,
                    exclude,
                })
            }
            KIND_RESPONSE => {
                let id = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let user = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let version = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let tier_idx = r.get_u8().ok_or(FrameError::Truncated)? as usize;
                let tier = *Tier::ALL.get(tier_idx).ok_or(FrameError::BadField {
                    frame: "response",
                    field: "tier",
                })?;
                let cold_start = decode_bool(&mut r, "response", "cold_start")?;
                let n = r.get_u32_le().ok_or(FrameError::Truncated)? as usize;
                if r.remaining() < n.checked_mul(8).ok_or(FrameError::Truncated)? {
                    return Err(FrameError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let item = r.get_u32_le().ok_or(FrameError::Truncated)?;
                    let score = r.get_f32_le().ok_or(FrameError::Truncated)?;
                    items.push(ScoredItem { item, score });
                }
                Frame::Response(WireResponse {
                    id,
                    user,
                    version,
                    tier,
                    cold_start,
                    items,
                })
            }
            KIND_ERROR => {
                let id = r.get_u64_le().ok_or(FrameError::Truncated)?;
                let code = r.get_u16_le().ok_or(FrameError::Truncated)?;
                let code = ErrorCode::from_wire(code).ok_or(FrameError::BadField {
                    frame: "error",
                    field: "code",
                })?;
                let len = r.get_u32_le().ok_or(FrameError::Truncated)? as usize;
                if len > MAX_ERROR_MESSAGE {
                    return Err(FrameError::BadField {
                        frame: "error",
                        field: "message",
                    });
                }
                let bytes = r.get_bytes(len).ok_or(FrameError::Truncated)?;
                let message =
                    String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadField {
                        frame: "error",
                        field: "message",
                    })?;
                Frame::Error(WireError { id, code, message })
            }
            KIND_PING => Frame::Ping(r.get_u64_le().ok_or(FrameError::Truncated)?),
            KIND_PONG => Frame::Pong(r.get_u64_le().ok_or(FrameError::Truncated)?),
            KIND_SHUTDOWN => Frame::Shutdown,
            KIND_RELOAD => Frame::Reload,
            KIND_RELOADED => Frame::Reloaded(r.get_u64_le().ok_or(FrameError::Truncated)?),
            other => return Err(FrameError::BadKind { got: other }),
        };
        if r.remaining() != 0 {
            return Err(FrameError::Trailing {
                frame: frame.name(),
                extra: r.remaining(),
            });
        }
        Ok(frame)
    }

    /// Writes the frame (length prefix + payload) to a stream.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let payload = self.encode();
        debug_assert!(payload.len() <= MAX_FRAME_LEN);
        out.write_all(&(payload.len() as u32).to_le_bytes())?;
        out.write_all(&payload)?;
        out.flush()
    }

    /// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF
    /// at a frame boundary; a mid-frame EOF is an
    /// [`UnexpectedEof`](io::ErrorKind::UnexpectedEof) I/O error, and a
    /// hostile length prefix fails as [`FrameError::Oversized`] *before*
    /// any allocation.
    pub fn read_from<R: Read>(input: &mut R) -> Result<Option<Frame>, ReadFrameError> {
        let mut prefix = [0u8; 4];
        match read_exact_or_eof(input, &mut prefix)? {
            false => return Ok(None),
            true => {}
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ReadFrameError::Frame(FrameError::Oversized {
                len: len as u64,
            }));
        }
        let mut payload = vec![0u8; len];
        input.read_exact(&mut payload).map_err(ReadFrameError::Io)?;
        Frame::decode(&payload)
            .map(Some)
            .map_err(ReadFrameError::Frame)
    }
}

/// Failure modes of [`Frame::read_from`]: the transport broke, or the
/// bytes arrived but did not decode.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The bytes arrived but were not a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "frame read failed: {e}"),
            ReadFrameError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

/// Fills `buf` from the stream. `Ok(false)` when the stream was already
/// at EOF (zero bytes read); mid-buffer EOF is an error.
fn read_exact_or_eof<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<bool, ReadFrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ReadFrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadFrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Booleans are canonical on the wire: only `0` and `1` decode.
fn decode_bool(
    r: &mut Reader<'_>,
    frame: &'static str,
    field: &'static str,
) -> Result<bool, FrameError> {
    match r.get_u8().ok_or(FrameError::Truncated)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(FrameError::BadField { frame, field }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One frame of every kind, with non-trivial field values.
    pub(crate) fn specimen_frames() -> Vec<Frame> {
        vec![
            Frame::Request(WireRequest {
                id: 42,
                user: 7,
                k: 25,
                exclude_seen: false,
                min_popularity: 3,
                exclude: vec![5, 1, 9],
            }),
            Frame::Request(WireRequest::new(u64::MAX, 0)),
            Frame::Response(WireResponse {
                id: 42,
                user: 7,
                version: 3,
                tier: Tier::Large,
                cold_start: true,
                items: vec![
                    ScoredItem {
                        item: 3,
                        score: 1.25,
                    },
                    ScoredItem {
                        item: 11,
                        score: -0.0,
                    },
                ],
            }),
            Frame::Error(WireError {
                id: 9,
                code: ErrorCode::Malformed,
                message: "truncated body".to_string(),
            }),
            Frame::Ping(0xDEAD_BEEF),
            Frame::Pong(0xDEAD_BEEF),
            Frame::Shutdown,
            Frame::Reload,
            Frame::Reloaded(u64::MAX),
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for frame in specimen_frames() {
            let payload = frame.encode();
            let back = Frame::decode(&payload).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(frame, back);
            // Canonical: re-encoding the decode reproduces the bytes.
            assert_eq!(payload, back.encode());
        }
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let frames = specimen_frames();
        let mut buf = Vec::new();
        for frame in &frames {
            frame.write_to(&mut buf).unwrap();
        }
        let mut cursor = &buf[..];
        for frame in &frames {
            let got = Frame::read_from(&mut cursor).unwrap().expect("a frame");
            assert_eq!(*frame, got);
        }
        assert!(Frame::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        match Frame::read_from(&mut &buf[..]) {
            Err(ReadFrameError::Frame(FrameError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as u64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_kind_and_fields_are_typed() {
        let mut payload = Frame::Shutdown.encode();
        payload[0] = 99;
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::BadVersion { got: 99 })
        );

        let mut payload = Frame::Shutdown.encode();
        payload[1] = 200;
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::BadKind { got: 200 })
        );

        // Non-canonical boolean.
        let mut payload = Frame::Request(WireRequest::new(1, 2)).encode();
        payload[22] = 7; // exclude_seen byte: 1 ver + 1 kind + 8 id + 8 user + 4 k
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::BadField {
                frame: "request",
                field: "exclude_seen"
            })
        );

        // Out-of-range tier.
        let mut payload = Frame::Response(WireResponse {
            id: 1,
            user: 2,
            version: 1,
            tier: Tier::Small,
            cold_start: false,
            items: vec![],
        })
        .encode();
        payload[26] = 3; // tier byte: 1 ver + 1 kind + 8 id + 8 user + 8 version
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::BadField {
                frame: "response",
                field: "tier"
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for frame in specimen_frames() {
            let mut payload = frame.encode();
            payload.push(0);
            assert!(
                matches!(Frame::decode(&payload), Err(FrameError::Trailing { .. })),
                "{frame:?} must reject trailing bytes"
            );
        }
    }

    #[test]
    fn closure_filters_are_not_wire_expressible() {
        let request = RecommendRequest::new(3).with_filter(|item| item % 2 == 0);
        assert_eq!(
            WireRequest::try_from_request(1, &request),
            Err(FrameError::BadField {
                frame: "request",
                field: "filter"
            })
        );
        // The expressible subset converts and round-trips.
        let request = RecommendRequest::new(3)
            .with_k(5)
            .exclude([4, 2])
            .with_min_popularity(2);
        let wire = WireRequest::try_from_request(1, &request).unwrap();
        let back = wire.to_request();
        assert_eq!(back.user, request.user);
        assert_eq!(back.k, request.k);
        assert_eq!(back.exclude, request.exclude);
        assert_eq!(back.exclude_seen, request.exclude_seen);
        assert_eq!(back.min_popularity, request.min_popularity);
    }
}
