//! # hf_net — the network serving stack
//!
//! Graduates the in-process [`hf_serve::Recommender`] into a long-lived
//! TCP service, std-only like the rest of the workspace (`std::net` +
//! threads, no async runtime, no external crates):
//!
//! * [`frame`] — the wire vocabulary: little-endian length-prefixed
//!   frames (versioned header, typed [`FrameError`]s) carrying the
//!   wire-expressible request subset — exclusions, seen-masking,
//!   popularity floor; closure filters do not travel.
//! * `batcher` *(internal)* — the bounded in-flight queue whose pop
//!   side is the **micro-batcher**: requests arriving within a
//!   time/size window coalesce into single `recommend_batch` calls, and
//!   a full queue blocks connection readers (backpressure, not
//!   shedding).
//! * [`server`] — the threaded accept loop: per-connection reader
//!   threads, one batcher thread, graceful drain-then-stop shutdown on a
//!   control signal (in-process [`ServerHandle::shutdown`] or an on-wire
//!   [`Frame::Shutdown`]).
//! * [`client`] — a small blocking request/response client.
//! * [`loadgen`] — an open-loop Poisson load generator (deterministic
//!   RNG schedule, concurrent connections, mergeable log-bucketed
//!   latency histograms) with a replay verifier that demands served
//!   rankings be **bit-identical** to in-process `recommend_batch`.
//!
//! Two binaries ship with the crate: `hf-serve` (load an artifact file,
//! serve it) and `hf-loadgen` (drive an address, report p50/p95/p99,
//! optionally verify bit-identity against the same artifact).
//!
//! The serving determinism contract extends across the socket: frames
//! carry scores as raw IEEE-754 bits and `recommend_batch` is
//! bit-identical across batch compositions, so micro-batching — however
//! requests happen to coalesce under load — never changes an answer.

#![warn(missing_docs)]

mod batcher;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;

pub use client::Client;
pub use frame::{
    ErrorCode, Frame, FrameError, ReadFrameError, WireError, WireRequest, WireResponse,
    FRAME_VERSION, MAX_FRAME_LEN,
};
pub use loadgen::{run as run_loadgen, verify_exchanges, LoadGen, LoadReport};
pub use server::{serve, serve_slot, ReloadFn, ServerConfig, ServerHandle};

/// Failure modes of the networking layer.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// Bytes arrived but did not decode as a frame.
    Frame(FrameError),
    /// The peer answered with a typed error frame.
    Remote {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail from the peer.
        message: String,
    },
    /// The peer sent a well-formed frame that violates the protocol
    /// (e.g. an unsolicited response).
    Protocol(String),
    /// The request carries state with no wire form (a closure filter).
    NotWireExpressible,
    /// A configuration field is out of range.
    Config(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::NotWireExpressible => {
                write!(f, "closure filters are not wire-expressible")
            }
            NetError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
