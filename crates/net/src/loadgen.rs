//! Open-loop load generation against a serving address.
//!
//! A closed-loop driver (send, wait, send) measures only its own
//! willingness to wait: under a slow server it slows down with the
//! server, flattering the tail. This generator is **open-loop**: each
//! connection draws Poisson-process arrival times up front — exponential
//! inter-arrivals from the in-repo deterministic RNG — and a sender
//! thread writes each request at its scheduled instant whether or not
//! earlier answers have come back. A receiver thread per connection
//! matches responses to send timestamps by correlation id and records
//! **socket-to-socket** latency (write instant → response decoded) into
//! a per-connection [`LatencyHistogram`]; per-connection histograms
//! merge losslessly into the report.
//!
//! Everything is seeded: the same `(seed, connections, requests)` drive
//! the same users, filters, and schedule, which is what lets the
//! `--verify` path replay the exact request stream through an in-process
//! `Recommender` and demand bit-identical answers.

use crate::frame::{Frame, ReadFrameError, WireRequest, WireResponse};
use crate::NetError;
use hf_metrics::LatencyHistogram;
use hf_tensor::rng::{substream, Rng, SeedStream};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Purpose key for the load generator's RNG streams.
const LOADGEN_STREAM: SeedStream = SeedStream::Custom(0x4c4f_4144); // "LOAD"

/// Configuration for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadGen {
    /// Concurrent connections (each with its own sender and receiver
    /// thread).
    pub connections: usize,
    /// Target *aggregate* arrival rate in requests/second, split evenly
    /// across connections. `f64::INFINITY` sends back-to-back.
    pub target_qps: f64,
    /// Total requests across all connections.
    pub requests: usize,
    /// Hard stop for senders whose schedule has fallen hopelessly behind
    /// and for receivers waiting on a stuck server.
    pub max_duration: Duration,
    /// RNG seed; the whole run (users, filters, schedule) derives from
    /// it deterministically.
    pub seed: u64,
    /// User ids are sampled uniformly from `0..users`. Pass a value
    /// slightly above the artifact's user count to exercise cold-start
    /// ids.
    pub users: u64,
    /// Ranking cutoff on every request (`0` = server default).
    pub k: u32,
    /// Capture every `(request, response)` exchange for verification.
    /// Costs memory proportional to `requests`.
    pub capture: bool,
}

impl Default for LoadGen {
    fn default() -> Self {
        Self {
            connections: 1,
            target_qps: 1000.0,
            requests: 1000,
            max_duration: Duration::from_secs(60),
            seed: 7,
            users: 1000,
            k: 0,
            capture: false,
        }
    }
}

/// The outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to sockets.
    pub sent: u64,
    /// Responses received and matched.
    pub received: u64,
    /// Typed error frames received.
    pub remote_errors: u64,
    /// Wall time from first send to last receive.
    pub elapsed: Duration,
    /// Socket-to-socket latency distribution across all connections.
    pub latency: LatencyHistogram,
    /// Captured exchanges (when [`LoadGen::capture`] was on), ordered by
    /// correlation id.
    pub exchanges: Vec<(WireRequest, WireResponse)>,
}

impl LoadReport {
    /// Achieved throughput in responses/second.
    pub fn achieved_qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.received as f64 / secs
        } else {
            0.0
        }
    }
}

/// Per-connection shared state between its sender and receiver threads.
struct ConnState {
    /// Send instants by correlation id, removed as responses match.
    pending: Mutex<HashMap<u64, Instant>>,
    /// Set once the sender has written its last request.
    sender_done: AtomicBool,
}

/// Generates one request stream element. Most requests are plain top-K
/// queries; a deterministic minority exercises the wire-expressible
/// filters (exclusions, seen-masking off, popularity floor) so a
/// verification run covers the whole request vocabulary.
fn draw_request(rng: &mut impl Rng, id: u64, users: u64, k: u32) -> WireRequest {
    let mut request = WireRequest::new(id, rng.gen_range(0..users.max(1)));
    request.k = k;
    match rng.gen_range(0..10u32) {
        0 => {
            let n = rng.gen_range(1..4usize);
            request.exclude = (0..n).map(|_| rng.gen_range(0..256u32)).collect();
        }
        1 => request.exclude_seen = false,
        2 => request.min_popularity = rng.gen_range(1..3u32),
        _ => {}
    }
    request
}

/// Runs an open-loop load generation against `addr`.
pub fn run(addr: impl ToSocketAddrs, config: &LoadGen) -> Result<LoadReport, NetError> {
    if config.connections == 0 {
        return Err(NetError::Config("connections must be at least 1"));
    }
    if config.requests == 0 {
        return Err(NetError::Config("requests must be at least 1"));
    }
    if !(config.target_qps > 0.0) {
        return Err(NetError::Config("target_qps must be positive"));
    }

    // Connect everything first so the run starts from a level field.
    let mut streams = Vec::with_capacity(config.connections);
    for _ in 0..config.connections {
        let stream = addr
            .to_socket_addrs()
            .map_err(NetError::Io)?
            .next()
            .ok_or(NetError::Config("address resolved to nothing"))
            .and_then(|a| TcpStream::connect(a).map_err(NetError::Io))?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .map_err(NetError::Io)?;
        streams.push(stream);
    }

    let per_conn_rate = config.target_qps / config.connections as f64;
    let base = config.requests / config.connections;
    let extra = config.requests % config.connections;

    let sent = Arc::new(AtomicU64::new(0));
    let received = Arc::new(AtomicU64::new(0));
    let remote_errors = Arc::new(AtomicU64::new(0));
    let captured: Arc<Mutex<Vec<(WireRequest, WireResponse)>>> = Arc::new(Mutex::new(Vec::new()));
    let sent_requests: Arc<Mutex<HashMap<u64, WireRequest>>> = Arc::new(Mutex::new(HashMap::new()));

    let start = Instant::now();
    let deadline = start + config.max_duration;
    let mut receivers = Vec::with_capacity(config.connections);
    let mut senders = Vec::with_capacity(config.connections);

    for (conn_idx, stream) in streams.into_iter().enumerate() {
        // Correlation ids are globally unique: connection-striped.
        let conn_requests = base + usize::from(conn_idx < extra);
        let state = Arc::new(ConnState {
            pending: Mutex::new(HashMap::new()),
            sender_done: AtomicBool::new(false),
        });
        let read_half = stream.try_clone().map_err(NetError::Io)?;

        let receiver = {
            let state = Arc::clone(&state);
            let received = Arc::clone(&received);
            let remote_errors = Arc::clone(&remote_errors);
            let captured = Arc::clone(&captured);
            let sent_requests = Arc::clone(&sent_requests);
            let capture = config.capture;
            std::thread::spawn(move || {
                let mut hist = LatencyHistogram::new();
                let mut read_half = read_half;
                loop {
                    match Frame::read_from(&mut read_half) {
                        Ok(Some(Frame::Response(response))) => {
                            let sent_at = state
                                .pending
                                .lock()
                                .expect("pending poisoned")
                                .remove(&response.id);
                            if let Some(at) = sent_at {
                                hist.record(at.elapsed());
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            if capture {
                                let request = sent_requests
                                    .lock()
                                    .expect("capture poisoned")
                                    .remove(&response.id);
                                if let Some(request) = request {
                                    captured
                                        .lock()
                                        .expect("capture poisoned")
                                        .push((request, response));
                                }
                            }
                        }
                        Ok(Some(Frame::Error(e))) => {
                            state
                                .pending
                                .lock()
                                .expect("pending poisoned")
                                .remove(&e.id);
                            remote_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Some(_)) => {}  // pongs etc.: not ours to count
                        Ok(None) => break, // server closed
                        Err(ReadFrameError::Io(e))
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            // Read timeout tick: are we done?
                            let done = state.sender_done.load(Ordering::SeqCst)
                                && state.pending.lock().expect("pending poisoned").is_empty();
                            if done || Instant::now() >= deadline {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                hist
            })
        };
        receivers.push(receiver);

        let sender = {
            let state = Arc::clone(&state);
            let sent = Arc::clone(&sent);
            let sent_requests = Arc::clone(&sent_requests);
            let capture = config.capture;
            let users = config.users;
            let k = config.k;
            let seed = config.seed;
            let id_base = (conn_idx as u64) << 32;
            std::thread::spawn(move || {
                let mut stream = stream;
                let mut rng = substream(seed, LOADGEN_STREAM, conn_idx as u64);
                let mut at = 0.0f64; // scheduled offset from run start, seconds
                for i in 0..conn_requests {
                    // Exponential inter-arrival → Poisson arrivals.
                    if per_conn_rate.is_finite() {
                        let u: f64 = rng.gen();
                        at += -(1.0 - u).ln() / per_conn_rate;
                    }
                    let request = draw_request(&mut rng, id_base | (i as u64 + 1), users, k);
                    let target = start + Duration::from_secs_f64(at);
                    if let Some(wait) = target.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    if Instant::now() >= deadline {
                        break; // schedule is hopelessly behind
                    }
                    if capture {
                        sent_requests
                            .lock()
                            .expect("capture poisoned")
                            .insert(request.id, request.clone());
                    }
                    // Timestamp *after* any scheduling sleep, right at
                    // the write: the histogram measures socket time, not
                    // generator queueing.
                    state
                        .pending
                        .lock()
                        .expect("pending poisoned")
                        .insert(request.id, Instant::now());
                    if Frame::Request(request).write_to(&mut stream).is_err() {
                        break;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                }
                state.sender_done.store(true, Ordering::SeqCst);
                // Half-close: tells the server this connection will send
                // nothing more, while responses keep flowing back.
                let _ = stream.shutdown(Shutdown::Write);
            })
        };
        senders.push(sender);
    }

    for sender in senders {
        sender.join().expect("sender thread panicked");
    }
    let mut latency = LatencyHistogram::new();
    for receiver in receivers {
        let hist = receiver.join().expect("receiver thread panicked");
        latency.merge(&hist);
    }
    let elapsed = start.elapsed();

    let mut exchanges = std::mem::take(&mut *captured.lock().expect("capture poisoned"));
    exchanges.sort_by_key(|(request, _)| request.id);
    Ok(LoadReport {
        sent: sent.load(Ordering::Relaxed),
        received: received.load(Ordering::Relaxed),
        remote_errors: remote_errors.load(Ordering::Relaxed),
        elapsed,
        latency,
        exchanges,
    })
}

/// Replays captured exchanges through an in-process [`Recommender`] and
/// checks every served ranking is **bit-identical** (compared as encoded
/// response frames, so item ids, order, and score bits all must match).
/// Returns the number of verified exchanges.
pub fn verify_exchanges(
    recommender: &hf_serve::Recommender,
    exchanges: &[(WireRequest, WireResponse)],
) -> Result<usize, String> {
    let requests: Vec<_> = exchanges.iter().map(|(q, _)| q.to_request()).collect();
    let expected = recommender.recommend_batch(&requests);
    for ((wire_request, served), expect) in exchanges.iter().zip(&expected) {
        // Adopt the served artifact-version stamp: verification is about
        // the ranking bits, whichever artifact generation produced them.
        let expect_wire = WireResponse::from_response(wire_request.id, served.version, expect);
        let served_bytes = Frame::Response(served.clone()).encode();
        let expect_bytes = Frame::Response(expect_wire).encode();
        if served_bytes != expect_bytes {
            return Err(format!(
                "request {} (user {}) served a different ranking than in-process \
                 recommend_batch",
                wire_request.id, wire_request.user
            ));
        }
    }
    Ok(exchanges.len())
}
