//! The threaded TCP serving loop.
//!
//! [`serve`] binds a `std::net::TcpListener` and returns a
//! [`ServerHandle`]; the server owns three kinds of threads:
//!
//! * **accept loop** — one thread accepting connections until shutdown;
//! * **connection readers** — one thread per connection decoding frames:
//!   requests are pushed into the bounded job queue (blocking when full,
//!   which is the backpressure contract — see [`crate::batcher`]), pings
//!   are answered inline, a shutdown frame triggers the graceful stop,
//!   and a malformed-but-framed payload is answered with a typed error
//!   frame *without* closing the connection (frames are length-delimited,
//!   so the stream can resynchronise);
//! * **micro-batcher** — one thread popping coalesced batches and
//!   answering them through a single `Recommender::recommend_batch` call
//!   each; answers are written back under each connection's write lock.
//!
//! The recommender lives in an [`ArtifactSlot`], so the model can be
//! **hot-swapped under live traffic**: the batcher loads the
//! `(version, recommender)` pair once per popped batch, meaning a batch
//! already in flight finishes on the artifact it started with while the
//! next batch picks up the fresh one — no request is dropped, delayed,
//! or split across artifacts, and every response is stamped with the
//! version that served it. [`serve_slot`] additionally accepts a reload
//! callback; a client's `Reload` frame invokes it (on that connection's
//! reader thread, never blocking the batcher), swaps the result into
//! the slot, and answers `Reloaded(version)`.
//!
//! Graceful shutdown (via [`ServerHandle::shutdown`] or a client's
//! `Shutdown` frame) stops accepting, lets readers push what they have
//! already decoded, drains the queue to completion — every accepted
//! request is answered — then closes the sockets and joins every thread.

use crate::batcher::Queue;
use crate::frame::{ErrorCode, Frame, ReadFrameError, WireError, WireRequest, WireResponse};
use crate::NetError;
use hf_serve::{ArtifactSlot, Recommender};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Coalescing window measured from the first request of a batch
    /// (default 500 µs). Zero serves whatever is already queued without
    /// ever delaying an isolated request.
    pub batch_window: Duration,
    /// Largest micro-batch handed to one `recommend_batch` call
    /// (default 64).
    pub batch_max: usize,
    /// Bound on queued-but-unserved requests (default 1024). When full,
    /// connection readers block — backpressure, not load shedding.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_window: Duration::from_micros(500),
            batch_max: 64,
            queue_capacity: 1024,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), NetError> {
        if self.batch_max == 0 {
            return Err(NetError::Config("batch_max must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(NetError::Config("queue_capacity must be at least 1"));
        }
        Ok(())
    }
}

/// One accepted connection: the stream (shared by its reader thread and
/// every writer) plus write serialisation.
struct Conn {
    stream: Mutex<TcpStream>,
    /// The raw handle readers use to `Shutdown` the socket on server
    /// stop (taking the `stream` lock could deadlock with a blocked
    /// writer).
    raw: TcpStream,
}

impl Conn {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        let mut stream = self.stream.lock().expect("connection poisoned");
        frame.write_to(&mut *stream)
    }
}

/// One queued unit of work: a decoded request plus where to answer it.
struct Job {
    conn: Arc<Conn>,
    request: WireRequest,
}

/// Builds a fresh recommender on demand — the `Reload` frame's swap
/// source (typically: re-read the newest artifact file from disk).
pub type ReloadFn = Box<dyn Fn() -> Result<Recommender, String> + Send + Sync>;

struct Shared {
    queue: Queue<Job>,
    stopping: AtomicBool,
    addr: SocketAddr,
    /// Live connections, registered by the accept loop so shutdown can
    /// unblock their readers.
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    /// Reader threads still running (joined at shutdown).
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// The hot-swappable serving artifact.
    slot: ArtifactSlot,
    /// How to rebuild the recommender on a `Reload` frame (`None` means
    /// the frame is answered `Unsupported`).
    reload: Option<ReloadFn>,
}

impl Shared {
    /// Flips into shutdown mode: stop accepting, stop reading, let the
    /// batcher drain. Idempotent.
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop (it is parked in `accept`).
        let _ = TcpStream::connect(self.addr);
        // Unblock readers parked in `read` — shut the sockets down for
        // reading only, so queued responses can still be written.
        let conns = self.conns.lock().expect("connection table poisoned");
        for conn in conns.values() {
            let _ = conn.raw.shutdown(Shutdown::Read);
        }
    }
}

/// A running server. Dropping the handle **aborts** the process threads
/// only at process exit; call [`ServerHandle::shutdown`] (or send a
/// `Shutdown` frame) for a graceful stop, or [`ServerHandle::wait`] to
/// park until a client stops the server remotely.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful when serving on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a graceful stop and blocks until every accepted request
    /// has been answered and every thread has exited.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Parks until the server stops (e.g. a client sent a `Shutdown`
    /// frame), then completes the same drain-and-join as
    /// [`ServerHandle::shutdown`].
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers poisoned"));
        for h in readers {
            let _ = h.join();
        }
        // Close any write halves still open.
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned"));
        for (_, conn) in conns {
            let _ = conn.raw.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }
}

/// Binds `addr` and serves `recommender` until shutdown. The artifact
/// is wrapped as version 1 of a private slot; swaps require
/// [`serve_slot`].
pub fn serve(
    recommender: Recommender,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle, NetError> {
    serve_slot(ArtifactSlot::new(recommender), None, addr, config)
}

/// Binds `addr` and serves whatever recommender `slot` currently holds,
/// picking up swaps batch-by-batch. With `reload` present, a client's
/// `Reload` frame rebuilds the recommender through it and swaps the
/// result in without restarting the server.
pub fn serve_slot(
    slot: ArtifactSlot,
    reload: Option<ReloadFn>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle, NetError> {
    config.validate()?;
    let listener = TcpListener::bind(addr).map_err(NetError::Io)?;
    let addr = listener.local_addr().map_err(NetError::Io)?;
    let shared = Arc::new(Shared {
        queue: Queue::new(config.queue_capacity),
        stopping: AtomicBool::new(false),
        addr,
        conns: Mutex::new(HashMap::new()),
        readers: Mutex::new(Vec::new()),
        slot,
        reload,
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("hf-net-accept".into())
            .spawn(move || accept_loop(listener, shared))
            .map_err(NetError::Io)?
    };

    let batcher = {
        let shared = Arc::clone(&shared);
        let window = config.batch_window;
        let max = config.batch_max;
        std::thread::Builder::new()
            .name("hf-net-batcher".into())
            .spawn(move || batcher_loop(shared, max, window))
            .map_err(NetError::Io)?
    };

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let next_conn = AtomicU64::new(0);
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.stopping.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // The wake-up connection from begin_shutdown lands here too.
            break;
        }
        let _ = stream.set_nodelay(true);
        // A client that stops draining its socket must not wedge the
        // batcher behind its write lock forever.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let raw = match stream.try_clone() {
            Ok(raw) => raw,
            Err(_) => continue,
        };
        let conn = Arc::new(Conn {
            stream: Mutex::new(stream),
            raw,
        });
        let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
        shared
            .conns
            .lock()
            .expect("connection table poisoned")
            .insert(conn_id, Arc::clone(&conn));
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("hf-net-conn-{conn_id}"))
                .spawn(move || {
                    reader_loop(conn_id, conn, &shared);
                })
        };
        if let Ok(handle) = reader {
            shared
                .readers
                .lock()
                .expect("reader table poisoned")
                .push(handle);
        }
    }
    // No more readers will be created; once existing readers exit, the
    // queue is complete. Close it so the batcher drains and stops.
    // Readers may still be pushing — `close` lets poppers drain what is
    // already queued, and readers observe `stopping` on their next frame.
    shared.queue.close();
}

fn reader_loop(conn_id: u64, conn: Arc<Conn>, shared: &Shared) {
    let mut read_half = match conn.raw.try_clone() {
        Ok(s) => Some(s),
        Err(_) => None,
    };
    while let Some(stream) = read_half.as_mut() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        match Frame::read_from(stream) {
            Ok(None) => break, // peer closed cleanly
            Ok(Some(Frame::Request(request))) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    let _ = conn.send(&Frame::Error(WireError {
                        id: request.id,
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".to_string(),
                    }));
                    break;
                }
                let request_id = request.id;
                let job = Job {
                    conn: Arc::clone(&conn),
                    request,
                };
                if !shared.queue.push(job) {
                    // The queue closed mid-push (shutdown raced us): the
                    // request will never be served, say so.
                    let _ = conn.send(&Frame::Error(WireError {
                        id: request_id,
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".to_string(),
                    }));
                    break;
                }
            }
            Ok(Some(Frame::Ping(token))) => {
                if conn.send(&Frame::Pong(token)).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Shutdown)) => {
                shared.begin_shutdown();
                break;
            }
            Ok(Some(Frame::Reload)) => {
                // Rebuild on this reader thread: the batcher keeps
                // serving the old artifact until the swap lands, so a
                // slow reload delays nothing but its own acknowledgment.
                let reply = match &shared.reload {
                    Some(reload) => match reload() {
                        Ok(recommender) => Frame::Reloaded(shared.slot.swap(recommender)),
                        Err(message) => Frame::Error(WireError {
                            id: 0,
                            code: ErrorCode::Internal,
                            message,
                        }),
                    },
                    None => Frame::Error(WireError {
                        id: 0,
                        code: ErrorCode::Unsupported,
                        message: "this server has no reload source".to_string(),
                    }),
                };
                if conn.send(&reply).is_err() {
                    break;
                }
            }
            Ok(Some(other)) => {
                // Response/Error/Pong arriving at the server is a
                // protocol violation worth reporting, not a framing
                // failure worth disconnecting over.
                let _ = conn.send(&Frame::Error(WireError {
                    id: 0,
                    code: ErrorCode::Unsupported,
                    message: format!("unexpected {other:?} frame on the server side"),
                }));
            }
            Err(ReadFrameError::Frame(e)) => {
                // The length prefix framed the payload, so the stream is
                // still in sync; answer with a typed error and keep
                // serving this connection.
                let _ = conn.send(&Frame::Error(WireError {
                    id: 0,
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                }));
            }
            Err(ReadFrameError::Io(_)) => break,
        }
    }
    shared
        .conns
        .lock()
        .expect("connection table poisoned")
        .remove(&conn_id);
}

fn batcher_loop(shared: Arc<Shared>, max: usize, window: Duration) {
    while let Some(batch) = shared.queue.pop_batch(max, window) {
        // One slot load per batch: the whole batch is served — and
        // stamped — by a single artifact generation, and a swap landing
        // mid-batch takes effect at the next pop.
        let (version, recommender) = shared.slot.load();
        let requests: Vec<_> = batch.iter().map(|job| job.request.to_request()).collect();
        let responses = recommender.recommend_batch(&requests);
        debug_assert_eq!(responses.len(), batch.len());
        for (job, response) in batch.iter().zip(&responses) {
            let frame = Frame::Response(WireResponse::from_response(
                job.request.id,
                version,
                response,
            ));
            // A send failure means the client went away; its answer is
            // undeliverable, which harms no one else.
            let _ = job.conn.send(&frame);
        }
    }
    // Queue closed and drained: every accepted request is answered.
    // Release the read halves so lingering readers (blocked clients)
    // exit too.
    let conns = shared.conns.lock().expect("connection table poisoned");
    for conn in conns.values() {
        let _ = conn.raw.shutdown(Shutdown::Both);
    }
}
