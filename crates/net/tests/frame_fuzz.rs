//! Malformed-frame property test: no buffer, however mangled, may panic
//! the decoder — and anything it *does* accept must be canonical.
//!
//! Strategy: round-trip a corpus of valid frames of every kind (with
//! RNG-driven field values), then attack each encoding three seeded
//! ways:
//!
//! * **truncation** — every strict prefix must fail with a typed error
//!   (the encoding is length-exact, so no prefix is a valid frame);
//! * **byte mutation** — flip random bytes; the decode must either fail
//!   with a typed [`FrameError`] or succeed *canonically* (re-encoding
//!   the accepted frame reproduces the mutated buffer bit for bit — a
//!   mutation in a score travels as data, a mutation in a discriminant
//!   or count is rejected);
//! * **hostile prefixes** — random oversized/undersized outer length
//!   prefixes fed through the stream reader must fail before allocating.

use hf_dataset::Tier;
use hf_net::{Frame, FrameError, ReadFrameError, WireError, WireRequest, WireResponse};
use hf_serve::ScoredItem;
use hf_tensor::rng::{stream, Rng, SeedStream};

const FUZZ_SEED: u64 = 0x4652_414d; // "FRAM"

/// A valid frame with RNG-driven field values.
fn random_frame(rng: &mut impl Rng) -> Frame {
    match rng.gen_range(0..8u32) {
        0 => {
            let mut request = WireRequest::new(rng.gen(), rng.gen_range(0..1_000_000u64));
            request.k = rng.gen_range(0..100u32);
            request.exclude_seen = rng.gen_bool(0.5);
            request.min_popularity = rng.gen_range(0..5u32);
            let n = rng.gen_range(0..8usize);
            request.exclude = (0..n).map(|_| rng.gen_range(0..10_000u32)).collect();
            Frame::Request(request)
        }
        1 => {
            let n = rng.gen_range(0..12usize);
            Frame::Response(WireResponse {
                id: rng.gen(),
                user: rng.gen_range(0..1_000_000u64),
                version: rng.gen_range(1..1_000u64),
                tier: Tier::ALL[rng.gen_range(0..3usize)],
                cold_start: rng.gen_bool(0.2),
                items: (0..n)
                    .map(|_| ScoredItem {
                        item: rng.gen_range(0..10_000u32),
                        score: rng.standard_normal_f32(),
                    })
                    .collect(),
            })
        }
        2 => Frame::Error(WireError {
            id: rng.gen(),
            code: hf_net::ErrorCode::Malformed,
            message: "x".repeat(rng.gen_range(0..64usize)),
        }),
        3 => Frame::Ping(rng.gen()),
        4 => Frame::Pong(rng.gen()),
        5 => Frame::Reload,
        6 => Frame::Reloaded(rng.gen()),
        _ => Frame::Shutdown,
    }
}

#[test]
fn every_truncation_of_every_frame_fails_cleanly() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(1));
    for _ in 0..200 {
        let frame = random_frame(&mut rng);
        let payload = frame.encode();
        assert_eq!(Frame::decode(&payload).as_ref(), Ok(&frame));
        for cut in 0..payload.len() {
            let err = Frame::decode(&payload[..cut])
                .expect_err("a strict prefix must never decode as a frame");
            // Typed, never a panic; the only acceptable causes are
            // running out of bytes or a field check that fired early.
            assert!(
                matches!(
                    err,
                    FrameError::Truncated
                        | FrameError::BadField { .. }
                        | FrameError::Trailing { .. }
                ),
                "cut {cut} of {frame:?}: unexpected {err:?}"
            );
        }
    }
}

#[test]
fn seeded_byte_mutations_never_panic_and_accepts_are_canonical() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(2));
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..300 {
        let frame = random_frame(&mut rng);
        let payload = frame.encode();
        for _ in 0..40 {
            let mut mutated = payload.clone();
            // 1-3 random byte flips.
            for _ in 0..rng.gen_range(1..4usize) {
                let pos = rng.gen_range(0..mutated.len());
                mutated[pos] ^= rng.gen_range(1..=255u32) as u8;
            }
            match Frame::decode(&mutated) {
                Ok(decoded) => {
                    accepted += 1;
                    assert_eq!(
                        decoded.encode(),
                        mutated,
                        "accepted a non-canonical mutation of {frame:?}"
                    );
                }
                Err(_) => rejected += 1, // typed error: exactly the contract
            }
        }
    }
    // Both outcomes must actually occur, or the test is vacuous: flips
    // in payload data decode fine, flips in structure get rejected.
    assert!(accepted > 0, "no mutation was ever accepted");
    assert!(rejected > 0, "no mutation was ever rejected");
}

#[test]
fn hostile_length_prefixes_fail_before_allocating() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(3));
    for _ in 0..200 {
        // A random oversized prefix followed by garbage.
        let claimed = rng.gen_range(hf_net::MAX_FRAME_LEN as u64 + 1..=u32::MAX as u64);
        let mut buf = (claimed as u32).to_le_bytes().to_vec();
        buf.extend((0..rng.gen_range(0..32usize)).map(|_| rng.gen_range(0..=255u32) as u8));
        match Frame::read_from(&mut &buf[..]) {
            Err(ReadFrameError::Frame(FrameError::Oversized { len })) => {
                assert_eq!(len, claimed);
            }
            other => panic!("claimed {claimed}: expected Oversized, got {other:?}"),
        }
    }
    // An honest prefix with a short body is an I/O error (mid-frame EOF),
    // not a hang or a panic.
    for _ in 0..100 {
        let frame = random_frame(&mut rng);
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let cut = rng.gen_range(4..buf.len());
        match Frame::read_from(&mut &buf[..cut]) {
            Err(ReadFrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("mid-frame EOF must be an I/O error, got {other:?}"),
        }
    }
}
