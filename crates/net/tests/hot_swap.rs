//! Hot swap under load: a `Reload` mid-traffic must lose nothing.
//!
//! Concurrent client connections hammer a `serve_slot` server while a
//! control connection swaps the artifact generation. The contract:
//!
//! * no request is dropped or errored by the swap;
//! * every response carries exactly one slot version stamp (1 or 2),
//!   and per connection the stamp is monotone — once a client sees the
//!   fresh generation it never sees the stale one again;
//! * rankings are attributable: a v1-stamped response bit-matches the
//!   in-process stale recommender, a v2-stamped response the fresh one;
//! * a server wired without a reload source answers `Reload` with a
//!   typed error instead of swapping.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
use hf_dataset::{SplitDataset, SyntheticConfig};
use hf_models::ModelKind;
use hf_net::{serve, serve_slot, Client, ErrorCode, NetError, ReloadFn, ServerConfig};
use hf_serve::{
    ArtifactSlot, ExportArtifact, ModelArtifact, RecommendRequest, Recommender, RecommenderBuilder,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two artifact generations from the same data: a stale export after
/// one epoch and a fresh one after three.
fn two_generations() -> (ModelArtifact, ModelArtifact) {
    let data = SyntheticConfig::tiny().generate(31);
    let split = SplitDataset::paper_split(&data, 31);
    let mut session = SessionBuilder::new(
        TrainConfig::test_default(ModelKind::Ncf),
        Strategy::HeteFedRec(Ablation::FULL),
        split,
    )
    .eval_every(0)
    .build()
    .expect("valid config");
    session.run_epoch();
    let stale = session.export_artifact();
    session.run_epoch();
    session.run_epoch();
    (stale, session.export_artifact())
}

fn recommender(artifact: ModelArtifact) -> Recommender {
    RecommenderBuilder::new(artifact)
        .default_k(8)
        .build()
        .expect("valid serving config")
}

#[test]
fn reload_under_concurrent_load_drops_nothing_and_stamps_every_ranking() {
    let (stale, fresh) = two_generations();
    let num_users = stale.num_users();
    let stale_rec = recommender(stale.clone());
    let fresh_rec = recommender(fresh.clone());

    let reload: ReloadFn = Box::new(move || Ok(recommender(fresh.clone())));
    let config = ServerConfig {
        batch_window: Duration::from_micros(500),
        batch_max: 16,
        queue_capacity: 64,
    };
    let handle = serve_slot(
        ArtifactSlot::new(recommender(stale.clone())),
        Some(reload),
        "127.0.0.1:0",
        config,
    )
    .expect("server up");
    let addr = handle.local_addr();

    let swapped = Arc::new(AtomicBool::new(false));
    let pre_swap_done = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let swapped = Arc::clone(&swapped);
            let pre_swap_done = Arc::clone(&pre_swap_done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut log: Vec<(usize, u64, hf_serve::RecommendResponse)> = Vec::new();
                let mut i = 0usize;
                // Keep issuing until the swap lands, then a tail of 20
                // more so both generations see traffic from every
                // connection.
                let mut tail = 20;
                loop {
                    let user = (w * 13 + i * 7) % (num_users + 2);
                    let request = RecommendRequest::new(user).with_k(8);
                    let wire = hf_net::WireRequest::try_from_request(i as u64 + 1, &request)
                        .expect("wire-expressible");
                    let served = client.recommend_wire(wire).expect("no request may fail");
                    log.push((user, served.version, served.into_response()));
                    i += 1;
                    if swapped.load(Ordering::Acquire) {
                        tail -= 1;
                        if tail == 0 {
                            break;
                        }
                    } else {
                        pre_swap_done.fetch_add(1, Ordering::Release);
                    }
                }
                log
            })
        })
        .collect();

    // Let every connection serve real pre-swap traffic, then swap.
    while pre_swap_done.load(Ordering::Acquire) < 8 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut control = Client::connect(addr).expect("control connects");
    let version = control.reload().expect("reload acknowledged");
    assert_eq!(version, 2, "first swap bumps the slot to v2");
    swapped.store(true, Ordering::Release);

    let mut saw = [0u64; 2];
    for worker in workers {
        let log = worker.join().expect("worker panicked");
        let mut last = 0u64;
        for (user, version, served) in log {
            assert!(
                version == 1 || version == 2,
                "user {user}: unattributable version {version}"
            );
            assert!(
                version >= last,
                "stamps must be monotone per connection ({last} then {version})"
            );
            last = version;
            saw[version as usize - 1] += 1;
            let reference = if version == 1 { &stale_rec } else { &fresh_rec };
            let expect = reference.recommend(&RecommendRequest::new(user).with_k(8));
            assert_eq!(
                served, expect,
                "user {user}: ranking not bit-identical to generation {version}"
            );
        }
    }
    assert!(saw[0] > 0, "no pre-swap response was served");
    assert!(saw[1] > 0, "no post-swap response was served");
    handle.shutdown();
}

#[test]
fn second_reload_keeps_advancing_the_version() {
    let (stale, fresh) = two_generations();
    let reload: ReloadFn = Box::new(move || Ok(recommender(fresh.clone())));
    let handle = serve_slot(
        ArtifactSlot::new(recommender(stale)),
        Some(reload),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server up");
    let mut client = Client::connect(handle.local_addr()).expect("connects");
    assert_eq!(client.reload().expect("first swap"), 2);
    assert_eq!(client.reload().expect("second swap"), 3);
    let wire = hf_net::WireRequest::new(9, 0);
    assert_eq!(client.recommend_wire(wire).expect("served").version, 3);
    handle.shutdown();
}

#[test]
fn reload_without_a_source_is_a_typed_error_not_a_swap() {
    let (stale, _) = two_generations();
    let handle =
        serve(recommender(stale), "127.0.0.1:0", ServerConfig::default()).expect("server up");
    let mut client = Client::connect(handle.local_addr()).expect("connects");
    match client.reload() {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected a typed Unsupported error, got {other:?}"),
    }
    // The connection survives and still serves version 1.
    let served = client
        .recommend_wire(hf_net::WireRequest::new(4, 1))
        .expect("served");
    assert_eq!(served.version, 1);
    handle.shutdown();
}

#[test]
fn failing_reload_source_reports_and_keeps_serving_the_old_artifact() {
    let (stale, _) = two_generations();
    let reload: ReloadFn = Box::new(|| Err("artifact directory is empty".to_string()));
    let handle = serve_slot(
        ArtifactSlot::new(recommender(stale)),
        Some(reload),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server up");
    let mut client = Client::connect(handle.local_addr()).expect("connects");
    match client.reload() {
        Err(NetError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("empty"), "{message}");
        }
        other => panic!("expected a typed Internal error, got {other:?}"),
    }
    let served = client
        .recommend_wire(hf_net::WireRequest::new(4, 1))
        .expect("still serving");
    assert_eq!(served.version, 1, "a failed reload must not advance");
    handle.shutdown();
}
