//! End-to-end socket serving: the wire answers must be **bit-identical**
//! to in-process `Recommender::recommend_batch` for the same requests,
//! under every transport shape — sequential client round trips,
//! concurrent connections, micro-batch coalescing, tiny queues forcing
//! backpressure — and the server must survive malformed frames and shut
//! down gracefully on the wire-level control signal.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
use hf_dataset::{SplitDataset, SyntheticConfig};
use hf_models::ModelKind;
use hf_net::{
    run_loadgen, serve, verify_exchanges, Client, ErrorCode, Frame, LoadGen, NetError,
    ServerConfig, WireRequest,
};
use hf_serve::{ExportArtifact, RecommendRequest, Recommender, RecommenderBuilder};
use std::time::Duration;

fn trained_recommender() -> Recommender {
    let data = SyntheticConfig::tiny().generate(23);
    let split = SplitDataset::paper_split(&data, 23);
    let mut session = SessionBuilder::new(
        TrainConfig::test_default(ModelKind::Ncf),
        Strategy::HeteFedRec(Ablation::FULL),
        split,
    )
    .eval_every(0)
    .build()
    .expect("valid config");
    session.run_epoch();
    RecommenderBuilder::new(session.export_artifact())
        .default_k(10)
        .build()
        .expect("valid serving config")
}

/// A request mix covering the whole wire-expressible vocabulary.
fn varied_requests(num_users: usize) -> Vec<RecommendRequest> {
    let mut requests = Vec::new();
    for user in 0..num_users.min(12) {
        requests.push(RecommendRequest::new(user));
        requests.push(RecommendRequest::new(user).with_k(3));
        requests.push(RecommendRequest::new(user).exclude([1u32, 5, 2]));
        requests.push(RecommendRequest::new(user).keep_seen());
        requests.push(RecommendRequest::new(user).with_min_popularity(2));
    }
    // Cold-start ids.
    requests.push(RecommendRequest::new(num_users + 100));
    requests.push(RecommendRequest::new(num_users + 101).with_k(7));
    requests
}

#[test]
fn served_rankings_are_bit_identical_to_in_process() {
    let recommender = trained_recommender();
    let num_users = recommender.artifact().num_users();
    let requests = varied_requests(num_users);
    let expected = recommender.recommend_batch(&requests);

    let handle = serve(recommender, "127.0.0.1:0", ServerConfig::default()).expect("server up");
    let mut client = Client::connect(handle.local_addr()).expect("client connects");
    for (request, expect) in requests.iter().zip(&expected) {
        let served = client.recommend(request).expect("served");
        assert_eq!(served.user, expect.user);
        assert_eq!(served.tier, expect.tier);
        assert_eq!(served.cold_start, expect.cold_start);
        assert_eq!(served.items.len(), expect.items.len());
        for (a, b) in served.items.iter().zip(&expect.items) {
            assert_eq!(a.item, b.item, "user {}", request.user);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "user {}: scores must be bit-identical across the socket",
                request.user
            );
        }
    }
    handle.shutdown();
}

#[test]
fn concurrent_connections_coalesce_and_stay_bit_identical() {
    let recommender = trained_recommender();
    let num_users = recommender.artifact().num_users();
    let requests = varied_requests(num_users);
    let expected = recommender.recommend_batch(&requests);

    // A wide window so concurrent requests really do share batches.
    let config = ServerConfig {
        batch_window: Duration::from_millis(2),
        batch_max: 32,
        queue_capacity: 64,
    };
    let handle = serve(recommender, "127.0.0.1:0", config).expect("server up");
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let requests = requests.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                // Interleave differently per worker so batches mix users.
                for i in 0..requests.len() {
                    let idx = (i * (w + 1)) % requests.len();
                    let served = client.recommend(&requests[idx]).expect("served");
                    assert_eq!(served, expected[idx], "worker {w} request {idx}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker panicked");
    }
    handle.shutdown();
}

#[test]
fn tiny_queue_backpressure_loses_nothing() {
    let recommender = trained_recommender();
    let num_users = recommender.artifact().num_users() as u64;
    // Deliberately hostile: queue of 2, batches of 1.
    let config = ServerConfig {
        batch_window: Duration::ZERO,
        batch_max: 1,
        queue_capacity: 2,
    };
    let handle = serve(recommender, "127.0.0.1:0", config).expect("server up");

    let load = LoadGen {
        connections: 4,
        target_qps: f64::INFINITY, // back-to-back: the queue must push back
        requests: 400,
        max_duration: Duration::from_secs(30),
        seed: 11,
        users: num_users + 5,
        k: 5,
        capture: false,
    };
    let report = run_loadgen(handle.local_addr(), &load).expect("load run");
    assert_eq!(report.sent, 400, "open loop must send the full schedule");
    assert_eq!(
        report.received, report.sent,
        "backpressure may slow requests, never drop them"
    );
    assert_eq!(report.remote_errors, 0);
    assert!(report.latency.count() > 0);
    handle.shutdown();
}

#[test]
fn loadgen_verification_proves_bit_identity() {
    let recommender = trained_recommender();
    let num_users = recommender.artifact().num_users() as u64;

    // Serve and verify against two *independently built* recommenders
    // over artifacts from the same session export.
    let verifier = {
        // Rebuilding from the served artifact's own bytes pins the
        // "what hf-loadgen --verify-artifact does" path.
        let bytes = recommender.artifact().to_bytes();
        let artifact = hf_serve::ModelArtifact::from_bytes(&bytes).expect("artifact reloads");
        RecommenderBuilder::new(artifact)
            .default_k(10)
            .build()
            .expect("verifier builds")
    };

    let handle = serve(recommender, "127.0.0.1:0", ServerConfig::default()).expect("server up");
    let load = LoadGen {
        connections: 3,
        target_qps: 3000.0,
        requests: 300,
        max_duration: Duration::from_secs(30),
        seed: 5,
        users: num_users + 3,
        k: 0,
        capture: true,
    };
    let report = run_loadgen(handle.local_addr(), &load).expect("load run");
    assert_eq!(report.received, report.sent);
    assert_eq!(report.exchanges.len() as u64, report.received);
    let verified = verify_exchanges(&verifier, &report.exchanges).expect("bit-identical");
    assert_eq!(verified as u64, report.received);
    handle.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let recommender = trained_recommender();
    let expect = recommender.recommend_batch(&[RecommendRequest::new(0)]);
    let handle = serve(recommender, "127.0.0.1:0", ServerConfig::default()).expect("server up");

    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connects");
    // A well-framed but undecodable payload: bad version byte.
    let garbage = [99u8, 1, 2, 3];
    stream
        .write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&garbage).unwrap();
    stream.flush().unwrap();
    match Frame::read_from(&mut stream).expect("error frame arrives") {
        Some(Frame::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Malformed);
            assert!(e.message.contains("version"), "{}", e.message);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The stream is still in sync: a real request on the same connection
    // is served normally.
    Frame::Request(WireRequest::new(77, 0))
        .write_to(&mut stream)
        .unwrap();
    match Frame::read_from(&mut stream).expect("response arrives") {
        Some(Frame::Response(response)) => {
            assert_eq!(response.id, 77);
            assert_eq!(response.into_response(), expect[0]);
        }
        other => panic!("expected the served response, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn ping_and_remote_shutdown_control_the_server() {
    let recommender = trained_recommender();
    let handle = serve(recommender, "127.0.0.1:0", ServerConfig::default()).expect("server up");
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    client.ping().expect("pong");
    let response = client.recommend(&RecommendRequest::new(1)).expect("served");
    assert!(!response.items.is_empty());

    // The wire-level control signal stops the server; wait() returns.
    client.shutdown_server().expect("shutdown sent");
    handle.wait();

    // The port no longer serves: either the connect is refused or the
    // exchange fails — a fresh recommend must not succeed.
    let after = Client::connect(addr).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_millis(500)))?;
        c.recommend(&RecommendRequest::new(1))
    });
    assert!(after.is_err(), "server must be gone after remote shutdown");
}

#[test]
fn closure_filters_are_rejected_client_side() {
    let recommender = trained_recommender();
    let handle = serve(recommender, "127.0.0.1:0", ServerConfig::default()).expect("server up");
    let mut client = Client::connect(handle.local_addr()).expect("connects");
    let request = RecommendRequest::new(0).with_filter(|item| item < 10);
    match client.recommend(&request) {
        Err(NetError::NotWireExpressible) => {}
        other => panic!("expected NotWireExpressible, got {other:?}"),
    }
    handle.shutdown();
}
