//! `hf-pipeline` — the online loop, end to end, in one process.
//!
//! ```text
//! hf-pipeline [--seed 42] [--epochs 6] [--addr 127.0.0.1:0]
//!             [--dir <artifact dir>] [--k 8] [--keep]
//! ```
//!
//! Demonstrates (and asserts) the full training-to-serving pipeline on
//! a synthetic dataset:
//!
//! 1. carve a held-out interaction stream from the dataset and train a
//!    session on the pre-cutoff base, exporting versioned artifacts as
//!    the stream is ingested ([`PipelineDriver`]);
//! 2. serve generation 1 over TCP while training runs, then send one
//!    on-wire `Reload` to hot-swap the newest generation in;
//! 3. prove attribution: every response carries the serving slot's
//!    version stamp, pre-swap rankings are bit-identical to an
//!    in-process recommender on generation 1 and post-swap rankings to
//!    the final generation;
//! 4. price the staleness: [`drift_report`] on the held-out events,
//!    stale versus fresh artifact.
//!
//! On success the process prints the machine-checkable line
//! `hot swap verified: v1 -> v2, rankings attributable` and exits 0;
//! any broken invariant panics.

use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
use hf_dataset::{SplitDataset, SyntheticConfig};
use hf_models::ModelKind;
use hf_net::{serve_slot, Client, ReloadFn, ServerConfig, WireRequest, WireResponse};
use hf_pipeline::{
    drift_report, latest_artifact, InteractionStream, PipelineConfig, PipelineDriver, ReplayConfig,
    ReplayStream,
};
use hf_serve::{ArtifactSlot, ModelArtifact, RecommendRequest, Recommender, RecommenderBuilder};
use std::path::{Path, PathBuf};
use std::time::Duration;

struct Args {
    seed: u64,
    epochs: usize,
    addr: String,
    dir: Option<PathBuf>,
    k: usize,
    keep: bool,
}

const USAGE: &str = "usage: hf-pipeline [--seed 42] [--epochs 6] \
    [--addr 127.0.0.1:0] [--dir <artifact dir>] [--k 8] [--keep]";

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        epochs: 6,
        addr: "127.0.0.1:0".to_string(),
        dir: None,
        k: 8,
        keep: false,
    };
    let mut argv = std::env::args().skip(1);
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed"))
            }
            "--epochs" => {
                args.epochs = value("--epochs")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --epochs"))
            }
            "--addr" => args.addr = value("--addr"),
            "--dir" => args.dir = Some(PathBuf::from(value("--dir"))),
            "--k" => args.k = value("--k").parse().unwrap_or_else(|_| fail("bad --k")),
            "--keep" => args.keep = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if args.epochs == 0 {
        fail("--epochs must be at least 1");
    }
    args
}

/// One builder for every recommender in the process — server-side,
/// reload closure, and in-process comparators must agree on serving
/// configuration for rankings to be bit-comparable.
fn build_recommender(artifact: ModelArtifact, k: usize) -> Result<Recommender, String> {
    RecommenderBuilder::new(artifact)
        .default_k(k)
        .threads(1)
        .build()
        .map_err(|e| format!("invalid serving configuration: {e}"))
}

fn load_generation(dir: &Path, version: u64, k: usize) -> Recommender {
    let path = hf_pipeline::artifact_path(dir, version);
    let artifact = ModelArtifact::load_file(&path)
        .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
    build_recommender(artifact, k).expect("valid serving configuration")
}

/// Issues one wire request per user and asserts every response carries
/// `slot_version` and bit-matches the in-process `reference` ranking.
fn verify_stamped(
    client: &mut Client,
    users: &[usize],
    k: usize,
    slot_version: u64,
    reference: &Recommender,
) -> usize {
    for (i, &user) in users.iter().enumerate() {
        let request = RecommendRequest::new(user).with_k(k);
        let wire = WireRequest::try_from_request((slot_version << 32) | (i as u64 + 1), &request)
            .expect("no closure filters on the wire");
        let served: WireResponse = client.recommend_wire(wire).expect("request served");
        assert_eq!(
            served.version, slot_version,
            "user {user}: response stamped v{}, expected v{slot_version}",
            served.version
        );
        let expect = reference.recommend(&request);
        assert_eq!(
            served.items.len(),
            expect.items.len(),
            "user {user}: ranking lengths differ"
        );
        for (got, want) in served.items.iter().zip(&expect.items) {
            assert_eq!(got.item, want.item, "user {user}: ranked items differ");
            assert_eq!(
                got.score.to_bits(),
                want.score.to_bits(),
                "user {user}: score bits differ on item {}",
                got.item
            );
        }
    }
    users.len()
}

fn main() {
    let args = parse_args();
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("hf-pipeline-{}", std::process::id()))
    });

    // 1. Carve the stream, split the base, start the pipeline (exports v1).
    let data = SyntheticConfig::tiny().generate(args.seed);
    let replay = ReplayConfig {
        item_frac: 0.2,
        new_users: 2,
        start: 1,
        horizon: 8,
    };
    let (base, stream) = ReplayStream::replay(&data, &replay, args.seed);
    println!(
        "hf-pipeline: base {} users, {} items; stream holds {} events ({} new users)",
        base.num_users(),
        base.num_items(),
        stream.events().len(),
        replay.new_users
    );
    let split = SplitDataset::paper_split(&base, args.seed);
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .eval_every(0)
        .build()
        .expect("valid training configuration");
    let held_out = stream.events().to_vec();
    let mut driver = PipelineDriver::new(
        session,
        stream,
        PipelineConfig {
            rounds_per_cycle: 3,
            export_every: 2,
            artifact_dir: dir.clone(),
        },
    )
    .expect("initial artifact export");

    // 2. Serve generation 1 while the pipeline trains.
    let slot = ArtifactSlot::new(load_generation(&dir, 1, args.k));
    let reload_dir = dir.clone();
    let reload_k = args.k;
    let reload: ReloadFn = Box::new(move || {
        let (version, path) = latest_artifact(&reload_dir)
            .map_err(|e| format!("cannot scan artifact dir: {e}"))?
            .ok_or_else(|| "no artifact on disk yet".to_string())?;
        let artifact =
            ModelArtifact::load_file(&path).map_err(|e| format!("cannot load v{version}: {e}"))?;
        build_recommender(artifact, reload_k)
    });
    let server_cfg = ServerConfig {
        batch_window: Duration::from_micros(200),
        batch_max: 16,
        queue_capacity: 64,
    };
    let handle = serve_slot(slot, Some(reload), &args.addr, server_cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot serve on {}: {e}", args.addr);
        std::process::exit(1);
    });
    println!(
        "hf-pipeline: exported artifact-v1.hfab; serving on {}",
        handle.local_addr()
    );
    let mut client =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5)).expect("connect");

    // 3. Pre-swap traffic: stamped v1, bit-identical to generation 1.
    let users: Vec<usize> = (0..6).collect();
    let gen1 = load_generation(&dir, 1, args.k);
    let pre = verify_stamped(&mut client, &users, args.k, 1, &gen1);
    println!("hf-pipeline: pre-swap rankings match generation 1 bit-for-bit ({pre} requests)");

    // 4. Run the pipeline to completion, exporting as it goes.
    let reports = driver.run().expect("pipeline runs to completion");
    for r in &reports {
        let exported = match &r.exported {
            Some((v, _)) => format!(", exported v{v}"),
            None => String::new(),
        };
        println!(
            "hf-pipeline: cycle {}: {} rounds, ingested {} (+{} users, {} dup), clock {}{exported}",
            r.cycle, r.rounds, r.ingest.appended, r.ingest.admitted, r.ingest.duplicates, r.clock
        );
    }
    let generations = driver.version();
    let (session, stream) = driver.into_parts();
    println!(
        "hf-pipeline: pipeline finished: {generations} generations exported, {} events ingested, {} undelivered",
        session.ingested_events(),
        stream.remaining()
    );
    assert!(
        generations >= 2,
        "pipeline must export a fresher generation"
    );

    // 5. Hot swap over the wire: slot v1 -> v2, serving the newest file.
    let swapped_to = client.reload().expect("reload acknowledged");
    assert_eq!(swapped_to, 2, "first swap must bump the slot to v2");
    println!("hf-pipeline: reload acknowledged: slot v2 = artifact-v{generations}.hfab");
    let fresh = load_generation(&dir, generations, args.k);
    let post = verify_stamped(&mut client, &users, args.k, 2, &fresh);
    println!(
        "hf-pipeline: post-swap rankings match generation {generations} bit-for-bit ({post} requests)"
    );
    println!("hot swap verified: v1 -> v2, rankings attributable");

    // 6. Price the staleness on the held-out events.
    let report = drift_report(&gen1, &fresh, &held_out, 10);
    println!(
        "hf-pipeline: drift over {} held-out events @{}: stale NDCG {:.5}, fresh {:.5}, delta {:+.5}, mean displacement {:.2}",
        report.events,
        report.k,
        report.stale_ndcg,
        report.fresh_ndcg,
        report.ndcg_delta,
        report.mean_rank_displacement
    );

    client.shutdown_server().expect("shutdown frame");
    handle.wait();
    if !args.keep && args.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("hf-pipeline: done");
}
