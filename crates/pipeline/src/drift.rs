//! Freshness measurement: what does serving a stale artifact cost?
//!
//! [`drift_report`] replays a held-out event set — the post-cutoff
//! interactions a [`ReplayStream`](crate::ReplayStream) delivered to
//! the training side — against two artifacts: the *stale* one exported
//! before those interactions arrived and the *fresh* one exported
//! after. For every event it computes the target item's exact rank
//! under each artifact's full score vector, then aggregates:
//!
//! * NDCG@k per artifact (`1 / log2(rank + 2)` when the target ranks
//!   inside the top `k`, else 0) — the headline freshness delta;
//! * mean absolute rank displacement — how far items moved between
//!   the two artifacts, top-k or not.
//!
//! Ranks are exact and deterministic: ties break toward the smaller
//! item id, matching the recommender's stable ordering, and scoring
//! uses [`Recommender::score_request`] with seen-masking off so a
//! held-out item is never filtered out of its own evaluation. Users
//! the stale artifact has never seen (admitted mid-stream) fall back
//! to its cold-start scores — exactly what a stale server would have
//! answered.

use crate::stream::StreamEvent;
use hf_serve::{RecommendRequest, Recommender};
use hf_tensor::ser::{obj, ToJson};
use std::collections::BTreeMap;

/// Aggregate freshness comparison between two artifact generations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftReport {
    /// Held-out events evaluated.
    pub events: usize,
    /// Ranking cutoff used for the NDCG terms.
    pub k: usize,
    /// NDCG@k of the stale artifact on the held-out events.
    pub stale_ndcg: f64,
    /// NDCG@k of the fresh artifact on the same events.
    pub fresh_ndcg: f64,
    /// `fresh_ndcg - stale_ndcg`: the freshness payoff.
    pub ndcg_delta: f64,
    /// Mean `|rank_fresh - rank_stale|` of the target items.
    pub mean_rank_displacement: f64,
}

impl ToJson for DriftReport {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("events", &self.events)
                .field("k", &self.k)
                .field("stale_ndcg", &self.stale_ndcg)
                .field("fresh_ndcg", &self.fresh_ndcg)
                .field("ndcg_delta", &self.ndcg_delta)
                .field("mean_rank_displacement", &self.mean_rank_displacement);
        });
    }
}

/// Exact rank of `item` in a full score vector: the number of
/// candidates ordered strictly ahead of it (higher score, or equal
/// score with a smaller id). `NaN` entries are filtered candidates and
/// never outrank anything.
fn rank_of(scores: &[f32], item: u32) -> usize {
    let target = scores[item as usize];
    if target.is_nan() {
        // The target itself was filtered; rank it past the end.
        return scores.len();
    }
    scores
        .iter()
        .enumerate()
        .filter(|&(j, &s)| !s.is_nan() && (s > target || (s == target && (j as u32) < item)))
        .count()
}

/// Per-user score cache: one dense scoring pass per distinct user,
/// however many of its interactions the event set holds.
struct ScoreCache<'a> {
    recommender: &'a Recommender,
    scores: BTreeMap<usize, Vec<f32>>,
}

impl<'a> ScoreCache<'a> {
    fn new(recommender: &'a Recommender) -> Self {
        Self {
            recommender,
            scores: BTreeMap::new(),
        }
    }

    fn rank(&mut self, user: usize, item: u32) -> usize {
        let scores = self.scores.entry(user).or_insert_with(|| {
            self.recommender
                .score_request(&RecommendRequest::new(user).keep_seen())
        });
        rank_of(scores, item)
    }
}

/// Replays `events` against a stale and a fresh artifact generation
/// and aggregates the freshness comparison (module docs).
pub fn drift_report(
    stale: &Recommender,
    fresh: &Recommender,
    events: &[StreamEvent],
    k: usize,
) -> DriftReport {
    let mut stale_cache = ScoreCache::new(stale);
    let mut fresh_cache = ScoreCache::new(fresh);
    let (mut stale_gain, mut fresh_gain, mut displacement) = (0.0f64, 0.0f64, 0.0f64);
    for e in events {
        let rank_stale = stale_cache.rank(e.user, e.item);
        let rank_fresh = fresh_cache.rank(e.user, e.item);
        stale_gain += ndcg_term(rank_stale, k);
        fresh_gain += ndcg_term(rank_fresh, k);
        displacement += (rank_fresh as f64 - rank_stale as f64).abs();
    }
    let n = events.len().max(1) as f64;
    let (stale_ndcg, fresh_ndcg) = (stale_gain / n, fresh_gain / n);
    DriftReport {
        events: events.len(),
        k,
        stale_ndcg,
        fresh_ndcg,
        ndcg_delta: fresh_ndcg - stale_ndcg,
        mean_rank_displacement: displacement / n,
    }
}

fn ndcg_term(rank: usize, k: usize) -> f64 {
    if rank < k {
        1.0 / ((rank as f64 + 2.0).log2())
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig};
    use hf_models::ModelKind;
    use hf_serve::{ExportArtifact, RecommenderBuilder};

    fn recommender(epochs: usize) -> Recommender {
        let data = SyntheticConfig::tiny().generate(33);
        let split = SplitDataset::paper_split(&data, 33);
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = epochs.max(1);
        let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
            .eval_every(0)
            .build()
            .expect("valid config");
        for _ in 0..epochs {
            s.run_epoch();
        }
        RecommenderBuilder::new(s.export_artifact())
            .build()
            .expect("valid serving config")
    }

    fn some_events() -> Vec<StreamEvent> {
        (0..8)
            .map(|i| StreamEvent {
                time: i as u64,
                user: i % 5,
                item: (i * 7 % 30) as u32,
            })
            .collect()
    }

    #[test]
    fn rank_of_breaks_ties_toward_smaller_ids_and_skips_nan() {
        let scores = [0.5, f32::NAN, 0.9, 0.5, 0.1];
        assert_eq!(rank_of(&scores, 2), 0); // unique best
        assert_eq!(rank_of(&scores, 0), 1); // ties with 3, wins on id
        assert_eq!(rank_of(&scores, 3), 2); // loses the tie to 0
        assert_eq!(rank_of(&scores, 4), 3); // NaN at 1 never outranks
        assert_eq!(rank_of(&scores, 1), 5); // filtered target: past end
    }

    #[test]
    fn identical_artifacts_show_zero_drift() {
        let rec = recommender(1);
        let report = drift_report(&rec, &rec, &some_events(), 10);
        assert_eq!(report.events, 8);
        assert_eq!(report.ndcg_delta, 0.0);
        assert_eq!(report.mean_rank_displacement, 0.0);
        assert_eq!(report.stale_ndcg, report.fresh_ndcg);
    }

    #[test]
    fn different_generations_show_nonzero_displacement() {
        let stale = recommender(1);
        let fresh = recommender(3);
        let report = drift_report(&stale, &fresh, &some_events(), 10);
        assert!(report.mean_rank_displacement > 0.0);
        assert!(report.stale_ndcg >= 0.0 && report.fresh_ndcg >= 0.0);
        assert!((report.ndcg_delta - (report.fresh_ndcg - report.stale_ndcg)).abs() < 1e-15);
    }

    #[test]
    fn empty_event_sets_degrade_gracefully() {
        let rec = recommender(1);
        let report = drift_report(&rec, &rec, &[], 10);
        assert_eq!(report.events, 0);
        assert_eq!(report.stale_ndcg, 0.0);
        assert_eq!(report.mean_rank_displacement, 0.0);
    }

    #[test]
    fn report_serialises_every_field() {
        let report = DriftReport {
            events: 3,
            k: 10,
            stale_ndcg: 0.25,
            fresh_ndcg: 0.5,
            ndcg_delta: 0.25,
            mean_rank_displacement: 1.5,
        };
        let json = report.to_json();
        for key in [
            "events",
            "\"k\"",
            "stale_ndcg",
            "fresh_ndcg",
            "ndcg_delta",
            "mean_rank_displacement",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
