//! The pipeline driver: ingest → train → export, one cycle at a time.
//!
//! [`PipelineDriver`] owns a running [`Session`] and an
//! [`InteractionStream`] and alternates them: at each cycle boundary it
//! polls the stream against the session's simulated clock, hands the
//! due events to [`Session::ingest`], steps the session through a fixed
//! number of federation rounds, and every `export_every` cycles
//! snapshots the model into a *versioned* artifact file
//! (`artifact-v{N}.hfab`) under the configured directory. Version 1 is
//! written at construction — the serving side never waits for the
//! first cycle — and the final state is always exported when the
//! session finishes, whatever the cadence.
//!
//! Versions are part of the serving attribution contract: the file
//! name's `N` is the generation a hot-swapping server reports in
//! [`WireResponse::version`](hf_net::WireResponse), so every ranking a
//! client receives names the exact artifact that produced it.
//!
//! Determinism: the session trains bit-identically across thread
//! counts, the stream delivers by logical clock, and exports happen at
//! fixed cycle boundaries — so a fixed-seed pipeline emits a
//! bit-identical artifact *sequence* regardless of parallelism, and a
//! mid-stream checkpoint resumes it exactly (see
//! [`PipelineDriver::with_progress`]).

use crate::stream::InteractionStream;
use hetefedrec_core::{IngestReport, Session, SessionEvent};
use hf_serve::{ExportArtifact, ServeError};
use std::path::{Path, PathBuf};

/// Cadence and destination of a pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Federation rounds trained per cycle (at least 1; epoch
    /// boundaries crossed along the way do not count).
    pub rounds_per_cycle: usize,
    /// Export an artifact every this many cycles; `0` exports only the
    /// final state. The final state is always exported.
    pub export_every: usize,
    /// Directory receiving `artifact-v{N}.hfab` files (created on
    /// first export).
    pub artifact_dir: PathBuf,
}

/// What one [`PipelineDriver::run_cycle`] call did.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Rounds actually trained (fewer than `rounds_per_cycle` only on
    /// the finishing cycle).
    pub rounds: usize,
    /// How the cycle's polled events were absorbed.
    pub ingest: IngestReport,
    /// `(version, path)` if this cycle exported an artifact.
    pub exported: Option<(u64, PathBuf)>,
    /// Session clock after the cycle.
    pub clock: u64,
}

/// Drives a session against an interaction stream, exporting versioned
/// artifacts (module docs have the full contract).
pub struct PipelineDriver<S: InteractionStream> {
    session: Session,
    stream: S,
    cfg: PipelineConfig,
    cycles: usize,
    version: u64,
}

/// The on-disk name of artifact generation `version` under `dir`.
pub fn artifact_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("artifact-v{version}.hfab"))
}

/// Scans `dir` for `artifact-v{N}.hfab` files and returns the highest
/// `(version, path)`, or `None` if there are none yet. This is the
/// reload closure's half of the hot-swap handshake: re-resolve the
/// newest generation whenever a client sends `Reload`.
pub fn latest_artifact(dir: &Path) -> std::io::Result<Option<(u64, PathBuf)>> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(version) = name
            .strip_prefix("artifact-v")
            .and_then(|rest| rest.strip_suffix(".hfab"))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| version > *b) {
            best = Some((version, path));
        }
    }
    Ok(best)
}

impl<S: InteractionStream> PipelineDriver<S> {
    /// Starts a pipeline and immediately exports artifact version 1.
    pub fn new(session: Session, stream: S, cfg: PipelineConfig) -> Result<Self, ServeError> {
        let mut driver = Self {
            session,
            stream,
            cfg,
            cycles: 0,
            version: 0,
        };
        driver.export()?;
        Ok(driver)
    }

    /// Resumes a pipeline from a restored session without re-exporting:
    /// `cycles` and `version` are the values a previous driver reported
    /// before checkpointing, and the stream must already be aligned
    /// (its first undelivered event is the session's
    /// `ingested_events()`-th — see
    /// [`ReplayStream::skip`](crate::ReplayStream::skip)).
    pub fn with_progress(
        session: Session,
        stream: S,
        cfg: PipelineConfig,
        cycles: usize,
        version: u64,
    ) -> Self {
        Self {
            session,
            stream,
            cfg,
            cycles,
            version,
        }
    }

    /// Runs one cycle: poll + ingest, train `rounds_per_cycle` rounds,
    /// export on cadence. Returns `Ok(None)` once the session has
    /// finished (the finishing cycle itself still reports, with the
    /// final export attached).
    pub fn run_cycle(&mut self) -> Result<Option<CycleReport>, ServeError> {
        if self.session.is_finished() {
            return Ok(None);
        }
        let events = self.stream.poll(self.session.clock());
        let pairs: Vec<(usize, u32)> = events.iter().map(|e| (e.user, e.item)).collect();
        let ingest = self.session.ingest(&pairs);

        let target = self.cfg.rounds_per_cycle.max(1);
        let mut rounds = 0;
        while rounds < target {
            match self.session.step() {
                Some(SessionEvent::Round(_)) => rounds += 1,
                Some(SessionEvent::Epoch(_)) => {}
                None => break,
            }
        }

        self.cycles += 1;
        let due = self.cfg.export_every != 0 && self.cycles % self.cfg.export_every == 0;
        let exported = if due || self.session.is_finished() {
            Some(self.export()?)
        } else {
            None
        };
        Ok(Some(CycleReport {
            cycle: self.cycles,
            rounds,
            ingest,
            exported,
            clock: self.session.clock(),
        }))
    }

    /// Runs cycles until the session finishes; returns every report.
    pub fn run(&mut self) -> Result<Vec<CycleReport>, ServeError> {
        let mut reports = Vec::new();
        while let Some(report) = self.run_cycle()? {
            reports.push(report);
        }
        Ok(reports)
    }

    fn export(&mut self) -> Result<(u64, PathBuf), ServeError> {
        self.version += 1;
        let path = artifact_path(&self.cfg.artifact_dir, self.version);
        self.session.export_artifact().save_file(&path)?;
        Ok((self.version, path))
    }

    /// The driven session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The stream being drained.
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Cycles completed so far.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Latest exported artifact version (1 right after construction).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Tears the driver down into its session and stream — for
    /// checkpointing mid-pipeline or evaluating the final state.
    pub fn into_parts(self) -> (Session, S) {
        (self.session, self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{ReplayConfig, ReplayStream};
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig};
    use hf_models::ModelKind;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hf-pipeline-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pipeline(tag: &str, epochs: usize) -> (PipelineDriver<ReplayStream>, PathBuf) {
        let data = SyntheticConfig::tiny().generate(21);
        let replay = ReplayConfig {
            item_frac: 0.2,
            new_users: 2,
            start: 1,
            horizon: 8,
        };
        let (base, stream) = ReplayStream::replay(&data, &replay, 21);
        let split = SplitDataset::paper_split(&base, 21);
        let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
        cfg.epochs = epochs;
        let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
            .eval_every(0)
            .build()
            .expect("valid config");
        let dir = tempdir(tag);
        let driver = PipelineDriver::new(
            session,
            stream,
            PipelineConfig {
                rounds_per_cycle: 3,
                export_every: 2,
                artifact_dir: dir.clone(),
            },
        )
        .expect("initial export");
        (driver, dir)
    }

    #[test]
    fn construction_exports_v1_and_cycles_export_on_cadence() {
        let (mut driver, dir) = pipeline("cadence", 2);
        assert_eq!(driver.version(), 1);
        assert!(artifact_path(&dir, 1).is_file());

        let reports = driver.run().expect("pipeline runs");
        assert!(!reports.is_empty());
        for r in &reports {
            if r.cycle % 2 == 0 || r.cycle == reports.len() {
                assert!(r.exported.is_some(), "cycle {} should export", r.cycle);
            }
            assert!(r.rounds > 0 || r.cycle == reports.len());
        }
        // Every version from 1 to the last is on disk, and the scan
        // finds the newest.
        for v in 1..=driver.version() {
            assert!(artifact_path(&dir, v).is_file(), "missing v{v}");
        }
        let (latest, path) = latest_artifact(&dir).expect("readable dir").expect("some");
        assert_eq!(latest, driver.version());
        assert_eq!(path, artifact_path(&dir, driver.version()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_events_are_fully_ingested_and_users_admitted() {
        // 6 epochs x 2+ rounds each: the clock comfortably outruns the
        // stream horizon (8), so every event comes due before the end.
        let (mut driver, dir) = pipeline("ingest", 6);
        let total = driver.stream().events().len();
        let baseline = driver.session().baseline_users();
        driver.run().expect("pipeline runs");
        assert_eq!(driver.session().ingested_events(), total as u64);
        assert_eq!(driver.stream().remaining(), 0);
        assert_eq!(driver.session().split().num_users(), baseline + 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finished_driver_reports_none() {
        let (mut driver, dir) = pipeline("drain", 1);
        driver.run().expect("pipeline runs");
        assert!(driver.run_cycle().expect("no I/O after finish").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
