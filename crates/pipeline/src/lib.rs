//! # hf_pipeline — the online training-to-serving pipeline
//!
//! Closes the loop the other crates leave open: `hetefedrec_core`
//! trains on a frozen split, `hf_serve` ranks from a frozen artifact,
//! `hf_net` serves that artifact over TCP — and nothing moved new
//! interactions from the world into a running session or fresh models
//! back to a running server. This crate does both, std-only like the
//! rest of the workspace:
//!
//! * [`stream`] — timestamped interaction events
//!   ([`InteractionStream`]) and the deterministic [`ReplayStream`]
//!   that carves a held-out "future" from a dataset and replays it on
//!   the session's simulated clock;
//! * [`driver`] — [`PipelineDriver`]: poll → [`Session::ingest`] →
//!   train → export a *versioned* `artifact-v{N}.hfab` file on a fixed
//!   cycle cadence ([`latest_artifact`] re-resolves the newest for a
//!   hot-swapping server's reload closure);
//! * [`drift`] — [`drift_report`]: replay the held-out events against
//!   a stale and a fresh artifact and price the staleness (NDCG@k
//!   delta, mean rank displacement).
//!
//! The `hf-pipeline` binary strings all of it together against a live
//! [`hf_net`] server: train, export, `Reload` over the wire, and
//! verify that responses flip from version stamp `N` to `N + 1` with
//! no request dropped.
//!
//! Determinism inherits from the layers below: fixed-seed pipelines
//! emit bit-identical artifact sequences across thread counts, and a
//! mid-stream checkpoint (plus [`ReplayStream::skip`] re-alignment)
//! resumes them exactly — `tests/pipeline_determinism.rs` holds both
//! properties.
//!
//! [`Session::ingest`]: hetefedrec_core::Session::ingest

#![warn(missing_docs)]

pub mod drift;
pub mod driver;
pub mod stream;

pub use drift::{drift_report, DriftReport};
pub use driver::{artifact_path, latest_artifact, CycleReport, PipelineConfig, PipelineDriver};
pub use stream::{InteractionStream, ReplayConfig, ReplayStream, StreamEvent};
