//! Deterministic interaction streams feeding a running session.
//!
//! A stream yields timestamped `(user, item)` interaction events; the
//! [`PipelineDriver`](crate::PipelineDriver) polls it against the
//! session's simulated clock at each cycle boundary and hands the due
//! events to [`Session::ingest`](hetefedrec_core::Session::ingest).
//!
//! The shipped implementation, [`ReplayStream`], is a *replay* source:
//! it carves a deterministic "future" out of an [`ImplicitDataset`] —
//! a fraction of every retained user's interactions plus the trailing
//! users in their entirety — and replays it over a logical-time
//! horizon. The same held-out events double as the post-cutoff
//! evaluation set for [`drift_report`](crate::drift_report): they are
//! exactly the interactions the stale artifact has never seen.
//!
//! # Ordering contract
//!
//! `Session::ingest` admits a brand-new user only when its id equals
//! the current user count, so a stream must order events such that the
//! first event of new user `u` precedes the first event of new user
//! `u + 1` and no event references a user beyond the next unadmitted
//! id. [`ReplayStream::replay`] constructs such an order by inserting
//! each new user's event block at a deterministic position in the
//! shuffled existing-user event list, blocks in increasing user order.

use hf_dataset::types::{ItemId, UserId};
use hf_dataset::ImplicitDataset;
use hf_tensor::rng::{shuffle, stream, SeedStream};

/// One timestamped interaction delivered by a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Logical arrival time, on the session's simulated clock.
    pub time: u64,
    /// Interacting user (may be one past the session's current user
    /// count: that event admits the user).
    pub user: UserId,
    /// Interacted item.
    pub item: ItemId,
}

/// A source of timestamped interaction events.
pub trait InteractionStream {
    /// Returns every not-yet-delivered event with `time <= clock`, in
    /// arrival order. Delivery is destructive: an event is returned at
    /// most once.
    fn poll(&mut self, clock: u64) -> Vec<StreamEvent>;

    /// Number of events not yet delivered.
    fn remaining(&self) -> usize;
}

/// Shape of the held-out "future" a [`ReplayStream`] replays.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Fraction of each retained user's interactions held out as
    /// stream events (each user always keeps at least one interaction
    /// in the base split).
    pub item_frac: f64,
    /// Number of trailing users withheld from the base dataset
    /// entirely; their events admit them as new users mid-stream.
    pub new_users: usize,
    /// Timestamp of the first event.
    pub start: u64,
    /// Events are spread uniformly over `[start, start + horizon)`.
    pub horizon: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            item_frac: 0.2,
            new_users: 0,
            start: 1,
            horizon: 16,
        }
    }
}

/// A deterministic replay of held-out interactions.
///
/// Built by [`ReplayStream::replay`], which also returns the pre-cutoff
/// base dataset the session should be trained (and split) on. The full
/// event list stays readable after delivery ([`ReplayStream::events`])
/// so a resumed pipeline can re-align ([`ReplayStream::skip`]) and a
/// drift evaluation can replay the same future against two artifacts.
#[derive(Clone, Debug)]
pub struct ReplayStream {
    events: Vec<StreamEvent>,
    cursor: usize,
}

impl ReplayStream {
    /// Wraps an explicit event list (must be sorted by `time` and obey
    /// the new-user ordering contract of the module docs).
    ///
    /// # Panics
    /// Panics if timestamps are not non-decreasing.
    pub fn new(events: Vec<StreamEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].time <= w[1].time),
            "stream events must be sorted by time"
        );
        Self { events, cursor: 0 }
    }

    /// Splits `dataset` into a pre-cutoff base dataset and the stream
    /// of post-cutoff events, deterministically in `seed`.
    ///
    /// Holdout: the last `cfg.new_users` users are withheld entirely
    /// (their ids become the new-user ids `base_users..`); every other
    /// user contributes `floor(len * cfg.item_frac)` interactions,
    /// chosen by a per-user seeded shuffle, capped so at least one
    /// interaction stays in the base. Existing-user events are shuffled
    /// into one arrival order and each new user's block is inserted at
    /// an evenly-spaced position, in increasing user order; timestamps
    /// then spread uniformly over `[cfg.start, cfg.start + cfg.horizon)`.
    ///
    /// # Panics
    /// Panics if `cfg.new_users >= dataset.num_users()` or `item_frac`
    /// is not in `[0, 1]`.
    pub fn replay(
        dataset: &ImplicitDataset,
        cfg: &ReplayConfig,
        seed: u64,
    ) -> (ImplicitDataset, ReplayStream) {
        assert!(
            cfg.new_users < dataset.num_users(),
            "cannot hold out all {} users",
            dataset.num_users()
        );
        assert!(
            (0.0..=1.0).contains(&cfg.item_frac),
            "item_frac must be a fraction, got {}",
            cfg.item_frac
        );
        let base_users = dataset.num_users() - cfg.new_users;

        // Per-user item holdout for the retained users.
        let mut base_lists: Vec<Vec<ItemId>> = Vec::with_capacity(base_users);
        let mut existing: Vec<(UserId, ItemId)> = Vec::new();
        for u in 0..base_users {
            let mut items: Vec<ItemId> = dataset.user(u).items().to_vec();
            let hold =
                ((items.len() as f64 * cfg.item_frac) as usize).min(items.len().saturating_sub(1));
            if hold > 0 {
                let mut rng = stream(seed, SeedStream::Custom(u as u64));
                shuffle(&mut items, &mut rng);
                existing.extend(items.drain(items.len() - hold..).map(|it| (u, it)));
            }
            base_lists.push(items);
        }
        let base = ImplicitDataset::new(dataset.num_items(), base_lists);

        // One global arrival order for the existing-user events; the
        // stream id is offset past any plausible user id so the order
        // draw never collides with a per-user holdout stream.
        let mut rng = stream(seed, SeedStream::Custom((1u64 << 40) | 1));
        shuffle(&mut existing, &mut rng);

        // Insert each new user's block at an evenly-spaced position, in
        // increasing user order (the admission contract).
        let mut merged: Vec<(UserId, ItemId)> = Vec::new();
        let slots = cfg.new_users + 1;
        let mut next = 0usize; // next new user (offset)
        for (i, &pair) in existing.iter().enumerate() {
            while next < cfg.new_users && i >= ((next + 1) * existing.len()) / slots {
                let u = base_users + next;
                merged.extend(dataset.user(u).items().iter().map(|&it| (u, it)));
                next += 1;
            }
            merged.push(pair);
        }
        for u in base_users + next..dataset.num_users() {
            merged.extend(dataset.user(u).items().iter().map(|&it| (u, it)));
        }

        // Spread timestamps over the horizon, non-decreasing.
        let total = merged.len().max(1) as u64;
        let events = merged
            .into_iter()
            .enumerate()
            .map(|(i, (user, item))| StreamEvent {
                time: cfg.start + (i as u64 * cfg.horizon) / total,
                user,
                item,
            })
            .collect();
        (base, ReplayStream::new(events))
    }

    /// The full event list, delivered or not.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// Number of events already delivered by [`InteractionStream::poll`].
    pub fn delivered(&self) -> usize {
        self.cursor
    }

    /// Marks the first `n` events as already delivered — how a resumed
    /// pipeline re-aligns the stream with a checkpointed session's
    /// [`ingested_events`](hetefedrec_core::Session::ingested_events)
    /// count.
    ///
    /// # Panics
    /// Panics if `n` exceeds the event count.
    pub fn skip(&mut self, n: usize) {
        assert!(n <= self.events.len(), "cannot skip past the stream end");
        self.cursor = n;
    }
}

impl InteractionStream for ReplayStream {
    fn poll(&mut self, clock: u64) -> Vec<StreamEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].time <= clock {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_dataset::SyntheticConfig;

    fn data(seed: u64) -> ImplicitDataset {
        SyntheticConfig::tiny().generate(seed)
    }

    fn cfg() -> ReplayConfig {
        ReplayConfig {
            item_frac: 0.25,
            new_users: 3,
            start: 1,
            horizon: 10,
        }
    }

    #[test]
    fn replay_is_deterministic_in_the_seed() {
        let d = data(7);
        let (base_a, stream_a) = ReplayStream::replay(&d, &cfg(), 11);
        let (base_b, stream_b) = ReplayStream::replay(&d, &cfg(), 11);
        assert_eq!(stream_a.events(), stream_b.events());
        for u in 0..base_a.num_users() {
            assert_eq!(base_a.user(u).items(), base_b.user(u).items());
        }
        let (_, stream_c) = ReplayStream::replay(&d, &cfg(), 12);
        assert_ne!(stream_a.events(), stream_c.events());
    }

    #[test]
    fn holdout_conserves_interactions_and_keeps_users_nonempty() {
        let d = data(8);
        let (base, stream) = ReplayStream::replay(&d, &cfg(), 3);
        assert_eq!(base.num_users(), d.num_users() - 3);
        assert_eq!(
            base.num_interactions() + stream.events().len(),
            d.num_interactions()
        );
        for u in 0..base.num_users() {
            assert!(!base.user(u).items().is_empty(), "user {u} lost everything");
            // Every held-out (user, item) really came from the source
            // user and is absent from the base.
            for e in stream.events().iter().filter(|e| e.user == u) {
                assert!(d.user(u).contains(e.item));
                assert!(!base.user(u).contains(e.item));
            }
        }
    }

    #[test]
    fn new_user_blocks_arrive_in_admission_order() {
        let d = data(9);
        let (base, stream) = ReplayStream::replay(&d, &cfg(), 5);
        let first_of = |u: usize| stream.events().iter().position(|e| e.user == u);
        let mut admitted = base.num_users();
        for (i, e) in stream.events().iter().enumerate() {
            if e.user >= admitted {
                // An unseen user must be exactly the next id.
                assert_eq!(e.user, admitted, "event {i} skips a user id");
                admitted += 1;
            }
        }
        assert_eq!(admitted, d.num_users(), "every new user must appear");
        for u in base.num_users()..d.num_users() - 1 {
            assert!(first_of(u) < first_of(u + 1));
        }
    }

    #[test]
    fn timestamps_cover_the_horizon_monotonically() {
        let d = data(10);
        let c = cfg();
        let (_, stream) = ReplayStream::replay(&d, &c, 5);
        let times: Vec<u64> = stream.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times.first(), Some(&c.start));
        assert!(*times.last().unwrap() < c.start + c.horizon);
    }

    #[test]
    fn poll_respects_the_clock_and_delivers_exactly_once() {
        let d = data(11);
        let (_, mut stream) = ReplayStream::replay(&d, &cfg(), 5);
        let total = stream.events().len();
        let early = stream.poll(0);
        assert!(early.is_empty(), "nothing is due before start");
        let mut seen = Vec::new();
        for clock in 0..20 {
            for e in stream.poll(clock) {
                assert!(e.time <= clock);
                seen.push(e);
            }
        }
        assert_eq!(seen.len(), total);
        assert_eq!(seen.as_slice(), stream.events());
        assert_eq!(stream.remaining(), 0);
        assert!(stream.poll(u64::MAX).is_empty());
    }

    #[test]
    fn skip_aligns_a_resumed_stream() {
        let d = data(12);
        let (_, mut a) = ReplayStream::replay(&d, &cfg(), 5);
        let (_, mut b) = ReplayStream::replay(&d, &cfg(), 5);
        let first = a.poll(4);
        b.skip(first.len());
        assert_eq!(a.delivered(), b.delivered());
        assert_eq!(a.poll(u64::MAX), b.poll(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_events_are_rejected() {
        ReplayStream::new(vec![
            StreamEvent {
                time: 2,
                user: 0,
                item: 0,
            },
            StreamEvent {
                time: 1,
                user: 0,
                item: 1,
            },
        ]);
    }
}
