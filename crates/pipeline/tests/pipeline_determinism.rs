//! Pipeline determinism: a fixed-seed pipeline must emit a
//! bit-identical *sequence* of artifact files regardless of
//! parallelism, and a mid-stream checkpoint must resume it exactly.
//!
//! These are the serving-side attribution guarantees: if generation N
//! is not a pure function of (seed, stream, cadence), "this ranking
//! came from artifact vN" names nothing reproducible.

use hetefedrec_core::{Ablation, Mode, Session, SessionBuilder, Strategy, TrainConfig};
use hf_dataset::{SplitDataset, SyntheticConfig};
use hf_models::ModelKind;
use hf_pipeline::{
    artifact_path, InteractionStream, PipelineConfig, PipelineDriver, ReplayConfig, ReplayStream,
};
use std::path::{Path, PathBuf};

const SEED: u64 = 2024;

fn replay_cfg() -> ReplayConfig {
    ReplayConfig {
        item_frac: 0.2,
        new_users: 2,
        start: 1,
        horizon: 8,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hf-pipeline-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_cfg(dir: &Path) -> PipelineConfig {
    PipelineConfig {
        rounds_per_cycle: 3,
        export_every: 2,
        artifact_dir: dir.to_path_buf(),
    }
}

fn fresh_parts(mode: Mode, threads: usize) -> (Session, ReplayStream) {
    let data = SyntheticConfig::tiny().generate(SEED);
    let (base, stream) = ReplayStream::replay(&data, &replay_cfg(), SEED);
    let split = SplitDataset::paper_split(&base, SEED);
    let mut cfg = TrainConfig::test_default(ModelKind::Ncf);
    cfg.epochs = 6;
    cfg.threads = threads;
    cfg.mode = mode;
    let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .eval_every(0)
        .build()
        .expect("valid config");
    (session, stream)
}

/// Runs a full pipeline and returns the bytes of every exported
/// generation, in version order.
fn artifact_sequence(mode: Mode, threads: usize, tag: &str) -> Vec<Vec<u8>> {
    let dir = tempdir(tag);
    let (session, stream) = fresh_parts(mode, threads);
    let mut driver =
        PipelineDriver::new(session, stream, pipeline_cfg(&dir)).expect("initial export");
    driver.run().expect("pipeline runs");
    assert_eq!(driver.stream().remaining(), 0, "stream fully delivered");
    let bytes = read_sequence(&dir, driver.version());
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

fn read_sequence(dir: &Path, last: u64) -> Vec<Vec<u8>> {
    (1..=last)
        .map(|v| std::fs::read(artifact_path(dir, v)).expect("artifact on disk"))
        .collect()
}

fn assert_sequences_match(a: &[Vec<u8>], b: &[Vec<u8>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: generation counts differ");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(x == y, "{what}: artifact v{} differs", v + 1);
    }
}

#[test]
fn sync_pipeline_is_bit_identical_across_thread_counts() {
    let one = artifact_sequence(Mode::Sync, 1, "sync-t1");
    assert!(
        one.len() >= 3,
        "expected several generations, got {}",
        one.len()
    );
    let two = artifact_sequence(Mode::Sync, 2, "sync-t2");
    let eight = artifact_sequence(Mode::Sync, 8, "sync-t8");
    assert_sequences_match(&one, &two, "1 vs 2 threads");
    assert_sequences_match(&one, &eight, "1 vs 8 threads");
}

#[test]
fn async_pipeline_is_bit_identical_across_thread_counts() {
    let one = artifact_sequence(Mode::Async, 1, "async-t1");
    assert!(
        one.len() >= 2,
        "expected several generations, got {}",
        one.len()
    );
    let two = artifact_sequence(Mode::Async, 2, "async-t2");
    assert_sequences_match(&one, &two, "async 1 vs 2 threads");
}

#[test]
fn mid_stream_checkpoint_resumes_the_exact_artifact_sequence() {
    // Reference: one uninterrupted run.
    let reference = artifact_sequence(Mode::Sync, 1, "resume-ref");

    // Interrupted run: a few cycles, checkpoint, tear down.
    let dir = tempdir("resume-cut");
    let (session, stream) = fresh_parts(Mode::Sync, 1);
    let mut driver =
        PipelineDriver::new(session, stream, pipeline_cfg(&dir)).expect("initial export");
    for _ in 0..3 {
        driver
            .run_cycle()
            .expect("cycle runs")
            .expect("not finished yet");
    }
    let (cycles, version) = (driver.cycles(), driver.version());
    let (session, _) = driver.into_parts();
    let ingested = session.ingested_events();
    assert!(ingested > 0, "the cut must land mid-stream");
    assert!(
        session.split().num_users() > session.baseline_users(),
        "the cut must land after an admission"
    );
    let json = session.checkpoint();
    drop(session);

    // Resume in a "new process": rebuild the base split, replay the
    // ingested prefix of the stream into it, restore, re-align the
    // stream cursor, and continue into the same artifact directory.
    let data = SyntheticConfig::tiny().generate(SEED);
    let (base, mut stream) = ReplayStream::replay(&data, &replay_cfg(), SEED);
    let mut split = SplitDataset::paper_split(&base, SEED);
    for e in &stream.events()[..ingested as usize] {
        split.ingest(e.user, e.item);
    }
    let session = SessionBuilder::from_checkpoint(&json, split)
        .expect("checkpoint parses")
        .eval_every(0)
        .build()
        .expect("checkpoint restores");
    assert_eq!(session.ingested_events(), ingested);
    stream.skip(ingested as usize);
    let mut driver =
        PipelineDriver::with_progress(session, stream, pipeline_cfg(&dir), cycles, version);
    driver.run().expect("resumed pipeline runs");

    let resumed = read_sequence(&dir, driver.version());
    let _ = std::fs::remove_dir_all(&dir);
    assert_sequences_match(&reference, &resumed, "uninterrupted vs resumed");
}
