//! Toy Diffie–Hellman key agreement over the Mersenne prime 2^61 − 1.
//!
//! Each client draws a secret exponent and publishes `g^sk mod P`; any
//! pair then shares `g^(sk_i · sk_j) mod P` without communication beyond
//! the public keys. The parameters here are **structurally real but
//! cryptographically toy** — a 61-bit group is trivially breakable and
//! exists so the protocol shape (public keys on the wire, secrets that
//! can be escrowed and reconstructed for dropout recovery) is exercised
//! end to end inside the simulation. Swapping in a real group is a
//! local change to this module.

use hf_tensor::rng::Rng;

/// The group modulus: the Mersenne prime 2^61 − 1.
pub const DH_PRIME: u64 = (1u64 << 61) - 1;

/// A fixed generator of a large subgroup mod [`DH_PRIME`].
pub const DH_GENERATOR: u64 = 7;

/// `base^exp mod modulus` via square-and-multiply in u128.
pub fn modpow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    debug_assert!(modulus > 1);
    base %= modulus;
    let mut acc: u128 = 1;
    let m = modulus as u128;
    let mut b = base as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    acc as u64
}

/// One client's key-agreement pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyPair {
    /// Secret exponent (escrowed via Shamir shares for dropout recovery).
    pub secret: u64,
    /// `g^secret mod P`, shared with every group member.
    pub public: u64,
}

/// Draws a fresh keypair from the supplied deterministic stream.
pub fn keypair(rng: &mut impl Rng) -> KeyPair {
    // Exponents in [2, P-1); avoids the degenerate 0/1 exponents.
    let secret = rng.gen_range(2u64..DH_PRIME - 1);
    KeyPair {
        secret,
        public: modpow(DH_GENERATOR, secret, DH_PRIME),
    }
}

/// The pair secret `their_public^my_secret mod P` — symmetric in the two
/// parties, and recomputable by the server from a reconstructed secret
/// plus the surviving peer's public key.
pub fn shared_secret(my_secret: u64, their_public: u64) -> u64 {
    modpow(their_public, my_secret, DH_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, SeedStream};

    #[test]
    fn modpow_matches_naive() {
        assert_eq!(modpow(7, 0, 97), 1);
        assert_eq!(modpow(7, 1, 97), 7);
        let mut acc = 1u64;
        for _ in 0..13 {
            acc = acc * 7 % 97;
        }
        assert_eq!(modpow(7, 13, 97), acc);
    }

    #[test]
    fn key_agreement_is_symmetric() {
        let mut rng = stream(42, SeedStream::SecAggSecret);
        let a = keypair(&mut rng);
        let b = keypair(&mut rng);
        assert_ne!(a, b);
        let kab = shared_secret(a.secret, b.public);
        let kba = shared_secret(b.secret, a.public);
        assert_eq!(kab, kba);
        // A third party lands somewhere else.
        let c = keypair(&mut rng);
        assert_ne!(shared_secret(c.secret, b.public), kab);
    }
}
