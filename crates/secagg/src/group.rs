//! Per-group protocol state: key agreement, escrow, masking, recovery.
//!
//! A [`PreparedGroup`] is the result of one group's setup phase for one
//! round: every member has drawn a key-agreement pair, published its
//! public key, and escrowed its secret as Shamir shares across its
//! peers. From that state the group can (a) mask each member's payload,
//! (b) reconstruct a dropped member's secret from the shares its
//! *surviving* peers hold, and (c) strip the orphaned masks a dropped
//! member left in the aggregate.
//!
//! The struct is fully serializable (checkpoint v3 carries prepared
//! setups for pending cohorts), and the recovery path is honest: it
//! only consumes shares whose holders survived, fails with a typed
//! error below the threshold, and verifies the reconstructed secret
//! against the member's published public key.

use crate::dh::{keypair, modpow, shared_secret, DH_GENERATOR, DH_PRIME};
use crate::mask::apply_pair_mask;
use crate::shamir::{reconstruct_secret, split_secret, SeedShare, ShamirError};
use hf_tensor::rng::Rng;
use hf_tensor::ser::{obj, JsonError, JsonValue, ToJson};
use std::fmt;

/// Errors from dropout recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The uid is not a member of this group.
    UnknownMember {
        /// The unknown uid.
        uid: u64,
    },
    /// Too few surviving share-holders to reach the threshold.
    InsufficientShares {
        /// The dropped member whose secret cannot be reconstructed.
        owner: u64,
        /// Usable shares (held by survivors).
        have: usize,
        /// Threshold required.
        need: usize,
    },
    /// Share interpolation itself failed.
    Shamir(ShamirError),
    /// The reconstructed secret does not match the member's public key.
    WrongSecret {
        /// The member whose escrow was inconsistent.
        owner: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::UnknownMember { uid } => write!(f, "uid {uid} is not a group member"),
            RecoveryError::InsufficientShares { owner, have, need } => {
                write!(f, "only {have} of {need} shares survive for member {owner}")
            }
            RecoveryError::Shamir(e) => write!(f, "share reconstruction failed: {e}"),
            RecoveryError::WrongSecret { owner } => {
                write!(
                    f,
                    "reconstructed secret for {owner} fails the public-key check"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<ShamirError> for RecoveryError {
    fn from(e: ShamirError) -> Self {
        RecoveryError::Shamir(e)
    }
}

/// One group's completed setup for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedGroup {
    /// The round this setup belongs to (keys and escrow are per-round).
    pub round: u64,
    /// Member uids, strictly increasing.
    pub members: Vec<u64>,
    /// Published public keys, aligned with `members`.
    pub publics: Vec<u64>,
    /// Key-agreement secrets, aligned with `members`. Held here because
    /// the simulation hosts every client in-process; the recovery path
    /// deliberately never reads them (it reconstructs from escrow).
    pub secrets: Vec<u64>,
    /// Shares needed to reconstruct one member's secret (majority of its
    /// peers); 0 for groups too small to pair.
    pub threshold: usize,
    /// `escrow[i][k]` = share of member i's secret held by its k-th peer
    /// (peers = members minus i, in member order).
    pub escrow: Vec<Vec<SeedShare>>,
}

impl PreparedGroup {
    /// Runs the setup phase: keypairs, public-key exchange, and Shamir
    /// escrow of every secret across the member's peers. `members` must
    /// be strictly increasing (sort + dedup upstream) and non-empty.
    pub fn setup(round: u64, members: &[u64], rng: &mut impl Rng) -> Self {
        assert!(!members.is_empty(), "secagg group needs at least 1 member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "group members must be strictly increasing"
        );
        let n = members.len();
        let pairs: Vec<_> = (0..n).map(|_| keypair(rng)).collect();
        // Each secret splits across the n-1 peers; a majority of peers
        // must survive to recover it.
        let threshold = if n > 1 { (n - 1) / 2 + 1 } else { 0 };
        let escrow = if n > 1 {
            pairs
                .iter()
                .map(|kp| {
                    split_secret(kp.secret, n - 1, threshold, rng)
                        .expect("n-1 peers with majority threshold is a valid split")
                })
                .collect()
        } else {
            vec![Vec::new()]
        };
        Self {
            round,
            members: members.to_vec(),
            publics: pairs.iter().map(|kp| kp.public).collect(),
            secrets: pairs.iter().map(|kp| kp.secret).collect(),
            threshold,
            escrow,
        }
    }

    /// Members in the group.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Index of `uid` in the member list.
    pub fn index_of(&self, uid: u64) -> Option<usize> {
        self.members.binary_search(&uid).ok()
    }

    /// The symmetric pair secret between members `i` and `j`.
    pub fn pair_secret(&self, i: usize, j: usize) -> u64 {
        shared_secret(self.secrets[i], self.publics[j])
    }

    /// Applies all of member `uid`'s pairwise masks to its payload: the
    /// lower uid of each pair adds the stream, the higher subtracts it.
    pub fn mask_payload(&self, uid: u64, payload: &mut [u64]) {
        let i = self
            .index_of(uid)
            .unwrap_or_else(|| panic!("uid {uid} not in secagg group"));
        for j in 0..self.members.len() {
            if j == i {
                continue;
            }
            let k = self.pair_secret(i, j);
            apply_pair_mask(payload, k, self.round, self.members[i] < self.members[j]);
        }
    }

    /// Reconstructs a dropped member's secret from the shares held by
    /// surviving peers (never from the stored secret), verifying it
    /// against the published public key.
    pub fn recover_secret(&self, dropped: u64, survivors: &[u64]) -> Result<u64, RecoveryError> {
        let d = self
            .index_of(dropped)
            .ok_or(RecoveryError::UnknownMember { uid: dropped })?;
        let peers: Vec<u64> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != dropped)
            .collect();
        let usable: Vec<SeedShare> = peers
            .iter()
            .enumerate()
            .filter(|(_, peer)| survivors.contains(peer))
            .map(|(k, _)| self.escrow[d][k])
            .collect();
        if usable.len() < self.threshold || self.threshold == 0 {
            return Err(RecoveryError::InsufficientShares {
                owner: dropped,
                have: usable.len(),
                need: self.threshold.max(1),
            });
        }
        let secret = reconstruct_secret(&usable, self.threshold)?;
        if modpow(DH_GENERATOR, secret, DH_PRIME) != self.publics[d] {
            return Err(RecoveryError::WrongSecret { owner: dropped });
        }
        Ok(secret)
    }

    /// Strips the orphaned masks of every dropped member from the ring
    /// aggregate of the survivors' payloads. Returns how many dropped
    /// members were recovered.
    ///
    /// For dropped `d` and survivor `v`: `v` applied `±mask(k_vd)` to its
    /// own upload (`+` when `v < d`), and `d`'s cancelling half never
    /// arrived, so the aggregate carries exactly that term — subtract it
    /// when `v < d`, add it back when `v > d`. Masks between two dropped
    /// members appear in no surviving upload and need no correction.
    pub fn unmask_dropped(
        &self,
        aggregate: &mut [u64],
        dropped: &[u64],
        survivors: &[u64],
    ) -> Result<usize, RecoveryError> {
        let mut recovered = 0;
        for &duid in dropped {
            let secret = self.recover_secret(duid, survivors)?;
            for &v in survivors {
                let vi = self
                    .index_of(v)
                    .ok_or(RecoveryError::UnknownMember { uid: v })?;
                let k = shared_secret(secret, self.publics[vi]);
                apply_pair_mask(aggregate, k, self.round, v >= duid);
            }
            recovered += 1;
        }
        Ok(recovered)
    }

    /// Bytes this setup moved over the (simulated) wire: public keys to
    /// every peer plus one escrowed share bundle per (owner, holder)
    /// pair, at the [`crate::wire::ShareBundle`] encoded size.
    pub fn setup_bytes(&self) -> u64 {
        let n = self.members.len() as u64;
        if n < 2 {
            return 0;
        }
        // Each member broadcasts its 8-byte public key to n-1 peers and
        // sends one 34-byte ShareBundle to each peer.
        n * (n - 1) * (8 + crate::wire::ShareBundle::ENCODED_LEN as u64)
    }

    /// Restores a checkpointed group.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let members = v.get("members")?.as_u64_vec()?;
        let publics = v.get("publics")?.as_u64_vec()?;
        let secrets = v.get("secrets")?.as_u64_vec()?;
        if publics.len() != members.len() || secrets.len() != members.len() {
            return Err(JsonError::msg("secagg group key arrays disagree on size"));
        }
        let mut escrow = Vec::new();
        for per_member in v.get("escrow")?.as_arr()? {
            let mut shares = Vec::new();
            for pair in per_member.as_arr()? {
                let pair = pair.as_u64_vec()?;
                let [x, word] = pair[..] else {
                    return Err(JsonError::msg("escrow share must be [x, word]"));
                };
                if x == 0 || x > 255 {
                    return Err(JsonError::msg("escrow share point out of range"));
                }
                shares.push(SeedShare::from_parts(x as u8, word));
            }
            escrow.push(shares);
        }
        if escrow.len() != members.len() {
            return Err(JsonError::msg("secagg escrow disagrees with member count"));
        }
        Ok(Self {
            round: v.get("round")?.as_u64()?,
            members,
            publics,
            secrets,
            threshold: v.get("threshold")?.as_usize()?,
            escrow,
        })
    }
}

impl ToJson for PreparedGroup {
    fn write_json(&self, out: &mut String) {
        let escrow: Vec<Vec<[u64; 2]>> = self
            .escrow
            .iter()
            .map(|shares| {
                shares
                    .iter()
                    .map(|s| [s.x as u64, s.payload_word()])
                    .collect()
            })
            .collect();
        obj(out, |o| {
            o.field("round", &self.round)
                .field("members", &self.members)
                .field("publics", &self.publics)
                .field("secrets", &self.secrets)
                .field("threshold", &self.threshold)
                .field("escrow", &escrow);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask_words;
    use hf_tensor::rng::{stream, SeedStream};

    fn ring_sum(payloads: &[Vec<u64>]) -> Vec<u64> {
        let mut acc = vec![0u64; payloads[0].len()];
        for p in payloads {
            for (a, w) in acc.iter_mut().zip(p) {
                *a = a.wrapping_add(*w);
            }
        }
        acc
    }

    #[test]
    fn full_participation_masks_cancel_exactly() {
        let mut rng = stream(1, SeedStream::SecAggSecret);
        let members = [3u64, 8, 11, 20, 21];
        let group = PreparedGroup::setup(5, &members, &mut rng);
        let len = 33;
        let plain: Vec<Vec<u64>> = members
            .iter()
            .map(|&m| mask_words(m ^ 0xabcd, 0, len))
            .collect();
        let masked: Vec<Vec<u64>> = members
            .iter()
            .zip(&plain)
            .map(|(&m, p)| {
                let mut p = p.clone();
                group.mask_payload(m, &mut p);
                p
            })
            .collect();
        assert_ne!(masked[0], plain[0], "payloads must actually be masked");
        assert_eq!(ring_sum(&masked), ring_sum(&plain));
    }

    #[test]
    fn dropout_recovery_restores_the_survivor_sum() {
        let mut rng = stream(2, SeedStream::SecAggSecret);
        let members = [1u64, 4, 9, 16, 25, 36];
        let group = PreparedGroup::setup(9, &members, &mut rng);
        let len = 17;
        let plain: Vec<Vec<u64>> = members
            .iter()
            .map(|&m| mask_words(m ^ 0x1234, 1, len))
            .collect();
        // Members 4 and 25 drop after masks were committed.
        let dropped = [4u64, 25];
        let survivors: Vec<u64> = members
            .iter()
            .copied()
            .filter(|m| !dropped.contains(m))
            .collect();
        let masked: Vec<Vec<u64>> = survivors
            .iter()
            .map(|&m| {
                let i = members.iter().position(|&x| x == m).unwrap();
                let mut p = plain[i].clone();
                group.mask_payload(m, &mut p);
                p
            })
            .collect();
        let mut agg = ring_sum(&masked);
        let expected = ring_sum(
            &survivors
                .iter()
                .map(|&m| plain[members.iter().position(|&x| x == m).unwrap()].clone())
                .collect::<Vec<_>>(),
        );
        assert_ne!(agg, expected, "orphaned masks must be present pre-recovery");
        let recovered = group
            .unmask_dropped(&mut agg, &dropped, &survivors)
            .unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(agg, expected);
    }

    #[test]
    fn recovery_below_threshold_is_a_typed_error() {
        let mut rng = stream(3, SeedStream::SecAggSecret);
        let members = [1u64, 2, 3, 4, 5];
        let group = PreparedGroup::setup(0, &members, &mut rng);
        // threshold = majority of 4 peers = 3; only 1 survivor remains.
        let err = group.recover_secret(1, &[2]).unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::InsufficientShares {
                owner: 1,
                have: 1,
                need: 3
            }
        ));
        assert!(matches!(
            group.recover_secret(99, &members),
            Err(RecoveryError::UnknownMember { uid: 99 })
        ));
    }

    #[test]
    fn recovered_secret_passes_the_public_key_check() {
        let mut rng = stream(4, SeedStream::SecAggSecret);
        let members = [10u64, 20, 30, 40];
        let group = PreparedGroup::setup(2, &members, &mut rng);
        let sk = group.recover_secret(20, &[10, 30, 40]).unwrap();
        let i = group.index_of(20).unwrap();
        assert_eq!(sk, group.secrets[i]);
    }

    #[test]
    fn singleton_group_needs_no_masks() {
        let mut rng = stream(5, SeedStream::SecAggSecret);
        let group = PreparedGroup::setup(0, &[7], &mut rng);
        let mut p = vec![1u64, 2, 3];
        group.mask_payload(7, &mut p);
        assert_eq!(p, vec![1, 2, 3]);
        assert_eq!(group.setup_bytes(), 0);
    }

    #[test]
    fn group_json_round_trips_exactly() {
        use hf_tensor::ser::parse_json;
        let mut rng = stream(6, SeedStream::SecAggSecret);
        let group = PreparedGroup::setup(11, &[2, 3, 5, 8], &mut rng);
        let json = group.to_json();
        let restored = PreparedGroup::from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(restored, group);
        assert_eq!(restored.to_json(), json);
    }
}
