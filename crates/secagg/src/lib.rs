//! # hf_secagg
//!
//! Dropout-robust pairwise-masked secure aggregation for the HeteFedRec
//! upload path (DESIGN.md §10).
//!
//! The server only ever consumes the **sum** of client deltas (Eq. 8/10
//! of the paper), which is exactly the shape pairwise masking protects:
//! each client quantizes its delta into a u64 additive ring
//! ([`quant`]), derives one cancelling mask per peer from the
//! purpose-keyed RNG streams ([`mask`]), and uploads a blind vector the
//! server can only use in aggregate. Key agreement is a toy-parameter
//! Diffie–Hellman exchange ([`dh`]), and every secret is escrowed as
//! Shamir t-of-n shares across the member's peers ([`shamir`]) so the
//! group survives mid-round dropout: survivors reveal the dropped
//! member's shares and the server strips its orphaned masks
//! ([`group`]). Wire shapes for both message kinds live in [`wire`].
//!
//! Everything here is deterministic given the session seed, fully
//! serializable for checkpointing, and exact: ring arithmetic wraps, so
//! the unmasked aggregate is bit-identical to the plaintext quantized
//! sum regardless of thread count or summation order.

#![warn(missing_docs)]

pub mod dh;
pub mod group;
pub mod mask;
pub mod quant;
pub mod shamir;
pub mod wire;

pub use dh::{keypair, modpow, shared_secret, KeyPair, DH_GENERATOR, DH_PRIME};
pub use group::{PreparedGroup, RecoveryError};
pub use mask::{apply_pair_mask, mask_words, PayloadLayout};
pub use quant::{QuantError, Quantizer, MAX_SCALE_BITS};
pub use shamir::{reconstruct_secret, split_secret, SeedShare, ShamirError};
pub use wire::{MaskedUpload, SecAggWireError, ShareBundle};
