//! Ring payload layout and pairwise mask expansion.
//!
//! Every client in a secure-aggregation group uploads one **dense** u64
//! ring vector with a group-wide [`PayloadLayout`] — dense, because a
//! sparse encoding would leak which items a client touched. The layout
//! packs, in order:
//!
//! 1. item deltas, `num_items × width` row-major ring words;
//! 2. per-item contributor counts, `num_items` words (a masked 0/1
//!    indicator per client, so count normalization survives without
//!    revealing any individual interaction set);
//! 3. per tier τ ∈ {S, M, L}: `theta_lens[τ]` predictor-delta words,
//!    one quantized aggregation-weight word, one contributor-count word.
//!
//! Masks are expanded from the purpose-keyed RNG: pair secret `k` and
//! round `r` select `SeedStream::SecAggMask { round: r }`, and the lower
//! uid adds the stream while the higher subtracts it, so masks cancel
//! exactly in the wrapping-u64 aggregate.

use hf_tensor::rng::{stream, Rng, SeedStream};

/// Shape of one group's dense ring payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayloadLayout {
    /// Item-table rows carried (the full padded table).
    pub num_items: usize,
    /// Embedding width of the group's table slice.
    pub width: usize,
    /// Flattened predictor lengths per tier (0 when a tier is absent).
    pub theta_lens: [usize; 3],
}

impl PayloadLayout {
    /// Total ring words in a payload with this layout.
    pub fn len(&self) -> usize {
        self.num_items * (self.width + 1) + self.theta_lens.iter().sum::<usize>() + 6
    }

    /// `true` when the payload would carry nothing (degenerate).
    pub fn is_empty(&self) -> bool {
        self.num_items == 0 && self.theta_lens.iter().all(|&l| l == 0)
    }

    /// Offset of the item-delta block (row-major `num_items × width`).
    pub fn item_delta_offset(&self) -> usize {
        0
    }

    /// Offset of the per-item contributor-count block.
    pub fn item_count_offset(&self) -> usize {
        self.num_items * self.width
    }

    /// Offset of tier `t`'s predictor-delta block.
    pub fn theta_offset(&self, t: usize) -> usize {
        let mut off = self.num_items * (self.width + 1);
        for lens in &self.theta_lens[..t] {
            off += lens + 2;
        }
        off
    }

    /// Offset of tier `t`'s quantized aggregation-weight word.
    pub fn theta_weight_offset(&self, t: usize) -> usize {
        self.theta_offset(t) + self.theta_lens[t]
    }

    /// Offset of tier `t`'s contributor-count word.
    pub fn theta_count_offset(&self, t: usize) -> usize {
        self.theta_weight_offset(t) + 1
    }
}

/// Expands the pairwise mask stream for `(pair_secret, round)` to `len`
/// words. Exposed for tests; hot paths use [`apply_pair_mask`] to avoid
/// the intermediate allocation.
pub fn mask_words(pair_secret: u64, round: u64, len: usize) -> Vec<u64> {
    let mut rng = stream(pair_secret, SeedStream::SecAggMask { round });
    (0..len).map(|_| rng.next_u64()).collect()
}

/// Adds (`add = true`) or subtracts the pair's mask stream into `payload`
/// with wrapping ring arithmetic.
pub fn apply_pair_mask(payload: &mut [u64], pair_secret: u64, round: u64, add: bool) {
    let mut rng = stream(pair_secret, SeedStream::SecAggMask { round });
    if add {
        for w in payload.iter_mut() {
            *w = w.wrapping_add(rng.next_u64());
        }
    } else {
        for w in payload.iter_mut() {
            *w = w.wrapping_sub(rng.next_u64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_offsets_tile_the_payload_exactly() {
        let l = PayloadLayout {
            num_items: 10,
            width: 4,
            theta_lens: [3, 5, 7],
        };
        assert_eq!(l.item_delta_offset(), 0);
        assert_eq!(l.item_count_offset(), 40);
        assert_eq!(l.theta_offset(0), 50);
        assert_eq!(l.theta_weight_offset(0), 53);
        assert_eq!(l.theta_count_offset(0), 54);
        assert_eq!(l.theta_offset(1), 55);
        assert_eq!(l.theta_offset(2), 62);
        assert_eq!(l.theta_count_offset(2), 70);
        assert_eq!(l.len(), 71);
        assert!(!l.is_empty());
    }

    #[test]
    fn add_then_subtract_cancels_exactly() {
        let original: Vec<u64> = (0..64).map(|i| i * 0x9e37_79b9).collect();
        let mut payload = original.clone();
        apply_pair_mask(&mut payload, 0xdead_beef, 3, true);
        assert_ne!(payload, original, "mask must actually change the payload");
        apply_pair_mask(&mut payload, 0xdead_beef, 3, false);
        assert_eq!(payload, original);
    }

    #[test]
    fn mask_streams_differ_per_round_and_secret() {
        let a = mask_words(1, 0, 8);
        assert_eq!(a, mask_words(1, 0, 8));
        assert_ne!(a, mask_words(1, 1, 8));
        assert_ne!(a, mask_words(2, 0, 8));
    }
}
