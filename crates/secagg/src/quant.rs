//! Fixed-point quantization into the u64 additive ring.
//!
//! Floats cannot cancel bit-exactly under reordering; ring integers can.
//! Every secure-aggregation payload is therefore quantized client-side:
//! `q = round(x · 2^scale_bits)` saturated into `i64` and carried as its
//! two's-complement `u64` image. Ring addition is `wrapping_add`, which
//! is associative and commutative, so the aggregate is independent of
//! summation order and masks cancel exactly.
//!
//! Non-finite inputs are a client-side bug, not data; they are rejected
//! with a typed error instead of being silently encoded as zero (the
//! lesson from the PR 3 NaN-swallowing fix).

use std::fmt;

/// Errors from fixed-point encoding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantError {
    /// The input was NaN or ±infinity.
    NonFinite {
        /// The offending value (NaN compares unequal; stored for Display).
        value: f32,
    },
    /// `scale_bits` outside the supported `1..=30` range.
    BadScaleBits {
        /// The rejected bit count.
        bits: u32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFinite { value } => {
                write!(f, "cannot quantize non-finite value {value}")
            }
            QuantError::BadScaleBits { bits } => {
                write!(f, "scale_bits must be in 1..=30, got {bits}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Maximum supported `scale_bits` (an `f32` has 24 mantissa bits; 30
/// already exceeds any useful delta precision).
pub const MAX_SCALE_BITS: u32 = 30;

/// Fixed-point codec between `f32` deltas and u64 ring elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quantizer {
    scale_bits: u32,
}

impl Quantizer {
    /// A codec with `2^scale_bits` resolution. `scale_bits` must lie in
    /// `1..=`[`MAX_SCALE_BITS`].
    pub fn new(scale_bits: u32) -> Result<Self, QuantError> {
        if scale_bits == 0 || scale_bits > MAX_SCALE_BITS {
            return Err(QuantError::BadScaleBits { bits: scale_bits });
        }
        Ok(Self { scale_bits })
    }

    /// The configured scale exponent.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    fn scale(&self) -> f64 {
        (1u64 << self.scale_bits) as f64
    }

    /// Encodes one delta into the ring. Saturates at the `i64` boundary;
    /// rejects NaN/±inf with a typed error.
    pub fn encode(&self, x: f32) -> Result<u64, QuantError> {
        if !x.is_finite() {
            return Err(QuantError::NonFinite { value: x });
        }
        // f64 -> i64 `as` saturates (NaN would cast to 0, which is why
        // the finite check must come first).
        let q = (x as f64 * self.scale()).round() as i64;
        Ok(q as u64)
    }

    /// Encodes a slice, appending to `out`.
    pub fn encode_into(&self, xs: &[f32], out: &mut Vec<u64>) -> Result<(), QuantError> {
        out.reserve(xs.len());
        for &x in xs {
            out.push(self.encode(x)?);
        }
        Ok(())
    }

    /// Decodes a ring element (two's-complement `i64` image) back to `f32`.
    pub fn decode(&self, v: u64) -> f32 {
        ((v as i64) as f64 / self.scale()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_bits_validated() {
        assert!(Quantizer::new(0).is_err());
        assert!(Quantizer::new(31).is_err());
        assert_eq!(Quantizer::new(16).unwrap().scale_bits(), 16);
    }

    #[test]
    fn negative_values_round_trip_through_twos_complement() {
        let q = Quantizer::new(16).unwrap();
        let v = q.encode(-1.5).unwrap();
        assert_eq!(v as i64, -(3 << 15));
        assert_eq!(q.decode(v), -1.5);
    }

    #[test]
    fn nan_and_inf_are_typed_errors() {
        let q = Quantizer::new(8).unwrap();
        assert!(matches!(
            q.encode(f32::NAN),
            Err(QuantError::NonFinite { .. })
        ));
        assert!(matches!(
            q.encode(f32::INFINITY),
            Err(QuantError::NonFinite { .. })
        ));
        assert!(matches!(
            q.encode(f32::NEG_INFINITY),
            Err(QuantError::NonFinite { .. })
        ));
    }
}
