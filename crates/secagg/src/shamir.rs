//! Shamir t-of-n secret sharing over GF(256), applied bytewise.
//!
//! An 8-byte secret is split into `n` shares such that any `t` of them
//! reconstruct it exactly and any `t − 1` reveal nothing. Each byte of
//! the secret is the constant term of an independent random polynomial
//! of degree `t − 1` over GF(256) (AES polynomial `0x11b`); share `j`
//! is the polynomial evaluated at `x = j`.
//!
//! This is the escrow layer of dropout recovery: a client splits its
//! key-agreement secret across its peers before uploading, so the
//! survivors can hand the server enough shares to reconstruct the
//! secret of a client that vanished mid-round.

use std::fmt;

/// Errors from share reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShamirError {
    /// Fewer distinct shares than the threshold.
    TooFewShares {
        /// Shares supplied.
        have: usize,
        /// Threshold required.
        need: usize,
    },
    /// Two shares claim the same evaluation point.
    DuplicateX {
        /// The repeated x-coordinate.
        x: u8,
    },
    /// Invalid split parameters (`t == 0`, `t > n`, or `n > 255`).
    BadParams {
        /// Requested share count.
        n: usize,
        /// Requested threshold.
        t: usize,
    },
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::TooFewShares { have, need } => {
                write!(f, "need {need} shares to reconstruct, have {have}")
            }
            ShamirError::DuplicateX { x } => write!(f, "duplicate share point x={x}"),
            ShamirError::BadParams { n, t } => {
                write!(f, "invalid sharing parameters t={t} of n={n}")
            }
        }
    }
}

impl std::error::Error for ShamirError {}

/// One share of an 8-byte secret: the evaluation point plus one GF(256)
/// polynomial evaluation per secret byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedShare {
    /// Evaluation point, never zero (x = 0 is the secret itself).
    pub x: u8,
    /// Per-byte polynomial evaluations at `x`.
    pub bytes: [u8; 8],
}

impl SeedShare {
    /// Packs the share payload as a little-endian u64 (for wire/JSON).
    pub fn payload_word(&self) -> u64 {
        u64::from_le_bytes(self.bytes)
    }

    /// Rebuilds a share from its point and packed payload.
    pub fn from_parts(x: u8, word: u64) -> Self {
        Self {
            x,
            bytes: word.to_le_bytes(),
        }
    }
}

/// GF(256) multiply, AES reduction polynomial `x^8 + x^4 + x^3 + x + 1`.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// GF(256) inverse via `a^254` (Fermat); `gf_inv(0)` is a logic error.
fn gf_inv(a: u8) -> u8 {
    debug_assert!(a != 0, "zero has no inverse in GF(256)");
    // 254 = 0b1111_1110: square-and-multiply.
    let mut acc = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = gf_mul(acc, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Splits `secret` into `n` shares with threshold `t`, drawing polynomial
/// coefficients from `rng`.
pub fn split_secret(
    secret: u64,
    n: usize,
    t: usize,
    rng: &mut impl hf_tensor::rng::Rng,
) -> Result<Vec<SeedShare>, ShamirError> {
    if t == 0 || t > n || n > 255 {
        return Err(ShamirError::BadParams { n, t });
    }
    let secret_bytes = secret.to_le_bytes();
    // coeffs[b] = [c1..c_{t-1}] for secret byte b (c0 is the byte itself).
    let coeffs: Vec<Vec<u8>> = (0..8)
        .map(|_| (1..t).map(|_| rng.gen_range(0..256u32) as u8).collect())
        .collect();
    let mut shares = Vec::with_capacity(n);
    for j in 1..=n {
        let x = j as u8;
        let mut bytes = [0u8; 8];
        for (b, out) in bytes.iter_mut().enumerate() {
            // Horner evaluation of c0 + c1 x + ... + c_{t-1} x^{t-1}.
            let mut acc = 0u8;
            for &c in coeffs[b].iter().rev() {
                acc = gf_mul(acc, x) ^ c;
            }
            *out = gf_mul(acc, x) ^ secret_bytes[b];
        }
        shares.push(SeedShare { x, bytes });
    }
    Ok(shares)
}

/// Reconstructs the secret from at least `t` distinct shares via Lagrange
/// interpolation at `x = 0` (only the first `t` shares are consumed).
pub fn reconstruct_secret(shares: &[SeedShare], t: usize) -> Result<u64, ShamirError> {
    if shares.len() < t || t == 0 {
        return Err(ShamirError::TooFewShares {
            have: shares.len(),
            need: t.max(1),
        });
    }
    let used = &shares[..t];
    for (i, s) in used.iter().enumerate() {
        if s.x == 0 {
            return Err(ShamirError::DuplicateX { x: 0 });
        }
        if used[..i].iter().any(|o| o.x == s.x) {
            return Err(ShamirError::DuplicateX { x: s.x });
        }
    }
    let mut secret_bytes = [0u8; 8];
    for (i, si) in used.iter().enumerate() {
        // Lagrange basis at 0: Π_{j≠i} x_j / (x_j − x_i); in GF(2^8)
        // subtraction is XOR.
        let mut basis = 1u8;
        for (j, sj) in used.iter().enumerate() {
            if i != j {
                basis = gf_mul(basis, gf_mul(sj.x, gf_inv(sj.x ^ si.x)));
            }
        }
        for (b, out) in secret_bytes.iter_mut().enumerate() {
            *out ^= gf_mul(si.bytes[b], basis);
        }
    }
    Ok(u64::from_le_bytes(secret_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_tensor::rng::{stream, Rng, SeedStream};

    #[test]
    fn gf_mul_matches_known_values() {
        // AES reference: 0x57 * 0x83 = 0xc1.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0, 0x42), 0);
        assert_eq!(gf_mul(1, 0x42), 0x42);
    }

    #[test]
    fn gf_inv_is_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn any_t_shares_reconstruct_fewer_fail() {
        let mut rng = stream(5, SeedStream::Custom(90));
        let secret: u64 = rng.gen();
        let shares = split_secret(secret, 7, 4, &mut rng).unwrap();
        // Every contiguous window of 4 works; so does a scrambled pick.
        for w in shares.windows(4) {
            assert_eq!(reconstruct_secret(w, 4).unwrap(), secret);
        }
        let pick = [shares[6], shares[0], shares[3], shares[5]];
        assert_eq!(reconstruct_secret(&pick, 4).unwrap(), secret);
        assert!(matches!(
            reconstruct_secret(&shares[..3], 4),
            Err(ShamirError::TooFewShares { have: 3, need: 4 })
        ));
    }

    #[test]
    fn duplicate_points_are_rejected() {
        let mut rng = stream(6, SeedStream::Custom(91));
        let shares = split_secret(123, 5, 2, &mut rng).unwrap();
        let dup = [shares[1], shares[1]];
        assert!(matches!(
            reconstruct_secret(&dup, 2),
            Err(ShamirError::DuplicateX { .. })
        ));
    }

    #[test]
    fn bad_params_are_rejected() {
        let mut rng = stream(7, SeedStream::Custom(92));
        assert!(split_secret(1, 3, 0, &mut rng).is_err());
        assert!(split_secret(1, 3, 4, &mut rng).is_err());
        assert!(split_secret(1, 256, 2, &mut rng).is_err());
    }

    #[test]
    fn share_payload_word_round_trips() {
        let s = SeedShare {
            x: 9,
            bytes: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        assert_eq!(SeedShare::from_parts(9, s.payload_word()), s);
    }
}
