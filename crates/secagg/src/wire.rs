//! Wire encodings for the secure-aggregation messages.
//!
//! Two message shapes travel during a masked round: a [`MaskedUpload`]
//! (one client's dense ring payload) and a [`ShareBundle`] (one escrowed
//! seed share in transit from its owner to a holder). Both use the
//! workspace little-endian [`Reader`]/[`Writer`] primitives, decode with
//! typed errors only (never a panic), check hostile length prefixes
//! before allocating, and re-encode canonically — properties the fuzz
//! suite in `tests/wire_fuzz.rs` attacks directly.

use hf_fedsim::wire::{Reader, Writer};
use std::fmt;

/// Typed decode failures for secagg wire messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecAggWireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Bytes remained after a complete message.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A field failed validation.
    BadField {
        /// Name of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for SecAggWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecAggWireError::Truncated => write!(f, "buffer truncated"),
            SecAggWireError::Trailing { extra } => write!(f, "{extra} trailing bytes"),
            SecAggWireError::BadField { field } => write!(f, "invalid field {field}"),
        }
    }
}

impl std::error::Error for SecAggWireError {}

/// Message tag for [`MaskedUpload`].
pub const MASKED_UPLOAD_TAG: u8 = 0xA1;
/// Message tag for [`ShareBundle`].
pub const SHARE_BUNDLE_TAG: u8 = 0xA2;

/// One client's masked dense ring payload for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedUpload {
    /// Round the masks belong to.
    pub round: u64,
    /// Uploading client.
    pub uid: u64,
    /// Masked ring words, group-layout order.
    pub words: Vec<u64>,
}

impl MaskedUpload {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + 8 + 8 + 4 + self.words.len() * 8
    }

    /// Canonical little-endian encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        w.put_u8(MASKED_UPLOAD_TAG);
        w.put_u64_le(self.round);
        w.put_u64_le(self.uid);
        w.put_u32_le(self.words.len() as u32);
        for &word in &self.words {
            w.put_u64_le(word);
        }
        w.into_vec()
    }

    /// Decodes a buffer, rejecting truncation, trailing bytes, a wrong
    /// tag, and hostile word counts (checked before allocation).
    pub fn decode(buf: &[u8]) -> Result<Self, SecAggWireError> {
        let mut r = Reader::new(buf);
        let tag = r.get_u8().ok_or(SecAggWireError::Truncated)?;
        if tag != MASKED_UPLOAD_TAG {
            return Err(SecAggWireError::BadField { field: "tag" });
        }
        let round = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        let uid = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        let n = r.get_u32_le().ok_or(SecAggWireError::Truncated)? as usize;
        let need = n.checked_mul(8).ok_or(SecAggWireError::Truncated)?;
        if r.remaining() < need {
            return Err(SecAggWireError::Truncated);
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(r.get_u64_le().ok_or(SecAggWireError::Truncated)?);
        }
        if r.remaining() != 0 {
            return Err(SecAggWireError::Trailing {
                extra: r.remaining(),
            });
        }
        Ok(Self { round, uid, words })
    }
}

/// One escrowed seed share in transit: `owner`'s secret, split, with
/// this piece destined for `holder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShareBundle {
    /// Round the escrow belongs to.
    pub round: u64,
    /// Member whose secret was split.
    pub owner: u64,
    /// Peer holding this share.
    pub holder: u64,
    /// Evaluation point (never zero).
    pub x: u8,
    /// Packed share payload (little-endian bytes of the GF(256) shares).
    pub word: u64,
}

impl ShareBundle {
    /// Fixed encoded size in bytes.
    pub const ENCODED_LEN: usize = 1 + 8 + 8 + 8 + 1 + 8;

    /// Canonical little-endian encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(Self::ENCODED_LEN);
        w.put_u8(SHARE_BUNDLE_TAG);
        w.put_u64_le(self.round);
        w.put_u64_le(self.owner);
        w.put_u64_le(self.holder);
        w.put_u8(self.x);
        w.put_u64_le(self.word);
        w.into_vec()
    }

    /// Decodes a buffer; `x = 0` and `owner == holder` are structural
    /// errors (a member never holds its own escrow).
    pub fn decode(buf: &[u8]) -> Result<Self, SecAggWireError> {
        let mut r = Reader::new(buf);
        let tag = r.get_u8().ok_or(SecAggWireError::Truncated)?;
        if tag != SHARE_BUNDLE_TAG {
            return Err(SecAggWireError::BadField { field: "tag" });
        }
        let round = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        let owner = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        let holder = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        let x = r.get_u8().ok_or(SecAggWireError::Truncated)?;
        if x == 0 {
            return Err(SecAggWireError::BadField { field: "x" });
        }
        if owner == holder {
            return Err(SecAggWireError::BadField { field: "holder" });
        }
        let word = r.get_u64_le().ok_or(SecAggWireError::Truncated)?;
        if r.remaining() != 0 {
            return Err(SecAggWireError::Trailing {
                extra: r.remaining(),
            });
        }
        Ok(Self {
            round,
            owner,
            holder,
            x,
            word,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_upload_round_trips() {
        let m = MaskedUpload {
            round: 9,
            uid: 42,
            words: vec![0, u64::MAX, 0x1234_5678_9abc_def0],
        };
        let buf = m.encode();
        assert_eq!(buf.len(), m.encoded_len());
        assert_eq!(MaskedUpload::decode(&buf).unwrap(), m);
    }

    #[test]
    fn share_bundle_round_trips_and_validates() {
        let s = ShareBundle {
            round: 2,
            owner: 5,
            holder: 9,
            x: 3,
            word: 0xfeed,
        };
        let buf = s.encode();
        assert_eq!(buf.len(), ShareBundle::ENCODED_LEN);
        assert_eq!(ShareBundle::decode(&buf).unwrap(), s);
        let zero_x = ShareBundle { x: 0, ..s }.encode();
        assert_eq!(
            ShareBundle::decode(&zero_x),
            Err(SecAggWireError::BadField { field: "x" })
        );
        let self_held = ShareBundle { holder: 5, ..s }.encode();
        assert_eq!(
            ShareBundle::decode(&self_held),
            Err(SecAggWireError::BadField { field: "holder" })
        );
    }

    #[test]
    fn hostile_word_count_fails_before_allocating() {
        let mut buf = MaskedUpload {
            round: 0,
            uid: 0,
            words: vec![],
        }
        .encode();
        // Overwrite the count field (offset 17) with u32::MAX.
        buf[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(MaskedUpload::decode(&buf), Err(SecAggWireError::Truncated));
    }
}
