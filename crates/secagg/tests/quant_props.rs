//! Quantization property tests: the fixed-point codec must round-trip,
//! saturate (not wrap) at the representable boundary, sum *exactly* in
//! the ring, and reject non-finite inputs with a typed error — never
//! encode them silently (the PR 3 lesson: swallowing NaN hides bugs).

use hf_secagg::{QuantError, Quantizer};
use hf_tensor::rng::{stream, Rng, SeedStream};

const SEED: u64 = 0x5141_4e54; // "QANT"

#[test]
fn encode_decode_round_trips_within_half_ulp_of_the_grid() {
    for bits in [1u32, 8, 16, 24, 30] {
        let q = Quantizer::new(bits).unwrap();
        let step = 1.0 / (1u64 << bits) as f64;
        let mut rng = stream(SEED, SeedStream::Custom(1));
        for _ in 0..10_000 {
            let x = rng.standard_normal_f32();
            let decoded = q.decode(q.encode(x).unwrap());
            assert!(
                (decoded as f64 - x as f64).abs() <= step / 2.0 + 1e-9,
                "bits={bits} x={x} decoded={decoded}"
            );
        }
        // Values exactly on the grid round-trip bit-identically.
        for k in [-5i64, -1, 0, 1, 7, 1000] {
            let x = (k as f64 * step) as f32;
            assert_eq!(q.decode(q.encode(x).unwrap()), x, "bits={bits} k={k}");
        }
    }
}

#[test]
fn encode_saturates_at_the_i64_boundary_instead_of_wrapping() {
    let q = Quantizer::new(30).unwrap();
    // f32::MAX * 2^30 vastly exceeds i64::MAX; the encode must clamp.
    let hi = q.encode(f32::MAX).unwrap();
    let lo = q.encode(f32::MIN).unwrap();
    assert_eq!(hi as i64, i64::MAX);
    assert_eq!(lo as i64, i64::MIN);
    // Saturation is monotone: a huge input never lands below a small one.
    let small = q.encode(1.0).unwrap();
    assert!((hi as i64) > (small as i64));
    assert!((lo as i64) < -(small as i64));
}

#[test]
fn ring_sum_of_quantized_deltas_equals_the_quantized_sum_exactly() {
    let q = Quantizer::new(16).unwrap();
    let mut rng = stream(SEED, SeedStream::Custom(2));
    for trial in 0..100 {
        let n = rng.gen_range(2usize..64);
        let xs: Vec<f32> = (0..n).map(|_| rng.standard_normal_f32()).collect();
        // Ring sum (wrapping u64) of the per-client encodings...
        let encoded: Vec<u64> = xs.iter().map(|&x| q.encode(x).unwrap()).collect();
        let ring_sum = encoded.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        // ...must equal the exact integer sum of the quantized values,
        // checked against an i128 accumulator that cannot wrap.
        let exact: i128 = encoded.iter().map(|&v| (v as i64) as i128).sum();
        assert_eq!(
            ring_sum as i64 as i128, exact,
            "trial {trial}: ring sum diverged from exact integer sum"
        );
        // And summation order is irrelevant in the ring.
        let reversed = encoded.iter().rev().fold(0u64, |a, &v| a.wrapping_add(v));
        assert_eq!(ring_sum, reversed);
    }
}

#[test]
fn non_finite_inputs_are_typed_errors_not_zeros() {
    let q = Quantizer::new(12).unwrap();
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        match q.encode(bad) {
            Err(QuantError::NonFinite { .. }) => {}
            other => panic!("encode({bad}) must be NonFinite, got {other:?}"),
        }
    }
    // And a slice encode stops at the first offender.
    let mut out = Vec::new();
    let err = q.encode_into(&[1.0, f32::NAN, 2.0], &mut out).unwrap_err();
    assert!(matches!(err, QuantError::NonFinite { .. }));
}

#[test]
fn bad_scale_bits_are_typed_errors() {
    assert_eq!(Quantizer::new(0), Err(QuantError::BadScaleBits { bits: 0 }));
    assert_eq!(
        Quantizer::new(31),
        Err(QuantError::BadScaleBits { bits: 31 })
    );
}
