//! Malformed-buffer property tests for the secagg wire messages,
//! mirroring `crates/net/tests/frame_fuzz.rs`: no truncation or byte
//! corruption may panic the decoders, and anything they accept must
//! re-encode canonically.

use hf_secagg::{MaskedUpload, SecAggWireError, ShareBundle};
use hf_tensor::rng::{stream, Rng, SeedStream};

const FUZZ_SEED: u64 = 0x5341_5746; // "SAWF"

/// Either secagg message, randomly shaped.
#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Upload(MaskedUpload),
    Share(ShareBundle),
}

impl Msg {
    fn encode(&self) -> Vec<u8> {
        match self {
            Msg::Upload(m) => m.encode(),
            Msg::Share(s) => s.encode(),
        }
    }

    fn decode(kind_is_upload: bool, buf: &[u8]) -> Result<Msg, SecAggWireError> {
        if kind_is_upload {
            MaskedUpload::decode(buf).map(Msg::Upload)
        } else {
            ShareBundle::decode(buf).map(Msg::Share)
        }
    }

    fn is_upload(&self) -> bool {
        matches!(self, Msg::Upload(_))
    }
}

fn random_msg(rng: &mut impl Rng) -> Msg {
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(0usize..24);
        Msg::Upload(MaskedUpload {
            round: rng.gen_range(0..1_000u64),
            uid: rng.gen_range(0..1_000_000u64),
            words: (0..n).map(|_| rng.gen()).collect(),
        })
    } else {
        let owner = rng.gen_range(0..1_000u64);
        Msg::Share(ShareBundle {
            round: rng.gen_range(0..1_000u64),
            owner,
            holder: owner + 1 + rng.gen_range(0..1_000u64),
            x: rng.gen_range(1..=255u32) as u8,
            word: rng.gen(),
        })
    }
}

#[test]
fn every_truncation_of_every_message_fails_cleanly() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(1));
    for _ in 0..200 {
        let msg = random_msg(&mut rng);
        let buf = msg.encode();
        assert_eq!(Msg::decode(msg.is_upload(), &buf).as_ref(), Ok(&msg));
        for cut in 0..buf.len() {
            let err = Msg::decode(msg.is_upload(), &buf[..cut])
                .expect_err("a strict prefix must never decode");
            assert!(
                matches!(
                    err,
                    SecAggWireError::Truncated | SecAggWireError::BadField { .. }
                ),
                "cut {cut} of {msg:?}: unexpected {err:?}"
            );
        }
    }
}

#[test]
fn seeded_byte_mutations_never_panic_and_accepts_are_canonical() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(2));
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..300 {
        let msg = random_msg(&mut rng);
        let buf = msg.encode();
        for _ in 0..40 {
            let mut mutated = buf.clone();
            // 1-3 random byte flips.
            for _ in 0..rng.gen_range(1..4usize) {
                let pos = rng.gen_range(0..mutated.len());
                mutated[pos] ^= rng.gen_range(1..=255u32) as u8;
            }
            match Msg::decode(msg.is_upload(), &mutated) {
                Ok(decoded) => {
                    accepted += 1;
                    assert_eq!(
                        decoded.encode(),
                        mutated,
                        "accepted a non-canonical mutation of {msg:?}"
                    );
                }
                Err(_) => rejected += 1, // typed error: exactly the contract
            }
        }
    }
    // Both outcomes must occur or the test is vacuous: flips in ring
    // words travel as data, flips in the tag or count get rejected.
    assert!(accepted > 0, "no mutation was ever accepted");
    assert!(rejected > 0, "no mutation was ever rejected");
}

#[test]
fn hostile_word_counts_fail_before_allocating() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(3));
    for _ in 0..200 {
        let upload = MaskedUpload {
            round: rng.gen(),
            uid: rng.gen(),
            words: vec![],
        };
        let mut buf = upload.encode();
        // Claim an enormous word count with no bytes behind it.
        let claimed: u32 = rng.gen_range(1_000_000..=u32::MAX);
        buf[17..21].copy_from_slice(&claimed.to_le_bytes());
        buf.extend((0..rng.gen_range(0..32usize)).map(|_| rng.gen_range(0..=255u32) as u8));
        assert_eq!(MaskedUpload::decode(&buf), Err(SecAggWireError::Truncated));
    }
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let mut rng = stream(FUZZ_SEED, SeedStream::Custom(4));
    let msg = random_msg(&mut rng);
    let mut buf = msg.encode();
    buf.push(0x55);
    let err = Msg::decode(msg.is_upload(), &buf).unwrap_err();
    assert_eq!(err, SecAggWireError::Trailing { extra: 1 });
}
