//! Exportable serving artifacts.
//!
//! A [`ModelArtifact`] is an **immutable** snapshot of everything the
//! deployment side needs to answer top-K queries: the frozen per-tier
//! item tables and predictors, every known user's serving state (tier,
//! private embedding, interaction history, and — under the standalone
//! baseline — its private model), per-item popularity counts, and a
//! per-tier cold-start fallback embedding for users the training run
//! never saw.
//!
//! Artifacts are produced from a live [`Session`] (`export_artifact()`),
//! rebuilt from a persisted training checkpoint
//! ([`ModelArtifact::from_checkpoint`] /
//! [`ModelArtifact::from_checkpoint_file`]), synthesized at arbitrary
//! scale without training ([`ModelArtifact::synthesize`]), or loaded
//! from the binary file format — eagerly ([`ModelArtifact::load_file`])
//! or lazily ([`ModelArtifact::load_file_lazy`]), where tier tables and
//! user records stay on disk until first touch. Both backends sit behind
//! the same accessors and produce **bit-identical** rankings; the lazy
//! one bounds resident memory by what requests actually touch.
//!
//! The artifact schema itself is versioned ([`ARTIFACT_VERSION`]); it
//! tracks the checkpoint schema it can ingest, so a reader upgrade is an
//! artifact-version bump.

use crate::lazy::{LazyConfig, LazyTiers, LazyUsers};
use crate::ServeError;
use hetefedrec_core::session::Session;
use hetefedrec_core::Strategy;
use hf_dataset::{SplitDataset, Tier};
use hf_models::{Ffn, ModelKind};
use hf_tensor::Matrix;
use std::collections::HashMap;
use std::sync::Arc;

use hetefedrec_core::config::TierDims;

/// Artifact schema version. Version 1 snapshots the state of
/// `hetefedrec.checkpoint` v1 documents.
pub const ARTIFACT_VERSION: u64 = 1;

/// One user's frozen serving state.
#[derive(Clone, Debug)]
pub struct UserRecord {
    /// The model tier this user is served with.
    pub tier: Tier,
    /// Private user embedding (width = tier dimension).
    pub emb: Vec<f32>,
    /// Training positives, in split order — drives LightGCN propagation,
    /// default exclusion, and popularity counts.
    pub history: Vec<u32>,
    /// Standalone-baseline private model, when the artifact came from a
    /// [`Strategy::Standalone`] run.
    pub solo: Option<SoloModel>,
}

/// A standalone client's private parameters (overlay over the frozen
/// initial table, plus its own predictor).
#[derive(Clone, Debug)]
pub struct SoloModel {
    /// Item rows the client trained privately, keyed by item id.
    pub rows: HashMap<u32, Vec<f32>>,
    /// The client's private predictor.
    pub theta: Ffn,
}

/// A fetched user record: either borrowed straight out of the eager
/// in-memory store, or a shared handle into the lazy store's shard cache
/// (the record may be evicted and re-decoded later; the handle keeps
/// this copy alive). Dereferences to [`UserRecord`], so call sites read
/// the same either way.
#[derive(Clone, Debug)]
pub enum UserRef<'a> {
    /// Borrowed from the eager `Vec<UserRecord>` backend.
    Borrowed(&'a UserRecord),
    /// A cache handle from the lazy sharded backend.
    Cached(Arc<UserRecord>),
}

impl std::ops::Deref for UserRef<'_> {
    type Target = UserRecord;
    fn deref(&self) -> &UserRecord {
        match self {
            UserRef::Borrowed(r) => r,
            UserRef::Cached(r) => r,
        }
    }
}

/// Where user records live.
#[derive(Clone, Debug)]
pub(crate) enum UserStore {
    /// All records decoded up front (training export, eager file load).
    Eager(Vec<UserRecord>),
    /// Records decoded on first touch from a v2 file, held in a sharded
    /// bounded LRU (see [`crate::lazy`]).
    Lazy(LazyUsers),
}

/// Where the frozen per-tier item tables and predictors live.
#[derive(Clone, Debug)]
pub(crate) enum TierParams {
    /// Decoded up front.
    Eager {
        /// Frozen tier item tables `{Vs, Vm, Vl}` (each at its width).
        tables: Box<[Matrix; 3]>,
        /// Frozen tier predictors `{Θs, Θm, Θl}`.
        thetas: Box<[Ffn; 3]>,
    },
    /// Decoded per tier on first touch from a v2 file.
    Lazy(LazyTiers),
}

/// An immutable, versioned snapshot of a trained model, ready to serve.
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    pub(crate) model: ModelKind,
    pub(crate) dims: TierDims,
    pub(crate) standalone: bool,
    pub(crate) num_items: usize,
    pub(crate) params: TierParams,
    pub(crate) users: UserStore,
    /// Per-item training-interaction counts (popularity floor support).
    pub(crate) popularity: Vec<u32>,
    /// Per-tier mean user embedding — the cold-start fallback
    /// representation (zeros when a tier has no users).
    pub(crate) fallback: [Vec<f32>; 3],
}

impl ModelArtifact {
    /// Snapshots a session's current model state into an artifact.
    ///
    /// The session keeps training afterwards if it likes; the artifact is
    /// a deep copy and never changes.
    pub fn from_session(session: &Session) -> Self {
        let cfg = session.cfg();
        let split = session.split();
        let server = session.server();
        let standalone = matches!(session.strategy(), Strategy::Standalone);
        let num_items = split.num_items();

        let mut popularity = vec![0u32; num_items];
        let users: Vec<UserRecord> = (0..split.num_users())
            .map(|u| {
                let tier = session.model_groups().tier(u);
                let state = session.user_state(u);
                let history = split.user(u).train.clone();
                for &item in &history {
                    popularity[item as usize] += 1;
                }
                UserRecord {
                    tier,
                    emb: state.emb.clone(),
                    history,
                    solo: state.standalone.as_ref().map(|s| SoloModel {
                        rows: s.rows.clone(),
                        theta: s.theta.clone(),
                    }),
                }
            })
            .collect();

        let fallback = tier_mean_fallback(&cfg.dims, users.iter().map(|u| (u.tier, &u.emb[..])));

        Self {
            model: cfg.model,
            dims: cfg.dims,
            standalone,
            num_items,
            params: TierParams::Eager {
                tables: Box::new(std::array::from_fn(|t| server.table(Tier::ALL[t]).clone())),
                thetas: Box::new(std::array::from_fn(|t| server.theta(Tier::ALL[t]).clone())),
            },
            users: UserStore::Eager(users),
            popularity,
            fallback,
        }
    }

    /// Assembles an eager artifact from decoded parts (the binary
    /// reader's constructor).
    pub(crate) fn assemble(
        meta: crate::binfmt::Meta,
        tables: [Matrix; 3],
        thetas: [Ffn; 3],
        users: UserStore,
        popularity: Vec<u32>,
        fallback: [Vec<f32>; 3],
    ) -> Self {
        Self {
            model: meta.model,
            dims: meta.dims,
            standalone: meta.standalone,
            num_items: meta.num_items,
            params: TierParams::Eager {
                tables: Box::new(tables),
                thetas: Box::new(thetas),
            },
            users,
            popularity,
            fallback,
        }
    }

    /// Rebuilds an artifact from a `hetefedrec.checkpoint` v1 document
    /// (as written by [`Session::checkpoint`]), using the `hf_tensor::ser`
    /// reader. The caller supplies the identically generated split — the
    /// checkpoint stores only model state, not the dataset.
    pub fn from_checkpoint(json: &str, split: SplitDataset) -> Result<Self, ServeError> {
        let session = Session::restore(json, split)
            .map_err(|e| ServeError::Artifact(format!("cannot restore checkpoint: {e}")))?;
        Ok(Self::from_session(&session))
    }

    /// [`ModelArtifact::from_checkpoint`] reading the document from a file.
    pub fn from_checkpoint_file(
        path: impl AsRef<std::path::Path>,
        split: SplitDataset,
    ) -> Result<Self, ServeError> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| ServeError::Artifact(format!("cannot read checkpoint: {e}")))?;
        Self::from_checkpoint(&json, split)
    }

    /// Serialises the artifact to the compact binary on-disk format
    /// (`crate::binfmt`): length-prefixed sections of little-endian
    /// scalars, floats as IEEE-754 bits, so a reload is bit-identical.
    /// A lazy artifact is materialised section by section (every user
    /// record streams through, but at most one at a time beyond the
    /// caches).
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::binfmt::encode(self)
    }

    /// Parses the binary on-disk format (either container version).
    /// Truncated, malformed, or version-mismatched buffers are rejected
    /// with [`ServeError::Artifact`], never a panic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ServeError> {
        crate::binfmt::decode(buf)
    }

    /// Writes the binary format to `path`, creating parent directories.
    /// Serving hosts load this file directly ([`ModelArtifact::load_file`]
    /// or [`ModelArtifact::load_file_lazy`]) instead of replaying a
    /// checkpoint restore.
    pub fn save_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    ServeError::Artifact(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        std::fs::write(path, self.to_bytes())
            .map_err(|e| ServeError::Artifact(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads an artifact from the binary file format written by
    /// [`ModelArtifact::save_file`], decoding everything up front.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Artifact(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Opens a v2 artifact file **lazily**: the header, directories,
    /// `meta`, `popularity`, and `fallback` sections are read and
    /// validated up front, but tier tables and user records stay on disk
    /// until first touch. User records are cached in a sharded bounded
    /// LRU sized by `cfg`, so resident memory is `O(touched)` with a
    /// configurable ceiling — and rankings are bit-identical to the
    /// eager path.
    ///
    /// Version-1 files have no directories to seek by; they fall back to
    /// the eager [`ModelArtifact::load_file`] path transparently.
    pub fn load_file_lazy(
        path: impl AsRef<std::path::Path>,
        cfg: LazyConfig,
    ) -> Result<Self, ServeError> {
        crate::lazy::open_lazy(path.as_ref(), cfg)
    }

    /// Artifact schema version.
    pub fn version(&self) -> u64 {
        ARTIFACT_VERSION
    }

    /// Base model the artifact serves.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Tier embedding dimensions.
    pub fn dims(&self) -> TierDims {
        self.dims
    }

    /// `true` when the artifact came from the standalone baseline (every
    /// user carries a private model).
    pub fn is_standalone(&self) -> bool {
        self.standalone
    }

    /// `true` when this artifact is file-backed and decodes state on
    /// first touch ([`ModelArtifact::load_file_lazy`]).
    pub fn is_lazy(&self) -> bool {
        matches!(self.users, UserStore::Lazy(_)) || matches!(self.params, TierParams::Lazy(_))
    }

    /// Item universe size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of known users.
    pub fn num_users(&self) -> usize {
        match &self.users {
            UserStore::Eager(users) => users.len(),
            UserStore::Lazy(lazy) => lazy.num_users(),
        }
    }

    /// How many decoded user records are resident right now: all of them
    /// for an eager artifact, the shard-cache occupancy for a lazy one.
    pub fn cached_user_records(&self) -> usize {
        match &self.users {
            UserStore::Eager(users) => users.len(),
            UserStore::Lazy(lazy) => lazy.cached_records(),
        }
    }

    /// One known user's frozen state, or `None` for unknown ids (the
    /// recommender's cold-start path). On a lazy artifact this decodes
    /// the record from disk on first touch and caches it in the user's
    /// shard.
    pub fn user(&self, user: usize) -> Option<UserRef<'_>> {
        match &self.users {
            UserStore::Eager(users) => users.get(user).map(UserRef::Borrowed),
            UserStore::Lazy(lazy) => lazy.user(user).map(UserRef::Cached),
        }
    }

    /// One tier's frozen item table. On a lazy artifact the first touch
    /// decodes the tier from disk; it stays resident afterwards.
    pub fn table(&self, tier: Tier) -> &Matrix {
        match &self.params {
            TierParams::Eager { tables, .. } => &tables[tier.index()],
            TierParams::Lazy(lazy) => lazy.table(tier),
        }
    }

    /// One tier's frozen predictor (lazily decoded like
    /// [`ModelArtifact::table`]).
    pub fn theta(&self, tier: Tier) -> &Ffn {
        match &self.params {
            TierParams::Eager { thetas, .. } => &thetas[tier.index()],
            TierParams::Lazy(lazy) => lazy.theta(tier),
        }
    }

    /// One tier table's shape `(rows, cols)` — available without forcing
    /// a lazy tier load (v2 directories carry the shape).
    pub fn table_dims(&self, tier: Tier) -> (usize, usize) {
        match &self.params {
            TierParams::Eager { tables, .. } => {
                let t = &tables[tier.index()];
                (t.rows(), t.cols())
            }
            TierParams::Lazy(lazy) => lazy.table_dims(tier),
        }
    }

    /// Training-interaction count of one item (0 for ids outside the
    /// catalogue — unknown items have no interactions, and serving
    /// accessors never panic on caller-supplied ids).
    pub fn popularity(&self, item: u32) -> u32 {
        self.popularity.get(item as usize).copied().unwrap_or(0)
    }

    /// The cold-start fallback embedding of one tier.
    pub fn fallback(&self, tier: Tier) -> &[f32] {
        &self.fallback[tier.index()]
    }
}

/// Per-tier mean embedding over `(tier, emb)` pairs in ascending user
/// order — the deterministic cold-start fallback shared by session
/// export and synthesis.
pub(crate) fn tier_mean_fallback<'a>(
    dims: &TierDims,
    users: impl Iterator<Item = (Tier, &'a [f32])>,
) -> [Vec<f32>; 3] {
    let mut fallback: [Vec<f32>; 3] = std::array::from_fn(|t| vec![0.0f32; dims.dim(Tier::ALL[t])]);
    let mut counts = [0usize; 3];
    for (tier, emb) in users {
        let t = tier.index();
        hf_tensor::ops::axpy_slice(&mut fallback[t], 1.0, emb);
        counts[t] += 1;
    }
    for (f, &n) in fallback.iter_mut().zip(&counts) {
        if n > 0 {
            let inv = 1.0 / n as f32;
            f.iter_mut().for_each(|x| *x *= inv);
        }
    }
    fallback
}
