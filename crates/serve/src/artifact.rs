//! Exportable serving artifacts.
//!
//! A [`ModelArtifact`] is an **immutable** snapshot of everything the
//! deployment side needs to answer top-K queries: the frozen per-tier
//! item tables and predictors, every known user's serving state (tier,
//! private embedding, interaction history, and — under the standalone
//! baseline — its private model), per-item popularity counts, and a
//! per-tier cold-start fallback embedding for users the training run
//! never saw.
//!
//! Artifacts are produced from a live [`Session`] (`export_artifact()`)
//! or rebuilt from a persisted training checkpoint
//! ([`ModelArtifact::from_checkpoint`] /
//! [`ModelArtifact::from_checkpoint_file`], which ingest the
//! `hetefedrec.checkpoint` v1 documents written by
//! [`Session::checkpoint`] through the `hf_tensor::ser` reader). The
//! artifact schema itself is versioned ([`ARTIFACT_VERSION`]); it tracks
//! the checkpoint schema it can ingest, so a reader upgrade is an
//! artifact-version bump.

use crate::ServeError;
use hetefedrec_core::session::Session;
use hetefedrec_core::Strategy;
use hf_dataset::{SplitDataset, Tier};
use hf_models::{Ffn, ModelKind};
use hf_tensor::Matrix;
use std::collections::HashMap;

use hetefedrec_core::config::TierDims;

/// Artifact schema version. Version 1 snapshots the state of
/// `hetefedrec.checkpoint` v1 documents.
pub const ARTIFACT_VERSION: u64 = 1;

/// One user's frozen serving state.
#[derive(Clone, Debug)]
pub struct UserRecord {
    /// The model tier this user is served with.
    pub tier: Tier,
    /// Private user embedding (width = tier dimension).
    pub emb: Vec<f32>,
    /// Training positives, in split order — drives LightGCN propagation,
    /// default exclusion, and popularity counts.
    pub history: Vec<u32>,
    /// Standalone-baseline private model, when the artifact came from a
    /// [`Strategy::Standalone`] run.
    pub solo: Option<SoloModel>,
}

/// A standalone client's private parameters (overlay over the frozen
/// initial table, plus its own predictor).
#[derive(Clone, Debug)]
pub struct SoloModel {
    /// Item rows the client trained privately, keyed by item id.
    pub rows: HashMap<u32, Vec<f32>>,
    /// The client's private predictor.
    pub theta: Ffn,
}

/// An immutable, versioned snapshot of a trained model, ready to serve.
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    pub(crate) model: ModelKind,
    pub(crate) dims: TierDims,
    pub(crate) standalone: bool,
    pub(crate) num_items: usize,
    /// Frozen tier item tables `{Vs, Vm, Vl}` (each at its exact width).
    pub(crate) tables: [Matrix; 3],
    /// Frozen tier predictors `{Θs, Θm, Θl}`.
    pub(crate) thetas: [Ffn; 3],
    pub(crate) users: Vec<UserRecord>,
    /// Per-item training-interaction counts (popularity floor support).
    pub(crate) popularity: Vec<u32>,
    /// Per-tier mean user embedding — the cold-start fallback
    /// representation (zeros when a tier has no users).
    pub(crate) fallback: [Vec<f32>; 3],
}

impl ModelArtifact {
    /// Snapshots a session's current model state into an artifact.
    ///
    /// The session keeps training afterwards if it likes; the artifact is
    /// a deep copy and never changes.
    pub fn from_session(session: &Session) -> Self {
        let cfg = session.cfg();
        let split = session.split();
        let server = session.server();
        let standalone = matches!(session.strategy(), Strategy::Standalone);
        let num_items = split.num_items();

        let mut popularity = vec![0u32; num_items];
        let users: Vec<UserRecord> = (0..split.num_users())
            .map(|u| {
                let tier = session.model_groups().tier(u);
                let state = session.user_state(u);
                let history = split.user(u).train.clone();
                for &item in &history {
                    popularity[item as usize] += 1;
                }
                UserRecord {
                    tier,
                    emb: state.emb.clone(),
                    history,
                    solo: state.standalone.as_ref().map(|s| SoloModel {
                        rows: s.rows.clone(),
                        theta: s.theta.clone(),
                    }),
                }
            })
            .collect();

        // Cold-start fallback: per-tier mean embedding over known users
        // (ascending user order, so the sum is deterministic).
        let mut fallback: [Vec<f32>; 3] =
            std::array::from_fn(|t| vec![0.0f32; cfg.dims.dim(Tier::ALL[t])]);
        let mut counts = [0usize; 3];
        for user in &users {
            let t = user.tier.index();
            hf_tensor::ops::axpy_slice(&mut fallback[t], 1.0, &user.emb);
            counts[t] += 1;
        }
        for (f, &n) in fallback.iter_mut().zip(&counts) {
            if n > 0 {
                let inv = 1.0 / n as f32;
                f.iter_mut().for_each(|x| *x *= inv);
            }
        }

        Self {
            model: cfg.model,
            dims: cfg.dims,
            standalone,
            num_items,
            tables: std::array::from_fn(|t| server.table(Tier::ALL[t]).clone()),
            thetas: std::array::from_fn(|t| server.theta(Tier::ALL[t]).clone()),
            users,
            popularity,
            fallback,
        }
    }

    /// Rebuilds an artifact from a `hetefedrec.checkpoint` v1 document
    /// (as written by [`Session::checkpoint`]), using the `hf_tensor::ser`
    /// reader. The caller supplies the identically generated split — the
    /// checkpoint stores only model state, not the dataset.
    pub fn from_checkpoint(json: &str, split: SplitDataset) -> Result<Self, ServeError> {
        let session = Session::restore(json, split)
            .map_err(|e| ServeError::Artifact(format!("cannot restore checkpoint: {e}")))?;
        Ok(Self::from_session(&session))
    }

    /// [`ModelArtifact::from_checkpoint`] reading the document from a file.
    pub fn from_checkpoint_file(
        path: impl AsRef<std::path::Path>,
        split: SplitDataset,
    ) -> Result<Self, ServeError> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| ServeError::Artifact(format!("cannot read checkpoint: {e}")))?;
        Self::from_checkpoint(&json, split)
    }

    /// Serialises the artifact to the compact binary on-disk format
    /// (`crate::binfmt`): length-prefixed sections of little-endian
    /// scalars, floats as IEEE-754 bits, so a reload is bit-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::binfmt::encode(self)
    }

    /// Parses the binary on-disk format. Truncated, malformed, or
    /// version-mismatched buffers are rejected with
    /// [`ServeError::Artifact`], never a panic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ServeError> {
        crate::binfmt::decode(buf)
    }

    /// Writes the binary format to `path`, creating parent directories.
    /// Serving hosts load this file directly ([`ModelArtifact::load_file`])
    /// instead of replaying a checkpoint restore.
    pub fn save_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    ServeError::Artifact(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        std::fs::write(path, self.to_bytes())
            .map_err(|e| ServeError::Artifact(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads an artifact from the binary file format written by
    /// [`ModelArtifact::save_file`].
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Artifact(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Artifact schema version.
    pub fn version(&self) -> u64 {
        ARTIFACT_VERSION
    }

    /// Base model the artifact serves.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Tier embedding dimensions.
    pub fn dims(&self) -> TierDims {
        self.dims
    }

    /// `true` when the artifact came from the standalone baseline (every
    /// user carries a private model).
    pub fn is_standalone(&self) -> bool {
        self.standalone
    }

    /// Item universe size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of known users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// One known user's frozen state, or `None` for unknown ids (the
    /// recommender's cold-start path).
    pub fn user(&self, user: usize) -> Option<&UserRecord> {
        self.users.get(user)
    }

    /// One tier's frozen item table.
    pub fn table(&self, tier: Tier) -> &Matrix {
        &self.tables[tier.index()]
    }

    /// One tier's frozen predictor.
    pub fn theta(&self, tier: Tier) -> &Ffn {
        &self.thetas[tier.index()]
    }

    /// Training-interaction count of one item (0 for ids outside the
    /// catalogue — unknown items have no interactions, and serving
    /// accessors never panic on caller-supplied ids).
    pub fn popularity(&self, item: u32) -> u32 {
        self.popularity.get(item as usize).copied().unwrap_or(0)
    }

    /// The cold-start fallback embedding of one tier.
    pub fn fallback(&self, tier: Tier) -> &[f32] {
        &self.fallback[tier.index()]
    }
}
